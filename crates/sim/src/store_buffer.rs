//! The per-core store buffer (§5.3).
//!
//! The reference architecture's DL1 is write-through: every store generates
//! a bus write. The pipeline, however, does not wait for the write to reach
//! L2 — a store is architecturally complete as soon as it enters the store
//! buffer, and the pipeline only stalls when the buffer is full.
//!
//! The timing consequence the paper exploits in Fig. 7(b): once the buffer
//! fills, the drained writes reach the bus back to back — with an
//! *injection time of zero* — which is the only situation in which a
//! request can actually suffer the full `ubd`.

use crate::types::{Addr, Cycle};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct Entry {
    addr: Addr,
    pushed_at: Cycle,
}

/// A FIFO buffer of outstanding write-through stores.
#[derive(Debug, Clone)]
pub struct StoreBuffer {
    entries: VecDeque<Entry>,
    capacity: usize,
    /// Cycle at which the most recent drain completed (so the next drained
    /// write is ready immediately: δ = 0 between buffered stores).
    last_drain_done: Option<Cycle>,
    /// Peak occupancy observed (diagnostics).
    high_water: usize,
    /// Number of inserts rejected because the buffer was full (each one
    /// corresponds to a pipeline stall cycle).
    full_stalls: u64,
}

impl StoreBuffer {
    /// An empty buffer of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; validate configurations with
    /// [`StoreBufferConfig::validate`] first.
    ///
    /// [`StoreBufferConfig::validate`]: crate::config::StoreBufferConfig::validate
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer must have at least one entry");
        StoreBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            last_drain_done: None,
            high_water: 0,
            full_stalls: 0,
        }
    }

    /// Number of buffered stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer has no free entry.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Peak occupancy observed so far.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Number of insertion attempts that found the buffer full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }

    /// Attempts to buffer a store at cycle `now`. Returns `true` on
    /// success; on `false` the pipeline must stall and retry (a stall is
    /// counted).
    pub fn try_push(&mut self, addr: Addr, now: Cycle) -> bool {
        if self.is_full() {
            self.full_stalls += 1;
            return false;
        }
        self.entries.push_back(Entry { addr, pushed_at: now });
        self.high_water = self.high_water.max(self.entries.len());
        true
    }

    /// The address at the head of the buffer (next write to drain).
    pub fn head(&self) -> Option<Addr> {
        self.entries.front().map(|e| e.addr)
    }

    /// The cycle at which the head write is ready to request the bus:
    /// the later of its buffering time and the completion of the previous
    /// drain. Consecutive drained writes are therefore back to back
    /// (injection time zero), reproducing §5.3.
    ///
    /// This is also the buffer's event horizon for the machine's
    /// quiescence-skipping loop: between `head_ready` deadlines (and the
    /// pushes/drains that move them, which are events of the pipeline and
    /// the bus respectively) the buffer's state is time-invariant, so the
    /// machine may jump over the in-between cycles.
    pub fn head_ready(&self) -> Option<Cycle> {
        self.entries.front().map(|e| match self.last_drain_done {
            Some(done) => e.pushed_at.max(done),
            None => e.pushed_at,
        })
    }

    /// Removes the head after its bus write completed at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn complete_head(&mut self, now: Cycle) -> Addr {
        // lint_sources: allow (documented precondition: head must exist)
        let e = self.entries.pop_front().expect("completing a store from an empty buffer");
        self.last_drain_done = Some(now);
        e.addr
    }

    /// Clears the buffer and its statistics.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.last_drain_done = None;
        self.high_water = 0;
        self.full_stalls = 0;
    }

    /// Clears the buffer and re-targets its capacity, reusing the entry
    /// allocation. Indistinguishable from `StoreBuffer::new(capacity)`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, like [`StoreBuffer::new`].
    pub fn reset_to(&mut self, capacity: usize) {
        assert!(capacity > 0, "store buffer must have at least one entry");
        self.reset();
        self.capacity = capacity;
    }

    /// Appends a time-relative signature of the buffered state to `out`
    /// (entries, drain deadline, peak occupancy), with cycle stamps
    /// relative to `now`.
    pub(crate) fn ff_signature(&self, now: Cycle, out: &mut Vec<u64>) {
        out.push(self.entries.len() as u64);
        for e in &self.entries {
            out.push(e.addr);
            out.push(now.wrapping_sub(e.pushed_at));
        }
        // The drain deadline only gates entries already buffered (a future
        // push is always later than a past drain), so an empty buffer's
        // deadline is unobservable and must not block a period match.
        let drain = match (self.entries.is_empty(), self.last_drain_done) {
            (false, Some(d)) => now.wrapping_sub(d),
            _ => u64::MAX,
        };
        out.push(drain);
        out.push(self.high_water as u64);
    }

    /// Shifts every live cycle stamp forward by `delta` (fast-forward).
    pub(crate) fn ff_shift(&mut self, delta: Cycle) {
        for e in &mut self.entries {
            e.pushed_at += delta;
        }
        if let Some(d) = &mut self.last_drain_done {
            *d += delta;
        }
    }

    /// Adds to the full-stall counter (fast-forward statistics scaling).
    pub(crate) fn ff_add_full_stalls(&mut self, n: u64) {
        self.full_stalls += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut sb = StoreBuffer::new(4);
        assert!(sb.try_push(0x10, 0));
        assert!(sb.try_push(0x20, 1));
        assert_eq!(sb.head(), Some(0x10));
        assert_eq!(sb.complete_head(100), 0x10);
        assert_eq!(sb.head(), Some(0x20));
    }

    #[test]
    fn full_buffer_rejects_and_counts_stalls() {
        let mut sb = StoreBuffer::new(2);
        assert!(sb.try_push(1, 0));
        assert!(sb.try_push(2, 0));
        assert!(sb.is_full());
        assert!(!sb.try_push(3, 1));
        assert!(!sb.try_push(3, 2));
        assert_eq!(sb.full_stalls(), 2);
        sb.complete_head(10);
        assert!(sb.try_push(3, 10));
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut sb = StoreBuffer::new(8);
        for i in 0..5 {
            sb.try_push(i, i);
        }
        sb.complete_head(10);
        sb.complete_head(11);
        assert_eq!(sb.len(), 3);
        assert_eq!(sb.high_water(), 5);
    }

    #[test]
    fn drained_writes_are_back_to_back() {
        let mut sb = StoreBuffer::new(4);
        sb.try_push(1, 5);
        sb.try_push(2, 6);
        // First write buffered at cycle 5, no drain yet.
        assert_eq!(sb.head_ready(), Some(5));
        sb.complete_head(40);
        // Second write ready immediately at drain completion: δ = 0.
        assert_eq!(sb.head_ready(), Some(40));
        sb.complete_head(67);
        // A write buffered after the last drain keeps its own time.
        sb.try_push(3, 90);
        assert_eq!(sb.head_ready(), Some(90));
    }

    #[test]
    fn empty_buffer_has_no_head() {
        let sb = StoreBuffer::new(1);
        assert_eq!(sb.head(), None);
        assert_eq!(sb.head_ready(), None);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn completing_empty_buffer_panics() {
        let mut sb = StoreBuffer::new(1);
        sb.complete_head(0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = StoreBuffer::new(0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut sb = StoreBuffer::new(2);
        sb.try_push(1, 0);
        sb.try_push(2, 0);
        sb.try_push(3, 0); // stall
        sb.reset();
        assert!(sb.is_empty());
        assert_eq!(sb.full_stalls(), 0);
        assert_eq!(sb.high_water(), 0);
        assert_eq!(sb.head_ready(), None);
    }
}
