//! Performance monitoring counters.
//!
//! The methodology's confidence argument (§4.3) leans on hardware event
//! counters — on the NGMP, counters 0x17 and 0x18 expose per-core and
//! overall bus utilisation. This module models that observability layer:
//! per-request contention records (γ, ready-time contender counts) and
//! per-core aggregate counters, which the analysis crates consume to build
//! the paper's histograms (Fig. 6) without reaching into simulator
//! internals.
//!
//! Every record is tagged with the [`ResourceId`] it was observed at, and
//! the γ histograms are kept **per resource**: on a two-level topology
//! the bus and the memory-controller queue each expose their own delay
//! distribution, so per-resource UBD contributions can be read off the
//! counters independently. The bus-flavoured accessors
//! ([`CorePmc::bus_requests`], [`CorePmc::max_gamma`], …) read resource 0
//! and keep their pre-topology meaning.

use crate::bus::BusOpKind;
use crate::resource::ResourceId;
use crate::types::{Addr, CoreId, Cycle};
use std::collections::BTreeMap;

/// One completed request at a shared resource, as recorded by the
/// monitoring hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestRecord {
    /// The resource the request arbitrated for.
    pub resource: ResourceId,
    /// Transaction kind.
    pub kind: BusOpKind,
    /// Line-aligned address.
    pub addr: Addr,
    /// Cycle the request became ready at the resource.
    pub ready: Cycle,
    /// Cycle the resource granted it.
    pub granted: Cycle,
    /// Cycle the transaction completed.
    pub completed: Cycle,
    /// Number of *other* cores with an outstanding transaction at this
    /// resource at the ready cycle (Fig. 6(a) on the bus).
    pub contenders: u32,
}

impl RequestRecord {
    /// The contention delay γ = granted − ready (Eq. 2, per resource).
    pub fn gamma(&self) -> u64 {
        self.granted - self.ready
    }
}

/// Counters for one core.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CorePmc {
    /// Every completed request, in completion order (present only when the
    /// machine was configured with `record_requests`).
    pub records: Vec<RequestRecord>,
    /// Histogram of per-request γ at the **bus** (always recorded).
    pub gamma_histogram: BTreeMap<u64, u64>,
    /// Histogram of per-request γ at the **memory-controller queue**
    /// (always recorded; empty on single-bus topologies).
    pub mc_gamma_histogram: BTreeMap<u64, u64>,
    /// Histogram of ready-time bus contender counts (always recorded).
    pub contender_histogram: BTreeMap<u32, u64>,
    /// Retired instructions.
    pub instructions: u64,
    /// Executed loads.
    pub loads: u64,
    /// Executed stores.
    pub stores: u64,
    /// DL1 load hits.
    pub dl1_hits: u64,
    /// DL1 load misses (bus requests).
    pub dl1_misses: u64,
    /// L2 partition hits (grant-time lookups).
    pub l2_hits: u64,
    /// L2 partition misses.
    pub l2_misses: u64,
    /// Cycles the pipeline stalled on a full store buffer.
    pub sb_stall_cycles: u64,
}

impl CorePmc {
    /// The γ histogram of one resource (resource 0 = bus, 1 = controller
    /// queue; ids beyond the topology read as empty).
    pub fn gamma_histogram_at(&self, resource: ResourceId) -> &BTreeMap<u64, u64> {
        static EMPTY: BTreeMap<u64, u64> = BTreeMap::new();
        match resource {
            ResourceId::BUS => &self.gamma_histogram,
            ResourceId::MEMORY_CONTROLLER => &self.mc_gamma_histogram,
            _ => &EMPTY,
        }
    }

    /// Total bus requests observed (from the γ histogram, so it is
    /// available even when full records are off).
    pub fn bus_requests(&self) -> u64 {
        self.requests_at(ResourceId::BUS)
    }

    /// Total requests observed at one resource.
    pub fn requests_at(&self, resource: ResourceId) -> u64 {
        self.gamma_histogram_at(resource).values().sum()
    }

    /// Sum of all recorded bus contention delays.
    pub fn total_gamma(&self) -> u64 {
        self.total_gamma_at(ResourceId::BUS)
    }

    /// Sum of all recorded contention delays at one resource.
    pub fn total_gamma_at(&self, resource: ResourceId) -> u64 {
        self.gamma_histogram_at(resource).iter().map(|(g, n)| g * n).sum()
    }

    /// Largest observed bus contention delay — the `ubd_m` a naive
    /// measurement-based analysis would report for this core.
    pub fn max_gamma(&self) -> Option<u64> {
        self.max_gamma_at(ResourceId::BUS)
    }

    /// Largest observed contention delay at one resource.
    pub fn max_gamma_at(&self, resource: ResourceId) -> Option<u64> {
        self.gamma_histogram_at(resource).keys().next_back().copied()
    }

    /// The most frequent bus contention delay and its count, if any
    /// requests were observed. Under the synchrony effect this mode covers
    /// almost all requests (98 % in the paper's Fig. 6(b)).
    pub fn mode_gamma(&self) -> Option<(u64, u64)> {
        self.gamma_histogram.iter().max_by_key(|&(g, n)| (*n, *g)).map(|(&g, &n)| (g, n))
    }
}

/// The machine-wide monitoring unit.
#[derive(Debug, Clone)]
pub struct Pmc {
    cores: Vec<CorePmc>,
    record_requests: bool,
}

impl Pmc {
    /// A monitoring unit for `num_cores` cores; `record_requests` controls
    /// whether full per-request records are kept.
    pub fn new(num_cores: usize, record_requests: bool) -> Self {
        Pmc { cores: (0..num_cores).map(|_| CorePmc::default()).collect(), record_requests }
    }

    /// The counters of one core.
    pub fn core(&self, core: CoreId) -> &CorePmc {
        &self.cores[core.index()]
    }

    /// Mutable access for the machine.
    pub(crate) fn core_mut(&mut self, core: CoreId) -> &mut CorePmc {
        &mut self.cores[core.index()]
    }

    /// Records a completed request at the resource named in the record.
    pub(crate) fn record_request(&mut self, core: CoreId, rec: RequestRecord) {
        let c = &mut self.cores[core.index()];
        if rec.resource == ResourceId::BUS {
            *c.gamma_histogram.entry(rec.gamma()).or_insert(0) += 1;
            *c.contender_histogram.entry(rec.contenders).or_insert(0) += 1;
        } else if rec.resource == ResourceId::MEMORY_CONTROLLER {
            *c.mc_gamma_histogram.entry(rec.gamma()).or_insert(0) += 1;
        } else {
            // A resource beyond the controller has no histogram yet;
            // counting it as mc would silently misattribute its gammas.
            debug_assert!(false, "no gamma histogram for resource {}", rec.resource);
        }
        if self.record_requests {
            c.records.push(rec);
        }
    }

    /// Clears every counter (e.g. after warm-up) in place, keeping the
    /// per-core allocations for reuse.
    pub fn reset(&mut self) {
        for c in &mut self.cores {
            c.records.clear();
            c.gamma_histogram.clear();
            c.mc_gamma_histogram.clear();
            c.contender_histogram.clear();
            c.instructions = 0;
            c.loads = 0;
            c.stores = 0;
            c.dl1_hits = 0;
            c.dl1_misses = 0;
            c.l2_hits = 0;
            c.l2_misses = 0;
            c.sb_stall_cycles = 0;
        }
    }

    /// Rewinds the unit to its just-built state for a possibly different
    /// core count or recording mode. Indistinguishable from `Pmc::new`.
    pub fn reset_to(&mut self, num_cores: usize, record_requests: bool) {
        self.cores.truncate(num_cores);
        self.reset();
        while self.cores.len() < num_cores {
            self.cores.push(CorePmc::default());
        }
        self.record_requests = record_requests;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ready: Cycle, granted: Cycle, contenders: u32) -> RequestRecord {
        RequestRecord {
            resource: ResourceId::BUS,
            kind: BusOpKind::Load,
            addr: 0,
            ready,
            granted,
            completed: granted + 9,
            contenders,
        }
    }

    fn mc_rec(ready: Cycle, granted: Cycle) -> RequestRecord {
        RequestRecord { resource: ResourceId::MEMORY_CONTROLLER, ..rec(ready, granted, 0) }
    }

    #[test]
    fn gamma_is_grant_minus_ready() {
        assert_eq!(rec(10, 36, 3).gamma(), 26);
        assert_eq!(rec(5, 5, 0).gamma(), 0);
    }

    #[test]
    fn histograms_accumulate() {
        let mut pmc = Pmc::new(2, true);
        let c0 = CoreId::new(0);
        pmc.record_request(c0, rec(0, 26, 3));
        pmc.record_request(c0, rec(30, 56, 3));
        pmc.record_request(c0, rec(60, 60, 1));
        let core = pmc.core(c0);
        assert_eq!(core.bus_requests(), 3);
        assert_eq!(core.gamma_histogram[&26], 2);
        assert_eq!(core.gamma_histogram[&0], 1);
        assert_eq!(core.max_gamma(), Some(26));
        assert_eq!(core.mode_gamma(), Some((26, 2)));
        assert_eq!(core.total_gamma(), 52);
        assert_eq!(core.contender_histogram[&3], 2);
        assert_eq!(core.records.len(), 3);
        assert_eq!(pmc.core(CoreId::new(1)).bus_requests(), 0);
    }

    #[test]
    fn mc_records_fill_their_own_histogram() {
        let mut pmc = Pmc::new(1, true);
        let c0 = CoreId::new(0);
        pmc.record_request(c0, rec(0, 26, 3));
        pmc.record_request(c0, mc_rec(40, 44));
        pmc.record_request(c0, mc_rec(60, 60));
        let core = pmc.core(c0);
        assert_eq!(core.bus_requests(), 1, "mc requests must not count as bus requests");
        assert_eq!(core.requests_at(ResourceId::MEMORY_CONTROLLER), 2);
        assert_eq!(core.max_gamma(), Some(26));
        assert_eq!(core.max_gamma_at(ResourceId::MEMORY_CONTROLLER), Some(4));
        assert_eq!(core.total_gamma_at(ResourceId::MEMORY_CONTROLLER), 4);
        assert_eq!(core.contender_histogram.len(), 1, "contender histogram stays bus-only");
        assert_eq!(core.records.len(), 3, "full records keep every resource");
    }

    #[test]
    fn record_toggle_drops_records_but_keeps_histograms() {
        let mut pmc = Pmc::new(1, false);
        pmc.record_request(CoreId::new(0), rec(0, 5, 2));
        let core = pmc.core(CoreId::new(0));
        assert!(core.records.is_empty());
        assert_eq!(core.bus_requests(), 1);
    }

    #[test]
    fn reset_clears_counters() {
        let mut pmc = Pmc::new(1, true);
        pmc.record_request(CoreId::new(0), rec(0, 1, 0));
        pmc.record_request(CoreId::new(0), mc_rec(0, 1));
        pmc.reset();
        assert_eq!(pmc.core(CoreId::new(0)).bus_requests(), 0);
        assert_eq!(pmc.core(CoreId::new(0)).requests_at(ResourceId::MEMORY_CONTROLLER), 0);
        assert!(pmc.core(CoreId::new(0)).records.is_empty());
    }

    #[test]
    fn mode_gamma_prefers_higher_gamma_on_ties() {
        let mut pmc = Pmc::new(1, false);
        pmc.record_request(CoreId::new(0), rec(0, 3, 0));
        pmc.record_request(CoreId::new(0), rec(0, 7, 0));
        assert_eq!(pmc.core(CoreId::new(0)).mode_gamma(), Some((7, 1)));
    }

    #[test]
    fn empty_core_has_no_max() {
        let pmc = Pmc::new(1, true);
        assert_eq!(pmc.core(CoreId::new(0)).max_gamma(), None);
        assert_eq!(pmc.core(CoreId::new(0)).mode_gamma(), None);
        assert_eq!(pmc.core(CoreId::new(0)).max_gamma_at(ResourceId::MEMORY_CONTROLLER), None);
    }
}
