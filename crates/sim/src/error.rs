//! Error types for simulator construction and execution.

use std::error::Error;
use std::fmt;

/// An invalid machine or component configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A parameter that must be non-zero was zero.
    ZeroParameter {
        /// Name of the offending parameter.
        name: &'static str,
    },
    /// A size that must be a power of two was not.
    NotPowerOfTwo {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// Cache geometry is inconsistent (e.g. `size < ways * line`).
    BadCacheGeometry {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
    /// The number of cores exceeds what a component supports.
    TooManyCores {
        /// Requested number of cores.
        requested: usize,
        /// Maximum supported by the component.
        max: usize,
    },
    /// TDMA slot length is too short to fit a single bus transaction.
    TdmaSlotTooShort {
        /// Configured slot length in cycles.
        slot: u64,
        /// Longest bus occupancy in cycles.
        occupancy: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroParameter { name } => {
                write!(f, "configuration parameter `{name}` must be non-zero")
            }
            ConfigError::NotPowerOfTwo { name, value } => {
                write!(f, "configuration parameter `{name}` must be a power of two, got {value}")
            }
            ConfigError::BadCacheGeometry { detail } => {
                write!(f, "invalid cache geometry: {detail}")
            }
            ConfigError::TooManyCores { requested, max } => {
                write!(f, "requested {requested} cores but at most {max} are supported")
            }
            ConfigError::TdmaSlotTooShort { slot, occupancy } => {
                write!(
                    f,
                    "TDMA slot of {slot} cycles cannot fit a bus transaction of {occupancy} cycles"
                )
            }
        }
    }
}

impl Error for ConfigError {}

/// An error raised while constructing or running a [`Machine`].
///
/// [`Machine`]: crate::Machine
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The machine configuration was rejected.
    Config(ConfigError),
    /// The run exceeded the configured cycle budget before all finite
    /// programs completed; likely livelock or an undersized budget.
    CycleBudgetExhausted {
        /// The budget that was exhausted.
        budget: u64,
        /// Cores that had not completed.
        incomplete: Vec<usize>,
    },
    /// A program was loaded onto a core index outside the machine.
    NoSuchCore {
        /// The rejected index.
        core: usize,
        /// Number of cores in the machine.
        num_cores: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::CycleBudgetExhausted { budget, incomplete } => {
                write!(f, "cycle budget of {budget} exhausted with cores {incomplete:?} incomplete")
            }
            SimError::NoSuchCore { core, num_cores } => {
                write!(f, "core index {core} out of range for machine with {num_cores} cores")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = ConfigError::ZeroParameter { name: "ways" };
        assert_eq!(e.to_string(), "configuration parameter `ways` must be non-zero");
        let e = SimError::NoSuchCore { core: 5, num_cores: 4 };
        assert!(e.to_string().contains("core index 5"));
    }

    #[test]
    fn sim_error_sources_config_error() {
        let e = SimError::from(ConfigError::ZeroParameter { name: "x" });
        assert!(e.source().is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
        assert_send_sync::<ConfigError>();
    }
}
