//! Instructions and programs.
//!
//! Programs are *timing skeletons*: sequences of instructions whose only
//! semantics are the memory addresses they touch and the cycles they burn.
//! This is exactly the abstraction level of the paper's resource-stressing
//! kernels (rsk), which are loops of loads/stores/nops engineered for their
//! cache behaviour, not their data.

use crate::types::Addr;
use std::fmt;
use std::sync::Arc;

/// One instruction of a simulated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// A load from the given address. Misses in DL1 generate a bus request.
    Load(Addr),
    /// A store to the given address. Write-through: always generates a bus
    /// write, buffered by the store buffer.
    Store(Addr),
    /// A no-operation; burns [`MachineConfig::nop_latency`] cycles.
    ///
    /// [`MachineConfig::nop_latency`]: crate::MachineConfig::nop_latency
    Nop,
    /// A generic ALU operation with an explicit latency in cycles. Used by
    /// the synthetic EEMBC-profile workloads to model compute phases.
    Alu {
        /// Cycles this operation occupies the core.
        latency: u64,
    },
    /// Loop-control overhead (compare + branch); burns
    /// [`MachineConfig::branch_latency`] cycles.
    ///
    /// [`MachineConfig::branch_latency`]: crate::MachineConfig::branch_latency
    Branch,
}

impl Instr {
    /// Convenience constructor for a load.
    pub fn load(addr: Addr) -> Self {
        Instr::Load(addr)
    }

    /// Convenience constructor for a store.
    pub fn store(addr: Addr) -> Self {
        Instr::Store(addr)
    }

    /// Whether this instruction may access the bus (i.e. is a memory op).
    pub fn accesses_memory(&self) -> bool {
        matches!(self, Instr::Load(_) | Instr::Store(_))
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Load(a) => write!(f, "ld 0x{a:x}"),
            Instr::Store(a) => write!(f, "st 0x{a:x}"),
            Instr::Nop => write!(f, "nop"),
            Instr::Alu { latency } => write!(f, "alu({latency})"),
            Instr::Branch => write!(f, "br"),
        }
    }
}

/// How many times a program's body repeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Iterations {
    /// The body runs exactly this many times, then the core is done.
    Finite(u64),
    /// The body repeats until the machine stops (used for contender
    /// kernels, which "must not complete execution before the scua", §3.1).
    Infinite,
}

impl Iterations {
    /// Returns the finite count, if any.
    pub fn finite(self) -> Option<u64> {
        match self {
            Iterations::Finite(n) => Some(n),
            Iterations::Infinite => None,
        }
    }
}

/// A program: a loop body repeated a number of times.
///
/// The body is reference-counted, so cloning a program — which batched
/// execution does once per machine per run — shares the decoded
/// instructions instead of copying them. Equality and hashing delegate
/// to the instruction sequence itself, so two programs with equal
/// bodies compare equal regardless of sharing.
///
/// ```
/// use rrb_sim::{Program, Instr};
/// let p = Program::from_body(vec![Instr::load(0x100), Instr::Nop], 10);
/// assert_eq!(p.body().len(), 2);
/// assert_eq!(p.dynamic_instruction_count(), Some(20));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    body: Arc<[Instr]>,
    iterations: Iterations,
}

impl Program {
    /// A program whose `body` repeats `iterations` times.
    pub fn from_body(body: Vec<Instr>, iterations: u64) -> Self {
        Program { body: body.into(), iterations: Iterations::Finite(iterations) }
    }

    /// A program whose `body` repeats until the machine stops.
    pub fn endless(body: Vec<Instr>) -> Self {
        Program { body: body.into(), iterations: Iterations::Infinite }
    }

    /// An empty program (the core idles immediately).
    pub fn empty() -> Self {
        Program { body: Vec::new().into(), iterations: Iterations::Finite(0) }
    }

    /// The loop body.
    pub fn body(&self) -> &[Instr] {
        &self.body
    }

    /// The iteration count.
    pub fn iterations(&self) -> Iterations {
        self.iterations
    }

    /// Total dynamic instructions, if finite.
    pub fn dynamic_instruction_count(&self) -> Option<u64> {
        self.iterations.finite().map(|n| n * self.body.len() as u64)
    }

    /// Number of memory (bus-candidate) instructions per body iteration.
    pub fn memory_ops_per_iteration(&self) -> u64 {
        self.body.iter().filter(|i| i.accesses_memory()).count() as u64
    }

    /// Total dynamic memory operations, if finite.
    pub fn dynamic_memory_ops(&self) -> Option<u64> {
        self.iterations.finite().map(|n| n * self.memory_ops_per_iteration())
    }
}

/// Incremental builder for [`Program`]s.
///
/// ```
/// use rrb_sim::{ProgramBuilder, Instr};
/// let p = ProgramBuilder::new()
///     .load(0x1000)
///     .nops(3)
///     .store(0x2000)
///     .branch()
///     .iterations(100)
///     .build();
/// assert_eq!(p.body().len(), 6);
/// assert_eq!(p.memory_ops_per_iteration(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProgramBuilder {
    body: Vec<Instr>,
    iterations: Option<Iterations>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a load.
    pub fn load(mut self, addr: Addr) -> Self {
        self.body.push(Instr::Load(addr));
        self
    }

    /// Appends a store.
    pub fn store(mut self, addr: Addr) -> Self {
        self.body.push(Instr::Store(addr));
        self
    }

    /// Appends one nop.
    pub fn nop(self) -> Self {
        self.nops(1)
    }

    /// Appends `n` nops.
    pub fn nops(mut self, n: usize) -> Self {
        self.body.extend(std::iter::repeat_n(Instr::Nop, n));
        self
    }

    /// Appends an ALU op of the given latency.
    pub fn alu(mut self, latency: u64) -> Self {
        self.body.push(Instr::Alu { latency });
        self
    }

    /// Appends loop-control overhead.
    pub fn branch(mut self) -> Self {
        self.body.push(Instr::Branch);
        self
    }

    /// Appends an arbitrary instruction.
    pub fn push(mut self, instr: Instr) -> Self {
        self.body.push(instr);
        self
    }

    /// Appends all instructions from an iterator.
    pub fn extend<I: IntoIterator<Item = Instr>>(mut self, instrs: I) -> Self {
        self.body.extend(instrs);
        self
    }

    /// Sets a finite iteration count (default 1).
    pub fn iterations(mut self, n: u64) -> Self {
        self.iterations = Some(Iterations::Finite(n));
        self
    }

    /// Marks the program as endless (contender kernels).
    pub fn endless(mut self) -> Self {
        self.iterations = Some(Iterations::Infinite);
        self
    }

    /// Finalizes the program.
    pub fn build(self) -> Program {
        Program {
            body: self.body.into(),
            iterations: self.iterations.unwrap_or(Iterations::Finite(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let p = ProgramBuilder::new().load(0x10).nops(2).store(0x20).iterations(5).build();
        assert_eq!(p.body(), &[Instr::Load(0x10), Instr::Nop, Instr::Nop, Instr::Store(0x20)]);
        assert_eq!(p.iterations(), Iterations::Finite(5));
        assert_eq!(p.dynamic_instruction_count(), Some(20));
        assert_eq!(p.dynamic_memory_ops(), Some(10));
    }

    #[test]
    fn endless_program_has_no_counts() {
        let p = Program::endless(vec![Instr::Nop]);
        assert_eq!(p.dynamic_instruction_count(), None);
        assert_eq!(p.iterations().finite(), None);
    }

    #[test]
    fn empty_program_completes_immediately() {
        let p = Program::empty();
        assert_eq!(p.dynamic_instruction_count(), Some(0));
    }

    #[test]
    fn memory_op_classification() {
        assert!(Instr::load(0).accesses_memory());
        assert!(Instr::store(0).accesses_memory());
        assert!(!Instr::Nop.accesses_memory());
        assert!(!Instr::Branch.accesses_memory());
        assert!(!Instr::Alu { latency: 3 }.accesses_memory());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Instr::load(0x1f).to_string(), "ld 0x1f");
        assert_eq!(Instr::store(0x2).to_string(), "st 0x2");
        assert_eq!(Instr::Nop.to_string(), "nop");
        assert_eq!(Instr::Branch.to_string(), "br");
        assert_eq!(Instr::Alu { latency: 4 }.to_string(), "alu(4)");
    }

    #[test]
    fn builder_default_is_single_iteration() {
        let p = ProgramBuilder::new().nop().build();
        assert_eq!(p.iterations(), Iterations::Finite(1));
    }
}
