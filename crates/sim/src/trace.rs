//! Resource-event tracing for timeline figures.
//!
//! When enabled, the machine records every request-ready, grant, and
//! completion event, tagged with the [`ResourceId`] it happened at (bus
//! events on every topology; memory-controller-queue events on two-level
//! ones). The Fig. 5 regenerator renders the bus rows as an ASCII Gantt
//! chart equivalent to the paper's timing diagrams.

use crate::bus::BusOpKind;
use crate::resource::ResourceId;
use crate::types::{CoreId, Cycle};

/// One traced resource event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A core's request became ready at a resource.
    Ready {
        /// The resource the request targets.
        resource: ResourceId,
        /// Requesting core.
        core: CoreId,
        /// Cycle of readiness.
        cycle: Cycle,
        /// Transaction kind.
        kind: BusOpKind,
    },
    /// A resource granted a request.
    Grant {
        /// The granting resource.
        resource: ResourceId,
        /// Granted core.
        core: CoreId,
        /// Grant cycle.
        cycle: Cycle,
        /// Contention suffered (γ).
        gamma: u64,
        /// Occupancy in cycles.
        occupancy: u64,
        /// Transaction kind.
        kind: BusOpKind,
    },
    /// A transaction left a resource.
    Complete {
        /// The resource it occupied.
        resource: ResourceId,
        /// Owning core.
        core: CoreId,
        /// Completion cycle.
        cycle: Cycle,
        /// Transaction kind.
        kind: BusOpKind,
    },
}

impl TraceEvent {
    /// The cycle this event occurred.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::Ready { cycle, .. }
            | TraceEvent::Grant { cycle, .. }
            | TraceEvent::Complete { cycle, .. } => cycle,
        }
    }

    /// The core this event belongs to.
    pub fn core(&self) -> CoreId {
        match *self {
            TraceEvent::Ready { core, .. }
            | TraceEvent::Grant { core, .. }
            | TraceEvent::Complete { core, .. } => core,
        }
    }

    /// The resource this event was observed at.
    pub fn resource(&self) -> ResourceId {
        match *self {
            TraceEvent::Ready { resource, .. }
            | TraceEvent::Grant { resource, .. }
            | TraceEvent::Complete { resource, .. } => resource,
        }
    }
}

/// An append-only event log.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// A trace that records events only when `enabled`.
    pub fn new(enabled: bool) -> Self {
        Trace { events: Vec::new(), enabled }
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an event (no-op when disabled).
    pub fn push(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// All recorded events, in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Clears the log.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders an ASCII Gantt chart of resource occupancy over
    /// `[from, to)` — the shape of the paper's Figures 2 and 5. `#` marks
    /// occupied cycles, `.` marks cycles where the core had a
    /// ready-but-waiting request, and spaces are idle.
    ///
    /// On single-bus traces the output is one row per core
    /// (`c0 |..###|`). When the trace carries memory-controller events
    /// (two-level topologies), each core gets one row per resource,
    /// labelled `c0 bus` / `c0 mc`, so both contention points are
    /// inspectable on the same time axis.
    pub fn gantt(&self, num_cores: usize, from: Cycle, to: Cycle) -> String {
        let has_mc = self.events.iter().any(|e| e.resource() == ResourceId::MEMORY_CONTROLLER);
        let mut out = String::new();
        let bus_rows = self.rows_for(ResourceId::BUS, num_cores, from, to);
        let mc_rows = if has_mc {
            Some(self.rows_for(ResourceId::MEMORY_CONTROLLER, num_cores, from, to))
        } else {
            None
        };
        for i in 0..num_cores {
            match &mc_rows {
                None => {
                    out.push_str(&format!("c{i} |"));
                    out.push_str(std::str::from_utf8(&bus_rows[i]).expect("ascii"));
                    out.push_str("|\n");
                }
                Some(mc_rows) => {
                    out.push_str(&format!("c{i} bus |"));
                    out.push_str(std::str::from_utf8(&bus_rows[i]).expect("ascii"));
                    out.push_str("|\n");
                    out.push_str(&format!("c{i} mc  |"));
                    out.push_str(std::str::from_utf8(&mc_rows[i]).expect("ascii"));
                    out.push_str("|\n");
                }
            }
        }
        out
    }

    /// One occupancy row per core for the events of `resource`.
    fn rows_for(
        &self,
        resource: ResourceId,
        num_cores: usize,
        from: Cycle,
        to: Cycle,
    ) -> Vec<Vec<u8>> {
        let width = (to - from) as usize;
        let mut rows = vec![vec![b' '; width]; num_cores];
        // Mark waiting periods first so grants can overwrite them.
        let mut ready_at: Vec<Option<Cycle>> = vec![None; num_cores];
        for ev in self.events.iter().filter(|e| e.resource() == resource) {
            match *ev {
                TraceEvent::Ready { core, cycle, .. } => {
                    ready_at[core.index()] = Some(cycle);
                }
                TraceEvent::Grant { core, cycle, occupancy, .. } => {
                    if let Some(r) = ready_at[core.index()].take() {
                        for t in r..cycle {
                            if t >= from && t < to {
                                rows[core.index()][(t - from) as usize] = b'.';
                            }
                        }
                    }
                    for t in cycle..cycle + occupancy {
                        if t >= from && t < to {
                            rows[core.index()][(t - from) as usize] = b'#';
                        }
                    }
                }
                TraceEvent::Complete { .. } => {}
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(false);
        t.push(TraceEvent::Ready {
            resource: ResourceId::BUS,
            core: CoreId::new(0),
            cycle: 1,
            kind: BusOpKind::Load,
        });
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_keeps_order() {
        let mut t = Trace::new(true);
        t.push(TraceEvent::Ready {
            resource: ResourceId::BUS,
            core: CoreId::new(0),
            cycle: 1,
            kind: BusOpKind::Load,
        });
        t.push(TraceEvent::Grant {
            resource: ResourceId::BUS,
            core: CoreId::new(0),
            cycle: 3,
            gamma: 2,
            occupancy: 2,
            kind: BusOpKind::Load,
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].cycle(), 1);
        assert_eq!(t.events()[1].core(), CoreId::new(0));
    }

    #[test]
    fn gantt_draws_wait_and_occupancy() {
        let mut t = Trace::new(true);
        t.push(TraceEvent::Ready {
            resource: ResourceId::BUS,
            core: CoreId::new(0),
            cycle: 0,
            kind: BusOpKind::Load,
        });
        t.push(TraceEvent::Grant {
            resource: ResourceId::BUS,
            core: CoreId::new(0),
            cycle: 2,
            gamma: 2,
            occupancy: 3,
            kind: BusOpKind::Load,
        });
        let g = t.gantt(1, 0, 6);
        assert_eq!(g, "c0 |..### |\n");
    }

    #[test]
    fn gantt_clips_to_window() {
        let mut t = Trace::new(true);
        t.push(TraceEvent::Grant {
            resource: ResourceId::BUS,
            core: CoreId::new(0),
            cycle: 0,
            gamma: 0,
            occupancy: 10,
            kind: BusOpKind::Load,
        });
        let g = t.gantt(1, 2, 5);
        assert_eq!(g, "c0 |###|\n");
    }

    #[test]
    fn gantt_renders_mc_rows_without_painting_bus_rows() {
        let mut t = Trace::new(true);
        t.push(TraceEvent::Grant {
            resource: ResourceId::MEMORY_CONTROLLER,
            core: CoreId::new(0),
            cycle: 0,
            gamma: 0,
            occupancy: 4,
            kind: BusOpKind::Load,
        });
        assert_eq!(t.events()[0].resource(), ResourceId::MEMORY_CONTROLLER);
        assert_eq!(
            t.gantt(1, 0, 4),
            "c0 bus |    |\nc0 mc  |####|\n",
            "mc occupancy must get its own row, not paint the bus row"
        );
    }

    #[test]
    fn gantt_two_level_rows_share_the_time_axis() {
        // An L2 miss: bus request phase, then controller admission with a
        // wait, per core. Bus-only traces must keep the one-row form.
        let mut t = Trace::new(true);
        t.push(TraceEvent::Ready {
            resource: ResourceId::BUS,
            core: CoreId::new(1),
            cycle: 0,
            kind: BusOpKind::Load,
        });
        t.push(TraceEvent::Grant {
            resource: ResourceId::BUS,
            core: CoreId::new(1),
            cycle: 1,
            gamma: 1,
            occupancy: 2,
            kind: BusOpKind::Load,
        });
        t.push(TraceEvent::Ready {
            resource: ResourceId::MEMORY_CONTROLLER,
            core: CoreId::new(1),
            cycle: 3,
            kind: BusOpKind::Load,
        });
        t.push(TraceEvent::Grant {
            resource: ResourceId::MEMORY_CONTROLLER,
            core: CoreId::new(1),
            cycle: 5,
            gamma: 2,
            occupancy: 3,
            kind: BusOpKind::Load,
        });
        let g = t.gantt(2, 0, 8);
        assert_eq!(
            g,
            "c0 bus |        |\n\
             c0 mc  |        |\n\
             c1 bus |.##     |\n\
             c1 mc  |   ..###|\n"
        );
    }

    #[test]
    fn clear_empties_log() {
        let mut t = Trace::new(true);
        t.push(TraceEvent::Complete {
            resource: ResourceId::BUS,
            core: CoreId::new(1),
            cycle: 9,
            kind: BusOpKind::Store,
        });
        t.clear();
        assert!(t.events().is_empty());
    }
}
