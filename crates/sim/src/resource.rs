//! The shared-resource contention protocol.
//!
//! The paper's reference NGMP has *two* arbitrated contention points on
//! the request path — the shared round-robin bus and the FIFO queue at
//! the on-chip memory controller (§5.1: "contention only happens on the
//! bus and the memory controller"). Both follow the same protocol:
//!
//! 1. **post** — a requester presents at most one transaction;
//! 2. **grant** — when the resource is free, its [`Arbiter`] picks among
//!    the ready transactions; the per-request contention delay is
//!    `γ = grant − ready` (Eq. 2, per resource);
//! 3. **occupy** — the grant holds the resource for the transaction's
//!    occupancy;
//! 4. **complete** — the transaction leaves and its effects are
//!    delivered.
//!
//! [`SharedResource`] implements that protocol once, keyed by a
//! [`ResourceId`]; the machine's bus and optional memory-controller
//! queue are both instances. Each instance owns its own arbiter,
//! occupancy table, and [`ResourceStats`], so per-resource UBD terms
//! (`ubd_r = (Nc − 1) · l_r`) can be measured and summed independently.

use crate::bus::{build_arbiter, ActiveTxn, Arbiter, ArbiterKind, BusOpKind, Pending, RequestView};
use crate::config::{BusConfig, McQueueConfig};
use crate::types::{Addr, CoreId, Cycle};
use std::fmt;

/// Identifies one shared resource on the request path.
///
/// Resource 0 is always the bus; further resources are numbered in
/// request-path order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(usize);

impl ResourceId {
    /// The shared bus (always present, always resource 0).
    pub const BUS: ResourceId = ResourceId(0);
    /// The memory-controller queue (present on two-level topologies).
    pub const MEMORY_CONTROLLER: ResourceId = ResourceId(1);

    /// A resource id from a raw request-path position.
    pub fn new(index: usize) -> Self {
        ResourceId(index)
    }

    /// The raw request-path position.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// What a shared resource *is* — used for reporting and record keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// The shared AHB-like processor bus.
    Bus,
    /// The admission queue at the on-chip memory controller.
    MemoryController,
}

impl ResourceKind {
    /// Short, stable name used in records and reports.
    pub fn slug(self) -> &'static str {
        match self {
            ResourceKind::Bus => "bus",
            ResourceKind::MemoryController => "mc",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.slug())
    }
}

/// Aggregate statistics of one shared resource — the analogue of the
/// NGMP's PMC counters 0x17/0x18 (per-core and overall utilisation,
/// §4.3), kept per resource so two-level topologies expose one counter
/// set per contention point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// Cycles the resource spent occupied.
    pub busy_cycles: u64,
    /// Number of transactions granted.
    pub grants: u64,
    /// Occupied cycles attributed to each requester.
    pub per_core_busy: Vec<u64>,
    /// Grants attributed to each requester.
    pub per_core_grants: Vec<u64>,
}

impl ResourceStats {
    fn new(num_cores: usize) -> Self {
        ResourceStats {
            busy_cycles: 0,
            grants: 0,
            per_core_busy: vec![0; num_cores],
            per_core_grants: vec![0; num_cores],
        }
    }

    /// Overall utilisation over `elapsed` cycles, in `[0, 1]`.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / elapsed as f64
        }
    }
}

/// One arbitrated contention point: one pending slot per requester, one
/// active transaction, an [`Arbiter`], and its own statistics.
#[derive(Debug)]
pub struct SharedResource {
    id: ResourceId,
    kind: ResourceKind,
    arbiter: Box<dyn Arbiter>,
    /// Worst-case occupancy presented to the arbiter (TDMA slot fitting).
    worst_occupancy: u64,
    pending: Vec<Option<Pending>>,
    active: Option<ActiveTxn>,
    stats: ResourceStats,
    /// Reusable arbitration view, so [`SharedResource::try_grant`] does
    /// not allocate on every free cycle of the hot simulation loop.
    view_buf: Vec<Option<RequestView>>,
}

impl SharedResource {
    /// A resource with an explicit identity, policy, and worst-case
    /// occupancy over `num_cores` requesters.
    pub fn new(
        id: ResourceId,
        kind: ResourceKind,
        arbiter: ArbiterKind,
        worst_occupancy: u64,
        num_cores: usize,
    ) -> Self {
        SharedResource {
            id,
            kind,
            arbiter: build_arbiter(arbiter, num_cores),
            worst_occupancy,
            pending: vec![None; num_cores],
            active: None,
            stats: ResourceStats::new(num_cores),
            view_buf: Vec::with_capacity(num_cores),
        }
    }

    /// The shared bus of a [`BusConfig`] (resource 0).
    pub fn bus(cfg: BusConfig, num_cores: usize) -> Self {
        SharedResource::new(
            ResourceId::BUS,
            ResourceKind::Bus,
            cfg.arbiter,
            cfg.l2_hit_occupancy,
            num_cores,
        )
    }

    /// The memory-controller queue of an [`McQueueConfig`] (resource 1).
    pub fn memory_controller(cfg: McQueueConfig, num_cores: usize) -> Self {
        SharedResource::new(
            ResourceId::MEMORY_CONTROLLER,
            ResourceKind::MemoryController,
            cfg.arbiter,
            cfg.service_occupancy,
            num_cores,
        )
    }

    /// This resource's request-path identity.
    pub fn id(&self) -> ResourceId {
        self.id
    }

    /// What this resource is.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// The arbitration policy in force.
    pub fn arbiter_kind(&self) -> ArbiterKind {
        self.arbiter.kind()
    }

    /// The worst-case occupancy presented to the arbiter — the `l_r` of
    /// this resource's Eq. 1 term (and the fixed service occupancy of
    /// constant-occupancy resources like the controller queue).
    pub fn worst_occupancy(&self) -> u64 {
        self.worst_occupancy
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> &ResourceStats {
        &self.stats
    }

    /// The transaction currently occupying the resource, if any.
    pub fn active(&self) -> Option<&ActiveTxn> {
        self.active.as_ref()
    }

    /// Whether `core` already has a transaction posted (pending or active).
    pub fn has_outstanding(&self, core: CoreId) -> bool {
        self.pending[core.index()].is_some() || self.active.is_some_and(|a| a.core == core)
    }

    /// Number of cores *other than* `core` with an outstanding transaction
    /// (pending or occupying). On the bus this is the paper's Fig. 6(a)
    /// quantity: how many contenders compete when a request becomes ready.
    pub fn contenders_of(&self, core: CoreId) -> u32 {
        let mut n = 0;
        for i in 0..self.pending.len() {
            if i == core.index() {
                continue;
            }
            let id = CoreId::new(i);
            if self.pending[i].is_some() || self.active.is_some_and(|a| a.core == id) {
                n += 1;
            }
        }
        n
    }

    /// Posts a transaction for `core`.
    ///
    /// # Panics
    ///
    /// Panics if the core already has a pending transaction: cores are
    /// single-outstanding masters at every resource on the path, and the
    /// machine must wait for completion before posting again.
    pub fn post(&mut self, core: CoreId, kind: BusOpKind, addr: Addr, ready: Cycle) {
        let slot = &mut self.pending[core.index()];
        assert!(slot.is_none(), "core {core} posted a second transaction while one is pending");
        *slot = Some(Pending { kind, addr, ready });
    }

    /// Whether the resource is free at cycle `now`.
    pub fn is_free(&self, now: Cycle) -> bool {
        match self.active {
            None => true,
            Some(a) => a.until <= now,
        }
    }

    /// If the active transaction finishes exactly at `now`, removes and
    /// returns it. The machine delivers its effects in response.
    pub fn take_completed(&mut self, now: Cycle) -> Option<ActiveTxn> {
        if self.active.is_some_and(|a| a.until == now) {
            self.active.take()
        } else {
            None
        }
    }

    /// Runs arbitration at cycle `now` if the resource is free.
    ///
    /// `occupancy_of` maps a granted transaction to its occupancy and an
    /// optional grant-time lookup outcome (the bus passes an L2-partition
    /// probe; fixed-occupancy resources return a constant). Returns the
    /// granted transaction, which the resource has also retained as
    /// active.
    pub fn try_grant<F>(&mut self, now: Cycle, mut occupancy_of: F) -> Option<ActiveTxn>
    where
        F: FnMut(CoreId, &Pending) -> (u64, Option<bool>),
    {
        if !self.is_free(now) {
            return None;
        }
        let worst = self.worst_occupancy;
        self.view_buf.clear();
        self.view_buf.extend(
            self.pending
                .iter()
                .map(|p| p.map(|p| RequestView { ready: p.ready, occupancy: worst })),
        );
        let chosen = self.arbiter.select(&self.view_buf, now)?;
        debug_assert!(self.pending[chosen].is_some(), "arbiter chose an empty slot");
        let pending = self.pending[chosen].take()?;
        debug_assert!(pending.ready <= now, "arbiter granted a not-yet-ready request");
        let core = CoreId::new(chosen);
        let (occupancy, l2_hit) = occupancy_of(core, &pending);
        debug_assert!(occupancy > 0);
        let txn = ActiveTxn {
            core,
            kind: pending.kind,
            addr: pending.addr,
            ready: pending.ready,
            granted: now,
            until: now + occupancy,
            l2_hit,
        };
        self.active = Some(txn);
        self.stats.busy_cycles += occupancy;
        self.stats.grants += 1;
        self.stats.per_core_busy[chosen] += occupancy;
        self.stats.per_core_grants[chosen] += 1;
        Some(txn)
    }

    /// The earliest cycle `>= now` at which this resource can act on its
    /// own — complete its active transaction, or (when free) grant a
    /// posted request — or `None` when it is quiescent (idle with
    /// nothing posted, so only a new post can wake it).
    ///
    /// This is a *sound lower bound*: the machine's quiescence-skipping
    /// loop may step the returned cycle and find nothing to do (e.g. a
    /// fixed-priority loser), but no grant or completion can ever occur
    /// strictly before it. While occupied, the horizon is the completion
    /// cycle — arbitration only runs on a free resource, so nothing else
    /// can happen here earlier (posts are the cores' events, and they are
    /// accounted by the per-core horizons).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if let Some(active) = self.active {
            return Some(active.until.max(now));
        }
        let worst = self.worst_occupancy;
        let mut horizon: Option<Cycle> = None;
        for (core, pending) in self.pending.iter().enumerate() {
            let Some(p) = pending else { continue };
            let view = RequestView { ready: p.ready, occupancy: worst };
            if let Some(chance) = self.arbiter.earliest_grant(core, view, now) {
                let chance = chance.max(now);
                horizon = Some(horizon.map_or(chance, |h: Cycle| h.min(chance)));
            }
        }
        horizon
    }

    /// Resets arbitration statistics (not pending requests).
    pub fn reset_stats(&mut self) {
        let n = self.pending.len();
        self.stats = ResourceStats::new(n);
    }

    /// Rewinds the resource to its just-built state for a possibly
    /// different policy: drops pending and active transactions, resets
    /// arbitration state and statistics, and re-targets the arbiter,
    /// worst-case occupancy, and requester count. Indistinguishable from
    /// `SharedResource::new` with the same parameters.
    pub fn reset_to(&mut self, arbiter: ArbiterKind, worst_occupancy: u64, num_cores: usize) {
        if self.arbiter.kind() == arbiter && self.pending.len() == num_cores {
            self.arbiter.reset();
        } else {
            self.arbiter = build_arbiter(arbiter, num_cores);
        }
        self.worst_occupancy = worst_occupancy;
        self.pending.clear();
        self.pending.resize(num_cores, None);
        self.active = None;
        self.stats = ResourceStats::new(num_cores);
        self.view_buf.clear();
    }

    /// Appends a time-relative signature of the in-flight state to `out`
    /// (pending slots, active transaction, arbiter state), encoding every
    /// cycle stamp relative to `now`. Two resources with equal signatures
    /// evolve identically from their respective `now`s.
    pub(crate) fn ff_signature(&self, now: Cycle, out: &mut Vec<u64>) {
        for p in &self.pending {
            match p {
                None => out.push(u64::MAX),
                Some(p) => {
                    out.push(p.kind as u64);
                    out.push(p.addr);
                    out.push(now.wrapping_sub(p.ready));
                }
            }
        }
        match self.active {
            None => out.push(u64::MAX),
            Some(a) => {
                out.push(a.core.index() as u64);
                out.push(a.kind as u64);
                out.push(a.addr);
                out.push(now.wrapping_sub(a.ready));
                out.push(now.wrapping_sub(a.granted));
                out.push(a.until.wrapping_sub(now));
                out.push(match a.l2_hit {
                    None => 2,
                    Some(h) => u64::from(h),
                });
            }
        }
        self.arbiter.ff_signature(now, out);
    }

    /// Shifts every live cycle stamp forward by `delta` (fast-forward).
    pub(crate) fn ff_shift(&mut self, delta: Cycle) {
        for p in self.pending.iter_mut().flatten() {
            p.ready += delta;
        }
        if let Some(a) = &mut self.active {
            a.ready += delta;
            a.granted += delta;
            a.until += delta;
        }
    }

    /// Adds `k` copies of the per-period statistics delta (fast-forward).
    pub(crate) fn ff_scale_stats(&mut self, delta: &ResourceStats, k: u64) {
        self.stats.busy_cycles += k * delta.busy_cycles;
        self.stats.grants += k * delta.grants;
        for (s, d) in self.stats.per_core_busy.iter_mut().zip(&delta.per_core_busy) {
            *s += k * d;
        }
        for (s, d) in self.stats.per_core_grants.iter_mut().zip(&delta.per_core_grants) {
            *s += k * d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc(occupancy: u64, num_cores: usize) -> SharedResource {
        SharedResource::memory_controller(
            McQueueConfig { service_occupancy: occupancy, arbiter: ArbiterKind::Fifo },
            num_cores,
        )
    }

    #[test]
    fn resource_ids_are_stable() {
        assert_eq!(ResourceId::BUS.index(), 0);
        assert_eq!(ResourceId::MEMORY_CONTROLLER.index(), 1);
        assert_eq!(ResourceId::new(1), ResourceId::MEMORY_CONTROLLER);
        assert_eq!(ResourceId::BUS.to_string(), "r0");
    }

    #[test]
    fn kind_slugs_are_short_and_stable() {
        assert_eq!(ResourceKind::Bus.to_string(), "bus");
        assert_eq!(ResourceKind::MemoryController.to_string(), "mc");
    }

    #[test]
    fn bus_constructor_uses_bus_config() {
        let bus = SharedResource::bus(BusConfig::ngmp(), 4);
        assert_eq!(bus.id(), ResourceId::BUS);
        assert_eq!(bus.kind(), ResourceKind::Bus);
        assert_eq!(bus.arbiter_kind(), ArbiterKind::RoundRobin);
    }

    #[test]
    fn mc_queue_serialises_concurrent_misses_in_ready_order() {
        let mut q = mc(4, 3);
        q.post(CoreId::new(2), BusOpKind::Load, 0x80, 0);
        q.post(CoreId::new(0), BusOpKind::Load, 0x40, 1);
        let first = q.try_grant(1, |_, _| (4, None)).expect("grant");
        assert_eq!(first.core, CoreId::new(2), "FIFO grants the oldest ready request");
        assert!(q.try_grant(2, |_, _| (4, None)).is_none(), "occupied until cycle 5");
        let done = q.take_completed(5).expect("completes");
        assert_eq!(done.gamma(), 1);
        let second = q.try_grant(5, |_, _| (4, None)).expect("grant");
        assert_eq!(second.core, CoreId::new(0));
        assert_eq!(second.gamma(), 4, "queued behind the first occupancy");
    }

    #[test]
    fn per_resource_stats_accumulate_independently() {
        let mut q = mc(3, 2);
        q.post(CoreId::new(1), BusOpKind::Ifetch, 0, 0);
        q.try_grant(0, |_, _| (3, None)).expect("grant");
        assert_eq!(q.stats().grants, 1);
        assert_eq!(q.stats().busy_cycles, 3);
        assert_eq!(q.stats().per_core_busy, vec![0, 3]);
        assert!((q.stats().utilization(6) - 0.5).abs() < 1e-12);
        q.reset_stats();
        assert_eq!(q.stats().grants, 0);
    }

    #[test]
    fn contenders_and_outstanding_cover_pending_and_active() {
        let mut q = mc(2, 3);
        q.post(CoreId::new(0), BusOpKind::Load, 0, 0);
        q.post(CoreId::new(1), BusOpKind::Load, 0, 0);
        assert_eq!(q.contenders_of(CoreId::new(2)), 2);
        q.try_grant(0, |_, _| (2, None)).expect("grant c0");
        assert!(q.has_outstanding(CoreId::new(0)), "active still counts");
        assert!(q.has_outstanding(CoreId::new(1)));
        assert!(!q.has_outstanding(CoreId::new(2)));
    }

    #[test]
    fn next_event_tracks_completion_then_grant_chance() {
        let mut q = mc(4, 2);
        assert_eq!(q.next_event(0), None, "idle and empty: quiescent");
        q.post(CoreId::new(0), BusOpKind::Load, 0, 5);
        assert_eq!(q.next_event(0), Some(5), "free: earliest grant chance is readiness");
        assert_eq!(q.next_event(9), Some(9), "a ready request on a free resource is imminent");
        q.try_grant(9, |_, _| (4, None)).expect("grant");
        q.post(CoreId::new(1), BusOpKind::Load, 0, 10);
        assert_eq!(q.next_event(10), Some(13), "occupied: horizon is the completion cycle");
        q.take_completed(13).expect("completes");
        assert_eq!(q.next_event(13), Some(13), "pending again ready at completion");
    }

    #[test]
    fn next_event_honours_tdma_schedule() {
        let mut q = SharedResource::memory_controller(
            McQueueConfig { service_occupancy: 4, arbiter: ArbiterKind::Tdma { slot_cycles: 8 } },
            2,
        );
        // Core 1's slots are [8,16), [24,32)…
        q.post(CoreId::new(1), BusOpKind::Load, 0, 0);
        assert_eq!(q.next_event(0), Some(8), "skip straight to the owner's slot");
        assert_eq!(q.next_event(14), Some(24), "too little slot left: next rotation");
    }

    #[test]
    #[should_panic(expected = "second transaction")]
    fn double_post_panics_per_resource() {
        let mut q = mc(2, 1);
        q.post(CoreId::new(0), BusOpKind::Load, 0, 0);
        q.post(CoreId::new(0), BusOpKind::Load, 0, 0);
    }
}
