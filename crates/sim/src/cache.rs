//! Set-associative cache timing model.
//!
//! Tracks tags only (no data), with LRU, FIFO, or pseudo-random
//! replacement. Used for the private IL1/DL1 caches and for each core's
//! L2 partition.
//!
//! Lines live in one contiguous allocation (`sets × ways`), so building
//! or resetting a cache touches exactly one buffer — this is what makes
//! the batched-execution arena's reset-not-rebuild path cheap.

use crate::config::CacheConfig;
pub use crate::config::Replacement;
use crate::types::Addr;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (allocate-on-miss).
    Miss,
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; `0` when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    /// LRU: last-touch stamp. FIFO: fill stamp.
    stamp: u64,
}

const COLD: Line = Line { tag: 0, valid: false, stamp: 0 };

/// A set-associative, tag-only cache.
///
/// ```
/// use rrb_sim::{Cache, CacheConfig, Replacement};
/// let cfg = CacheConfig {
///     size_bytes: 128, ways: 2, line_bytes: 32, latency: 1,
///     replacement: Replacement::Lru,
/// };
/// let mut c = Cache::new(cfg);
/// assert!(!c.probe(0x0));         // cold
/// c.touch(0x0);
/// assert!(c.probe(0x0));          // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// All lines, set-major: set `s` is `lines[s * ways .. (s + 1) * ways]`.
    lines: Box<[Line]>,
    /// Number of sets (cached so the hot path avoids re-deriving it).
    sets: u64,
    ways: usize,
    stats: CacheStats,
    /// Monotonic access counter; doubles as the xorshift seed for random
    /// replacement so the model stays deterministic.
    clock: u64,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid; validate configurations with
    /// [`CacheConfig::validate`] first when they come from user input.
    pub fn new(cfg: CacheConfig) -> Self {
        // lint_sources: allow (construction-time geometry check)
        cfg.validate("cache").expect("invalid cache geometry");
        let sets = cfg.sets();
        let ways = cfg.ways as usize;
        let lines = vec![COLD; sets as usize * ways].into_boxed_slice();
        Cache { cfg, lines, sets, ways, stats: CacheStats::default(), clock: 0 }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets the counters (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Adds a pre-computed delta to the counters (fast-forward scaling).
    pub(crate) fn ff_add_stats(&mut self, hits: u64, misses: u64) {
        self.stats.hits += hits;
        self.stats.misses += misses;
    }

    /// Rewinds the cache to its just-built state — cold lines, zeroed
    /// counters and replacement clock — without reallocating.
    pub fn reset(&mut self) {
        self.lines.fill(COLD);
        self.stats = CacheStats::default();
        self.clock = 0;
    }

    /// Re-targets this cache at `cfg`, reusing the line buffer when the
    /// geometry (size, ways, line size) is unchanged — only the latency
    /// and replacement policy are patched in. Falls back to a rebuild on
    /// a geometry change. Either way the result is indistinguishable from
    /// `Cache::new(cfg)`.
    pub fn reset_to(&mut self, cfg: CacheConfig) {
        if cfg.size_bytes == self.cfg.size_bytes
            && cfg.ways == self.cfg.ways
            && cfg.line_bytes == self.cfg.line_bytes
        {
            self.cfg = cfg;
            self.reset();
        } else {
            *self = Cache::new(cfg);
        }
    }

    fn set_index(&self, addr: Addr) -> usize {
        ((addr / self.cfg.line_bytes) % self.sets) as usize
    }

    fn tag(&self, addr: Addr) -> u64 {
        addr / self.cfg.line_bytes / self.sets
    }

    /// The set index an address maps to (exposed for kernel construction,
    /// which engineers same-set conflict misses).
    pub fn set_of(&self, addr: Addr) -> usize {
        self.set_index(addr)
    }

    /// Whether the line containing `addr` is resident, without touching
    /// replacement state or statistics.
    pub fn probe(&self, addr: Addr) -> bool {
        let base = self.set_index(addr) * self.ways;
        let set = &self.lines[base..base + self.ways];
        let tag = self.tag(addr);
        set.iter().any(|l| l.valid && l.tag == tag)
    }

    /// Accesses `addr`: returns [`Access::Hit`] when resident, otherwise
    /// fills the line (evicting per the replacement policy) and returns
    /// [`Access::Miss`]. Updates statistics and replacement state.
    pub fn touch(&mut self, addr: Addr) -> Access {
        self.clock += 1;
        let clock = self.clock;
        let tag = self.tag(addr);
        let base = self.set_index(addr) * self.ways;
        let replacement = self.cfg.replacement;
        let set = &mut self.lines[base..base + self.ways];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            if replacement == Replacement::Lru {
                line.stamp = clock;
            }
            self.stats.hits += 1;
            return Access::Hit;
        }

        // Miss: pick a victim.
        let victim = if let Some(pos) = set.iter().position(|l| !l.valid) {
            pos
        } else {
            match replacement {
                Replacement::Lru | Replacement::Fifo => {
                    // Oldest stamp. For FIFO the stamp is the fill time.
                    let mut best = 0;
                    for (i, l) in set.iter().enumerate().skip(1) {
                        if l.stamp < set[best].stamp {
                            best = i;
                        }
                    }
                    best
                }
                Replacement::Random => {
                    // Deterministic xorshift over the access counter.
                    let mut x = clock.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % set.len() as u64) as usize
                }
            }
        };
        set[victim] = Line { tag, valid: true, stamp: clock };
        self.stats.misses += 1;
        Access::Miss
    }

    /// Invalidates the whole cache (e.g. between warm-up and measurement).
    pub fn invalidate_all(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
    }

    /// Appends a time-free signature of the named sets to `out`: per way,
    /// validity, tag, and the line's *relative* stamp rank within its set.
    /// Two caches with equal signatures behave identically on any future
    /// LRU/FIFO access pattern confined to those sets, regardless of the
    /// absolute clock values — the property the steady-state fast-forward
    /// detector relies on. (Random replacement depends on the absolute
    /// clock, which is why the detector refuses it.)
    pub(crate) fn rank_signature(&self, sets: &[usize], out: &mut Vec<u64>) {
        for &s in sets {
            let base = s * self.ways;
            let set = &self.lines[base..base + self.ways];
            for l in set {
                out.push(u64::from(l.valid));
                out.push(if l.valid { l.tag } else { 0 });
                // Rank = number of valid lines in this set with a strictly
                // smaller stamp (stamps are unique per cache).
                let rank = if l.valid {
                    set.iter().filter(|o| o.valid && o.stamp < l.stamp).count() as u64
                } else {
                    0
                };
                out.push(rank);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn small(ways: u32, replacement: Replacement) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: u64::from(ways) * 2 * 32,
            ways,
            line_bytes: 32,
            latency: 1,
            replacement,
        })
    }

    #[test]
    fn cold_cache_misses_then_hits() {
        let mut c = small(4, Replacement::Lru);
        assert_eq!(c.touch(0x40), Access::Miss);
        assert_eq!(c.touch(0x40), Access::Hit);
        assert_eq!(c.touch(0x47), Access::Hit, "same line, different byte");
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 1 });
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2 sets, 2 ways. Set 0 holds lines whose (addr/32) is even.
        let mut c = small(2, Replacement::Lru);
        let line = |i: u64| i * 32 * 2; // all map to set 0
        assert_eq!(c.touch(line(0)), Access::Miss);
        assert_eq!(c.touch(line(1)), Access::Miss);
        assert_eq!(c.touch(line(0)), Access::Hit); // 1 is now LRU
        assert_eq!(c.touch(line(2)), Access::Miss); // evicts 1
        assert_eq!(c.touch(line(0)), Access::Hit);
        assert_eq!(c.touch(line(1)), Access::Miss, "line 1 was evicted");
    }

    #[test]
    fn fifo_evicts_in_fill_order_despite_rehits() {
        let mut c = small(2, Replacement::Fifo);
        let line = |i: u64| i * 32 * 2;
        c.touch(line(0));
        c.touch(line(1));
        c.touch(line(0)); // re-hit must NOT refresh FIFO order
        c.touch(line(2)); // evicts 0, the oldest fill
        assert_eq!(c.touch(line(1)), Access::Hit);
        assert_eq!(c.touch(line(0)), Access::Miss, "FIFO evicted the oldest fill");
    }

    #[test]
    fn ws_of_ways_plus_one_same_set_always_misses_lru() {
        // The paper's rsk construction (§2): W+1 same-set lines thrash a
        // W-way LRU set, so every access misses.
        let ways = 4;
        let mut c = small(ways, Replacement::Lru);
        let stride = 2 * 32; // set count * line size => same set
        let lines: Vec<u64> = (0..=u64::from(ways)).map(|i| i * stride).collect();
        // Warm-up round.
        for &a in &lines {
            c.touch(a);
        }
        c.reset_stats();
        for round in 0..10 {
            for &a in &lines {
                assert_eq!(c.touch(a), Access::Miss, "round {round} addr {a:#x}");
            }
        }
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn ws_of_ways_same_set_always_hits_after_warmup() {
        let ways = 4;
        let mut c = small(ways, Replacement::Lru);
        let stride = 2 * 32;
        let lines: Vec<u64> = (0..u64::from(ways)).map(|i| i * stride).collect();
        for &a in &lines {
            c.touch(a);
        }
        for &a in &lines {
            assert_eq!(c.touch(a), Access::Hit);
        }
    }

    #[test]
    fn probe_does_not_disturb_lru_or_stats() {
        let mut c = small(2, Replacement::Lru);
        let line = |i: u64| i * 32 * 2;
        c.touch(line(0));
        c.touch(line(1));
        let before = c.stats();
        assert!(c.probe(line(0)));
        assert!(!c.probe(line(5)));
        assert_eq!(c.stats(), before);
        // probe(line(0)) must not have refreshed line 0:
        c.touch(line(2)); // evicts LRU = line 0
        assert!(!c.probe(line(0)));
    }

    #[test]
    fn invalidate_all_empties_cache() {
        let mut c = small(2, Replacement::Lru);
        c.touch(0x0);
        c.invalidate_all();
        assert!(!c.probe(0x0));
    }

    #[test]
    fn random_replacement_is_deterministic() {
        let run = || {
            let mut c = small(2, Replacement::Random);
            let mut misses = 0;
            for i in 0..1000u64 {
                if c.touch((i % 5) * 64) == Access::Miss {
                    misses += 1;
                }
            }
            misses
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn set_mapping_uses_line_granularity() {
        let c = small(2, Replacement::Lru); // 2 sets
        assert_eq!(c.set_of(0), 0);
        assert_eq!(c.set_of(31), 0);
        assert_eq!(c.set_of(32), 1);
        assert_eq!(c.set_of(64), 0);
    }

    #[test]
    fn hit_rate_bounds() {
        let mut c = small(2, Replacement::Lru);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.touch(0);
        c.touch(0);
        let r = c.stats().hit_rate();
        assert!(r > 0.0 && r <= 1.0);
    }

    /// Drives a cache through a workload twice — once fresh, once after a
    /// reset — and checks every observable matches.
    fn workload(c: &mut Cache) -> (Vec<Access>, CacheStats) {
        let accesses: Vec<Access> = (0..200u64).map(|i| c.touch((i % 7) * 64)).collect();
        (accesses, c.stats())
    }

    #[test]
    fn reset_is_indistinguishable_from_new() {
        for repl in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
            let mut fresh = small(2, repl);
            let expected = workload(&mut fresh);
            let mut reused = small(2, repl);
            let _ = workload(&mut reused); // dirty it
            reused.reset();
            assert_eq!(workload(&mut reused), expected, "{repl:?}");
        }
    }

    #[test]
    fn reset_to_patches_policy_on_same_geometry() {
        let mut c = small(2, Replacement::Lru);
        let _ = workload(&mut c);
        let mut cfg = *c.config();
        cfg.replacement = Replacement::Fifo;
        cfg.latency = 9;
        c.reset_to(cfg);
        assert_eq!(c.config().latency, 9);
        let mut fresh = Cache::new(cfg);
        assert_eq!(workload(&mut c), workload(&mut fresh));
    }

    #[test]
    fn reset_to_rebuilds_on_geometry_change() {
        let mut c = small(2, Replacement::Lru);
        let bigger = CacheConfig {
            size_bytes: 4 * 4 * 32,
            ways: 4,
            line_bytes: 32,
            latency: 1,
            replacement: Replacement::Lru,
        };
        c.reset_to(bigger);
        assert_eq!(*c.config(), bigger);
        let mut fresh = Cache::new(bigger);
        assert_eq!(workload(&mut c), workload(&mut fresh));
    }

    #[test]
    fn rank_signature_is_clock_invariant() {
        // Same residency + recency order at different absolute clocks must
        // produce the same signature.
        let mut a = small(2, Replacement::Lru);
        let mut b = small(2, Replacement::Lru);
        let line = |i: u64| i * 32 * 2;
        a.touch(line(0));
        a.touch(line(1));
        // b reaches the same placement and recency order after extra
        // re-hits (so at a strictly higher absolute clock).
        b.touch(line(0));
        b.touch(line(1));
        b.touch(line(0));
        b.touch(line(1));
        let mut sa = Vec::new();
        let mut sb = Vec::new();
        a.rank_signature(&[0], &mut sa);
        b.rank_signature(&[0], &mut sb);
        assert_eq!(sa, sb);
        // Disturbing the order changes it.
        b.touch(line(0));
        sb.clear();
        b.rank_signature(&[0], &mut sb);
        assert_ne!(sa, sb);
    }
}
