//! The in-order core pipeline model.
//!
//! Each core executes its [`Program`] one instruction at a time:
//!
//! * `nop` / `alu` / `branch` burn their configured latency;
//! * a load probes DL1 after `dl1.latency` cycles — on a hit the
//!   instruction retires, on a miss the core posts a bus request and
//!   stalls until the data returns (so the *injection time* between two
//!   consecutive DL1-missing loads is exactly `dl1.latency`, matching the
//!   paper's `δ_rsk` of 1 on the reference and 4 on the variant setup);
//! * a store retires as soon as it enters the store buffer and only stalls
//!   the pipeline when the buffer is full (§5.3);
//! * instruction fetch goes through IL1; a fetch miss stalls the pipeline
//!   through a bus transaction like a load miss. Kernels are unrolled to
//!   fit IL1, as in the paper, so steady-state fetches always hit.
//!
//! The core is a single bus master: at most one of {demand load, fetch
//! miss, refill, store drain} is posted at a time, with refills first,
//! then demand misses, then store drains.

use crate::bus::BusOpKind;
use crate::cache::{Access, Cache};
use crate::config::MachineConfig;
use crate::instr::{Instr, Iterations, Program};
use crate::store_buffer::StoreBuffer;
use crate::types::{Addr, CoreId, Cycle};

/// Base of the per-core instruction address region (64 MB apart so no two
/// cores alias instruction lines in DRAM rows).
const IFETCH_BASE: Addr = 0x8000_0000;
/// Size of each core's instruction region.
const IFETCH_STRIDE: Addr = 0x0400_0000;
/// Bytes per instruction.
const INSTR_BYTES: Addr = 4;

/// What a core wants to post on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingPost {
    /// Transaction kind ([`BusOpKind::Load`], [`BusOpKind::Ifetch`], or
    /// [`BusOpKind::MissResponse`]; store drains are generated from the
    /// store buffer directly).
    pub kind: BusOpKind,
    /// Target address.
    pub addr: Addr,
    /// Cycle at which the request is (or becomes) ready.
    pub ready: Cycle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Next instruction dispatches once `resume_at` is reached.
    Idle { resume_at: Cycle },
    /// Stalled on a demand-load bus transaction.
    WaitLoad,
    /// Stalled on an instruction-fetch bus transaction.
    WaitIfetch,
    /// Program complete.
    Done,
}

/// The execution state of one core.
#[derive(Debug, Clone)]
pub struct CoreModel {
    id: CoreId,
    program: Program,
    pc: usize,
    iteration: u64,
    state: State,
    /// Demand request waiting for the bus slot (fetch/load miss, refill).
    want_post: Option<PendingPost>,
    /// Private data cache.
    pub(crate) dl1: Cache,
    /// Private instruction cache.
    pub(crate) il1: Cache,
    /// Store buffer.
    pub(crate) store_buffer: StoreBuffer,
    completed_at: Option<Cycle>,
    instructions: u64,
    dl1_lat: u64,
    il1_lat: u64,
    nop_lat: u64,
    branch_lat: u64,
    line_bytes: Addr,
}

impl CoreModel {
    /// Builds an idle core with cold caches and an empty program.
    pub fn new(id: CoreId, cfg: &MachineConfig) -> Self {
        CoreModel {
            id,
            program: Program::empty(),
            pc: 0,
            iteration: 0,
            state: State::Done,
            want_post: None,
            dl1: Cache::new(cfg.dl1),
            il1: Cache::new(cfg.il1),
            store_buffer: StoreBuffer::new(cfg.store_buffer.entries),
            completed_at: Some(0),
            instructions: 0,
            dl1_lat: cfg.dl1.latency,
            il1_lat: cfg.il1.latency,
            nop_lat: cfg.nop_latency,
            branch_lat: cfg.branch_latency,
            line_bytes: cfg.dl1.line_bytes,
        }
    }

    /// The core's identifier.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Rewinds the core to its just-built state for a possibly different
    /// configuration — empty program, cold caches, empty store buffer,
    /// zeroed counters, re-patched latencies — reusing the cache and
    /// buffer allocations where the geometry allows. Indistinguishable
    /// from `CoreModel::new(self.id(), cfg)`.
    pub fn reset_to(&mut self, cfg: &MachineConfig) {
        self.program = Program::empty();
        self.pc = 0;
        self.iteration = 0;
        self.state = State::Done;
        self.want_post = None;
        self.dl1.reset_to(cfg.dl1);
        self.il1.reset_to(cfg.il1);
        self.store_buffer.reset_to(cfg.store_buffer.entries);
        self.completed_at = Some(0);
        self.instructions = 0;
        self.dl1_lat = cfg.dl1.latency;
        self.il1_lat = cfg.il1.latency;
        self.nop_lat = cfg.nop_latency;
        self.branch_lat = cfg.branch_latency;
        self.line_bytes = cfg.dl1.line_bytes;
    }

    /// Installs `program` and restarts execution from cycle `start`.
    pub fn load_program(&mut self, program: Program, start: Cycle) {
        let empty = match program.iterations() {
            Iterations::Finite(n) => n == 0 || program.body().is_empty(),
            Iterations::Infinite => program.body().is_empty(),
        };
        self.program = program;
        self.pc = 0;
        self.iteration = 0;
        self.want_post = None;
        if empty {
            self.state = State::Done;
            self.completed_at = Some(start);
        } else {
            self.state = State::Idle { resume_at: start };
            self.completed_at = None;
        }
    }

    /// Whether the core has retired its whole (finite) program.
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// Completion cycle of a finished finite program.
    pub fn completed_at(&self) -> Option<Cycle> {
        self.completed_at
    }

    /// Retired instruction count.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The address of the instruction at `pc` in this core's fetch region.
    fn pc_addr(&self) -> Addr {
        IFETCH_BASE + IFETCH_STRIDE * self.id.index() as Addr + INSTR_BYTES * self.pc as Addr
    }

    fn line_of(&self, addr: Addr) -> Addr {
        addr / self.line_bytes * self.line_bytes
    }

    /// Advances the program counter, wrapping at the body end and counting
    /// iterations; transitions to `Done` when the last iteration retires.
    fn advance_pc(&mut self, now: Cycle) {
        self.instructions += 1;
        self.pc += 1;
        if self.pc == self.program.body().len() {
            self.pc = 0;
            self.iteration += 1;
            if let Iterations::Finite(n) = self.program.iterations() {
                if self.iteration >= n {
                    self.state = State::Done;
                    self.completed_at = Some(now);
                }
            }
        }
    }

    /// The request this core wants the machine to post (if the bus slot is
    /// free). Cleared by [`CoreModel::take_post`].
    pub(crate) fn want_post(&self) -> Option<PendingPost> {
        self.want_post
    }

    /// Consumes the pending post once the machine has placed it on the bus.
    pub(crate) fn take_post(&mut self) -> Option<PendingPost> {
        self.want_post.take()
    }

    /// Called when DRAM produced the line: the core asks to post the
    /// refill (response phase) on the bus.
    pub(crate) fn enqueue_refill(&mut self, addr: Addr, ready: Cycle) {
        debug_assert!(self.want_post.is_none(), "refill while another post pending");
        self.want_post = Some(PendingPost { kind: BusOpKind::MissResponse, addr, ready });
    }

    /// Called when the final data for the in-flight demand miss is back
    /// (either an L2 hit completed, or the refill response completed).
    /// Fills the relevant L1 and resumes the pipeline at `now`.
    pub(crate) fn on_data_return(&mut self, addr: Addr, now: Cycle) {
        match self.state {
            State::WaitIfetch => {
                self.il1.touch(addr);
                // Fetch satisfied: dispatch the fetched instruction now.
                self.state = State::Idle { resume_at: now };
            }
            State::WaitLoad => {
                // The DL1 line was already allocated by the dispatch-time
                // lookup; re-touching here would double-count a hit.
                // The load retires as the data arrives.
                self.advance_pc(now);
                if !self.is_done() {
                    self.state = State::Idle { resume_at: now };
                }
            }
            s => unreachable!("data return in state {s:?}"),
        }
    }

    /// Advances the pipeline at cycle `now`. Dispatches at most one
    /// instruction (every instruction costs at least one cycle). Returns
    /// the number of store-buffer stall cycles incurred this tick.
    pub(crate) fn tick(&mut self, now: Cycle) -> u64 {
        let State::Idle { resume_at } = self.state else {
            return 0;
        };
        if resume_at > now || self.want_post.is_some() {
            return 0;
        }
        // Instruction fetch.
        let fetch_line = self.line_of(self.pc_addr());
        if self.il1.probe(fetch_line) {
            self.il1.touch(fetch_line);
        } else {
            self.state = State::WaitIfetch;
            self.want_post = Some(PendingPost {
                kind: BusOpKind::Ifetch,
                addr: fetch_line,
                ready: now + self.il1_lat,
            });
            return 0;
        }
        let instr = self.program.body()[self.pc];
        match instr {
            Instr::Nop => {
                self.advance_pc(now + self.nop_lat);
                if !self.is_done() {
                    self.state = State::Idle { resume_at: now + self.nop_lat };
                }
            }
            Instr::Alu { latency } => {
                let done = now + latency.max(1);
                self.advance_pc(done);
                if !self.is_done() {
                    self.state = State::Idle { resume_at: done };
                }
            }
            Instr::Branch => {
                self.advance_pc(now + self.branch_lat);
                if !self.is_done() {
                    self.state = State::Idle { resume_at: now + self.branch_lat };
                }
            }
            Instr::Load(addr) => {
                let line = self.line_of(addr);
                if self.dl1.touch(line) == Access::Hit {
                    let done = now + self.dl1_lat;
                    self.advance_pc(done);
                    if !self.is_done() {
                        self.state = State::Idle { resume_at: done };
                    }
                } else {
                    // Miss known after the DL1 lookup: request ready then.
                    self.state = State::WaitLoad;
                    self.want_post = Some(PendingPost {
                        kind: BusOpKind::Load,
                        addr: line,
                        ready: now + self.dl1_lat,
                    });
                }
            }
            Instr::Store(addr) => {
                let line = self.line_of(addr);
                if self.store_buffer.try_push(line, now + self.dl1_lat) {
                    // Write-through, write-no-allocate DL1: refresh on hit
                    // only.
                    if self.dl1.probe(line) {
                        self.dl1.touch(line);
                    }
                    let done = now + self.dl1_lat;
                    self.advance_pc(done);
                    if !self.is_done() {
                        self.state = State::Idle { resume_at: done };
                    }
                } else {
                    // Full buffer: stall one cycle and retry.
                    self.state = State::Idle { resume_at: now + 1 };
                    return 1;
                }
            }
        }
        0
    }

    /// Whether the pipeline is stalled waiting for a bus transaction.
    pub fn is_waiting_for_bus(&self) -> bool {
        matches!(self.state, State::WaitLoad | State::WaitIfetch)
    }

    /// Completed loop iterations so far.
    pub(crate) fn iteration(&self) -> u64 {
        self.iteration
    }

    /// The installed program.
    pub(crate) fn program(&self) -> &Program {
        &self.program
    }

    /// Collects the line addresses this core's program can ever touch:
    /// data lines (loads/stores) into `data`, instruction-fetch lines into
    /// `fetch`. Programs are static, so these sets bound the reachable
    /// cache footprint exactly.
    pub(crate) fn ff_footprint(&self, data: &mut Vec<Addr>, fetch: &mut Vec<Addr>) {
        for instr in self.program.body() {
            match instr {
                Instr::Load(a) | Instr::Store(a) => data.push(self.line_of(*a)),
                _ => {}
            }
        }
        for pc in 0..self.program.body().len() {
            let addr =
                IFETCH_BASE + IFETCH_STRIDE * self.id.index() as Addr + INSTR_BYTES * pc as Addr;
            fetch.push(self.line_of(addr));
        }
    }

    /// Appends a time-relative signature of the pipeline state to `out`
    /// (pc, execution state, pending post), with cycle stamps relative to
    /// `now`. Iteration and instruction counters are deliberately
    /// excluded: they advance monotonically and are scaled separately
    /// when a period is skipped.
    pub(crate) fn ff_signature(&self, now: Cycle, out: &mut Vec<u64>) {
        out.push(self.pc as u64);
        match self.state {
            State::Idle { resume_at } => {
                out.push(0);
                out.push(resume_at.wrapping_sub(now));
            }
            State::WaitLoad => out.push(1),
            State::WaitIfetch => out.push(2),
            State::Done => out.push(3),
        }
        match self.want_post {
            None => out.push(u64::MAX),
            Some(p) => {
                out.push(p.kind as u64);
                out.push(p.addr);
                out.push(p.ready.wrapping_sub(now));
            }
        }
        self.store_buffer.ff_signature(now, out);
    }

    /// Shifts every live cycle stamp forward by `delta` (fast-forward).
    /// The completion stamp of an already-finished program is a fixed
    /// past event and is left alone.
    pub(crate) fn ff_shift(&mut self, delta: Cycle) {
        if let State::Idle { resume_at } = &mut self.state {
            *resume_at += delta;
        }
        if let Some(p) = &mut self.want_post {
            p.ready += delta;
        }
        self.store_buffer.ff_shift(delta);
    }

    /// Credits `iterations` loop iterations and `instructions` retired
    /// instructions for the skipped periods (fast-forward).
    pub(crate) fn ff_add_progress(&mut self, iterations: u64, instructions: u64) {
        self.iteration += iterations;
        self.instructions += instructions;
    }

    /// The earliest cycle `>= now` at which this core can act on its own:
    /// dispatch its next instruction (`Idle` resume deadline) or present
    /// a request to the machine's posting phase (demand/refill post
    /// readiness, store-buffer drain readiness). `None` when the core is
    /// passive — `Done`, or stalled waiting for a data return, which the
    /// bus completion horizon accounts for.
    ///
    /// `may_post` is whether the machine would accept a post this cycle
    /// (the core has no transaction outstanding at the bus); while one is
    /// outstanding, posting deadlines are unreachable until the bus
    /// completion — itself a tracked event — so they are excluded from
    /// the horizon.
    pub(crate) fn next_event(&self, now: Cycle, may_post: bool) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        if let State::Idle { resume_at } = self.state {
            horizon = Some(resume_at.max(now));
        }
        if may_post {
            let post_ready = match self.want_post {
                Some(p) => Some(p.ready),
                None => self.store_buffer.head_ready(),
            };
            if let Some(ready) = post_ready {
                let ready = ready.max(now);
                horizon = Some(horizon.map_or(ready, |h| h.min(ready)));
            }
        }
        horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn core(cfg: &MachineConfig) -> CoreModel {
        CoreModel::new(CoreId::new(0), cfg)
    }

    #[test]
    fn empty_program_is_done_immediately() {
        let cfg = MachineConfig::ngmp_ref();
        let mut c = core(&cfg);
        c.load_program(Program::empty(), 5);
        assert!(c.is_done());
        assert_eq!(c.completed_at(), Some(5));
    }

    #[test]
    fn nop_program_takes_nop_latency_each() {
        let cfg = MachineConfig::ngmp_ref();
        let mut c = core(&cfg);
        c.load_program(Program::from_body(vec![Instr::Nop; 3], 2), 0);
        let mut now = 0;
        // First tick triggers an ifetch miss; resolve it by hand.
        c.tick(now);
        let post = c.take_post().expect("cold IL1 misses");
        assert_eq!(post.kind, BusOpKind::Ifetch);
        c.on_data_return(post.addr, 10);
        now = 10;
        while !c.is_done() && now < 100 {
            c.tick(now);
            if let Some(p) = c.take_post() {
                // All 6 nops fit one IL1 line; no more fetch misses.
                panic!("unexpected post {p:?}");
            }
            now += 1;
        }
        // 6 nops at 1 cycle each, starting at cycle 10.
        assert_eq!(c.completed_at(), Some(16));
        assert_eq!(c.instructions(), 6);
    }

    #[test]
    fn load_miss_posts_after_dl1_latency() {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.dl1.latency = 4; // variant architecture
        let mut c = core(&cfg);
        c.load_program(Program::from_body(vec![Instr::load(0x8000)], 1), 0);
        // Warm the IL1 first.
        c.tick(0);
        let f = c.take_post().expect("ifetch miss");
        c.on_data_return(f.addr, 20);
        c.tick(20);
        let p = c.take_post().expect("DL1 miss must request the bus");
        assert_eq!(p.kind, BusOpKind::Load);
        assert_eq!(p.ready, 24, "ready = dispatch + dl1 latency (4)");
        assert!(c.is_waiting_for_bus());
        c.on_data_return(p.addr, 40);
        assert!(c.is_done());
        assert_eq!(c.completed_at(), Some(40));
    }

    #[test]
    fn second_load_to_same_line_hits_dl1() {
        let cfg = MachineConfig::ngmp_ref();
        let mut c = core(&cfg);
        c.load_program(Program::from_body(vec![Instr::load(0x8000), Instr::load(0x8008)], 1), 0);
        c.tick(0);
        let f = c.take_post().expect("ifetch");
        c.on_data_return(f.addr, 10);
        c.tick(10);
        let p = c.take_post().expect("first load misses");
        c.on_data_return(p.addr, 30);
        // Second load: same 32-byte line, must hit and retire in 1 cycle.
        c.tick(30);
        assert!(c.take_post().is_none());
        assert!(c.is_done());
        assert_eq!(c.completed_at(), Some(31));
    }

    #[test]
    fn store_retires_into_buffer_without_stalling() {
        let cfg = MachineConfig::ngmp_ref();
        let mut c = core(&cfg);
        c.load_program(Program::from_body(vec![Instr::store(0x9000); 3], 1), 0);
        c.tick(0);
        let f = c.take_post().expect("ifetch");
        c.on_data_return(f.addr, 10);
        for now in 10..13 {
            let stalls = c.tick(now);
            assert_eq!(stalls, 0);
            assert!(c.take_post().is_none(), "stores do not post demand requests");
        }
        assert!(c.is_done());
        assert_eq!(c.completed_at(), Some(13), "one cycle per buffered store");
        assert_eq!(c.store_buffer.len(), 3);
    }

    #[test]
    fn full_store_buffer_stalls_pipeline() {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.store_buffer.entries = 2;
        let mut c = core(&cfg);
        c.load_program(Program::from_body(vec![Instr::store(0x9000); 3], 1), 0);
        c.tick(0);
        let f = c.take_post().expect("ifetch");
        c.on_data_return(f.addr, 10);
        c.tick(10);
        c.tick(11);
        assert!(c.store_buffer.is_full());
        // Third store cannot enter; stalls accumulate until a drain.
        assert_eq!(c.tick(12), 1);
        assert_eq!(c.tick(13), 1);
        c.store_buffer.complete_head(14);
        assert_eq!(c.tick(14), 0);
        assert!(c.is_done());
    }

    #[test]
    fn infinite_program_never_completes() {
        let cfg = MachineConfig::ngmp_ref();
        let mut c = core(&cfg);
        c.load_program(Program::endless(vec![Instr::Nop]), 0);
        c.tick(0);
        let f = c.take_post().expect("ifetch");
        c.on_data_return(f.addr, 5);
        for now in 5..200 {
            c.tick(now);
        }
        assert!(!c.is_done());
        assert!(c.instructions() > 100);
    }

    #[test]
    fn next_event_follows_pipeline_and_posting_deadlines() {
        let cfg = MachineConfig::ngmp_ref();
        let mut c = core(&cfg);
        assert_eq!(c.next_event(0, true), None, "a Done core with nothing buffered is passive");
        c.load_program(Program::from_body(vec![Instr::load(0x8000)], 1), 4);
        assert_eq!(c.next_event(0, true), Some(4), "idle until the program start");
        c.tick(4);
        // Cold IL1 miss: the fetch post is ready after the IL1 latency.
        assert_eq!(c.next_event(4, true), Some(4 + cfg.il1.latency));
        assert_eq!(c.next_event(4, false), None, "posting blocked: wake on bus completion");
        let f = c.take_post().expect("ifetch miss");
        assert_eq!(c.next_event(5, false), None, "waiting for the fetch data");
        c.on_data_return(f.addr, 9);
        assert_eq!(c.next_event(7, true), Some(9), "resumes at the data return");
    }

    #[test]
    fn next_event_tracks_store_drain_readiness() {
        let cfg = MachineConfig::ngmp_ref();
        let mut c = core(&cfg);
        c.load_program(Program::from_body(vec![Instr::store(0x9000)], 1), 0);
        c.tick(0);
        let f = c.take_post().expect("ifetch");
        c.on_data_return(f.addr, 10);
        c.tick(10);
        assert!(c.is_done(), "the store retires into the buffer");
        // The buffered store becomes a posting deadline once the core may
        // post again: ready = dispatch + dl1 latency.
        assert_eq!(c.next_event(10, true), Some(10 + cfg.dl1.latency));
        assert_eq!(c.next_event(10, false), None);
        assert_eq!(c.next_event(20, true), Some(20), "overdue drains are imminent");
    }

    #[test]
    fn pc_addresses_are_per_core_disjoint() {
        let cfg = MachineConfig::ngmp_ref();
        let a = CoreModel::new(CoreId::new(0), &cfg);
        let b = CoreModel::new(CoreId::new(1), &cfg);
        assert_ne!(a.pc_addr(), b.pc_addr());
    }
}
