//! The multicore machine: cores + bus + L2 + DRAM, stepped cycle by cycle.
//!
//! ## Per-cycle event order
//!
//! 1. **Bus completion** — a transaction whose occupancy ends this cycle
//!    leaves the bus; its effects (data return, refill scheduling,
//!    store-buffer pop) are delivered immediately, so a core resumed by a
//!    data return executes its next instruction starting *this* cycle.
//! 2. **DRAM** — the memory controller advances; a finished line fetch
//!    becomes a refill request for the owning core.
//! 3. **Core pipelines** — each core dispatches at most one instruction.
//! 4. **Posting** — cores with a free bus slot place their next request
//!    (refill / demand miss first, then a store-buffer drain).
//! 5. **Arbitration** — if the bus is free, the arbiter grants among the
//!    requests whose ready cycle has arrived; the grant-time L2 lookup
//!    fixes the transaction's occupancy.
//!
//! Completion before arbitration in the same cycle is what produces the
//! back-to-back grant chains of the paper's Figures 2–3, and the
//! "resume, then request after `δ = dl1.latency`" rule in step 1/3 is what
//! makes the injection time of consecutive rsk loads equal the DL1 latency
//! (δ_rsk = 1 on `ngmp_ref`, 4 on `ngmp_var`).
//!
//! On a two-level topology ([`MachineConfig::ngmp_two_level`]) a second
//! [`SharedResource`] — the memory-controller queue — sits between the
//! bus and DRAM: an L2-miss request phase, after leaving the bus, posts
//! to the queue, arbitrates (FIFO by default) for controller admission,
//! and only then enters DRAM. The queue completes and grants inside the
//! same per-cycle phases as the bus, so single-bus configurations are
//! cycle-for-cycle unaffected (the golden-trace test pins this).
//!
//! ## Event-driven quiescence skipping
//!
//! [`Machine::step`] always advances exactly one cycle, but most cycles
//! of a contended run are *quiescent*: every core is stalled on a bus or
//! DRAM wait and every phase above is a no-op. Instead of stepping
//! through them, [`Machine::run`] and [`Machine::run_for`] ask each
//! component for its **event horizon** — the earliest future cycle at
//! which it can act:
//!
//! * each [`SharedResource`] reports its active transaction's completion
//!   cycle, or (when free) the earliest grant chance of its pending
//!   requests ([`Arbiter::earliest_grant`], which for TDMA folds in the
//!   slot schedule);
//! * the DRAM reports its in-flight access's `done` cycle;
//! * each core reports its pipeline resume deadline and, when it holds
//!   no bus transaction, its post/store-drain readiness.
//!
//! `now` then jumps straight to the minimum horizon
//! ([`Machine::next_event`]). Every horizon is a sound lower bound on
//! its component's next state change, so the elided cycles are provable
//! no-ops and both modes are cycle-identical — pinned by the
//! golden-trace test and the `prop_event_driven` equivalence property.
//! Set [`MachineConfig::quiescence_skip`] to `false` (or
//! [`MachineBuilder::quiescence_skip`]) to force naive per-cycle
//! stepping when debugging.
//!
//! [`Arbiter::earliest_grant`]: crate::bus::Arbiter::earliest_grant

use crate::bus::{ActiveTxn, ArbiterKind, BusOpKind};
use crate::cache::Access;
use crate::config::{BusConfig, MachineConfig, McQueueConfig, Topology};
use crate::core_model::CoreModel;
use crate::dram::Dram;
use crate::error::SimError;
use crate::instr::{Iterations, Program};
use crate::l2::L2;
use crate::pmc::{Pmc, RequestRecord};
use crate::resource::{ResourceId, SharedResource};
use crate::trace::{Trace, TraceEvent};
use crate::types::{CoreId, Cycle};

/// Result of one core's run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreSummary {
    /// Cycle the program's last instruction retired (None if unfinished or
    /// the program was endless).
    pub completed_at: Option<Cycle>,
    /// Instructions retired.
    pub instructions: u64,
    /// Bus requests observed for this core.
    pub bus_requests: u64,
    /// Largest per-request contention delay observed (`ubd_m` as a naive
    /// analysis would read it off the counters).
    pub max_gamma: Option<u64>,
    /// Sum of all contention delays suffered.
    pub total_gamma: u64,
}

impl CoreSummary {
    /// Whether the core's finite program ran to completion.
    pub fn completed(&self) -> bool {
        self.completed_at.is_some()
    }

    /// Execution time (programs start at cycle 0).
    pub fn execution_time(&self) -> Option<Cycle> {
        self.completed_at
    }
}

/// Result of a [`Machine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Cycle at which stepping stopped.
    pub cycles: Cycle,
    cores: Vec<CoreSummary>,
    /// Overall bus utilisation over the measurement window (the whole
    /// run, or since the last [`Machine::reset_measurements`]), in
    /// `[0, 1]`.
    pub bus_utilization: f64,
    /// Memory-controller-queue utilisation over the measurement window,
    /// when the topology chains one.
    pub mc_utilization: Option<f64>,
}

impl RunSummary {
    /// The summary of one core.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core(&self, core: CoreId) -> &CoreSummary {
        &self.cores[core.index()]
    }

    /// Summaries of all cores in index order.
    pub fn cores(&self) -> &[CoreSummary] {
        &self.cores
    }
}

/// The simulated multicore.
///
/// Fields are crate-visible so the fast-forward module
/// ([`crate::fastforward`]) can fingerprint and shift the whole machine
/// state without a wide accessor surface.
#[derive(Debug)]
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) now: Cycle,
    pub(crate) cores: Vec<CoreModel>,
    pub(crate) bus: SharedResource,
    /// The memory-controller queue of two-level topologies.
    pub(crate) mc: Option<SharedResource>,
    pub(crate) l2: L2,
    pub(crate) dram: Dram,
    pub(crate) pmc: Pmc,
    trace: Trace,
    /// Bus contender count captured when each core's current request was
    /// posted (one outstanding request per core).
    pub(crate) contenders_at_post: Vec<u32>,
    /// Same, for the memory-controller queue.
    pub(crate) mc_contenders_at_post: Vec<u32>,
    /// Cores that were loaded with a finite program (the measurement
    /// targets; endless contenders never terminate).
    pub(crate) finite: Vec<bool>,
    /// Number of finite cores that have not completed yet — maintained
    /// on load and on completion so the run loop never materialises the
    /// core list just to test emptiness.
    pub(crate) unfinished_count: usize,
    /// Cycle of the last [`Machine::reset_measurements`]: the start of
    /// the current measurement window. Utilisations divide by
    /// `now - measure_start`, not absolute `now`, so statistics stay
    /// meaningful after the warm-up idiom.
    measure_start: Cycle,
    /// Number of [`Machine::step`] calls executed — `now` minus the
    /// cycles elided by quiescence skipping. Diagnostics only.
    steps_executed: u64,
}

impl Machine {
    /// Builds a machine from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when the configuration is invalid.
    pub fn new(cfg: MachineConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        let cores = (0..cfg.num_cores).map(|i| CoreModel::new(CoreId::new(i), &cfg)).collect();
        Ok(Machine {
            now: 0,
            cores,
            bus: SharedResource::bus(cfg.topology.bus, cfg.num_cores),
            mc: cfg.topology.mc.map(|mc| SharedResource::memory_controller(mc, cfg.num_cores)),
            l2: L2::new(cfg.l2, cfg.num_cores),
            dram: Dram::new(cfg.dram),
            pmc: Pmc::new(cfg.num_cores, cfg.record_requests),
            trace: Trace::new(cfg.record_trace),
            contenders_at_post: vec![0; cfg.num_cores],
            mc_contenders_at_post: vec![0; cfg.num_cores],
            finite: vec![false; cfg.num_cores],
            unfinished_count: 0,
            measure_start: 0,
            steps_executed: 0,
            cfg,
        })
    }

    /// Starts a [`MachineBuilder`] over the reference configuration.
    pub fn builder() -> MachineBuilder {
        MachineBuilder::new()
    }

    /// Rewinds the machine to the just-built state of `cfg`, reusing
    /// every allocation the new configuration's shape permits (cache
    /// line arrays, queue buffers, per-core vectors). Semantically
    /// indistinguishable from `*self = Machine::new(cfg)?` — the arena
    /// property test pins that — but without the allocator round trips,
    /// which dominate `Machine::new` on campaign-sized batches.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when the configuration is invalid;
    /// the machine is left untouched in that case.
    pub fn reset_to(&mut self, cfg: MachineConfig) -> Result<(), SimError> {
        cfg.validate()?;
        self.cores.truncate(cfg.num_cores);
        for core in &mut self.cores {
            core.reset_to(&cfg);
        }
        while self.cores.len() < cfg.num_cores {
            self.cores.push(CoreModel::new(CoreId::new(self.cores.len()), &cfg));
        }
        self.bus.reset_to(
            cfg.topology.bus.arbiter,
            cfg.topology.bus.l2_hit_occupancy,
            cfg.num_cores,
        );
        self.mc = match (self.mc.take(), cfg.topology.mc) {
            (Some(mut mc), Some(mc_cfg)) => {
                mc.reset_to(mc_cfg.arbiter, mc_cfg.service_occupancy, cfg.num_cores);
                Some(mc)
            }
            (None, Some(mc_cfg)) => Some(SharedResource::memory_controller(mc_cfg, cfg.num_cores)),
            (_, None) => None,
        };
        self.l2.reset_to(cfg.l2, cfg.num_cores);
        self.dram.reset_to(cfg.dram);
        self.pmc.reset_to(cfg.num_cores, cfg.record_requests);
        if self.trace.is_enabled() == cfg.record_trace {
            self.trace.clear();
        } else {
            self.trace = Trace::new(cfg.record_trace);
        }
        self.contenders_at_post.clear();
        self.contenders_at_post.resize(cfg.num_cores, 0);
        self.mc_contenders_at_post.clear();
        self.mc_contenders_at_post.resize(cfg.num_cores, 0);
        self.finite.clear();
        self.finite.resize(cfg.num_cores, false);
        self.unfinished_count = 0;
        self.now = 0;
        self.measure_start = 0;
        self.steps_executed = 0;
        self.cfg = cfg;
        Ok(())
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The monitoring counters.
    pub fn pmc(&self) -> &Pmc {
        &self.pmc
    }

    /// The bus (resource 0), for utilisation statistics.
    pub fn bus(&self) -> &SharedResource {
        &self.bus
    }

    /// The memory-controller queue (resource 1), when the topology
    /// chains one.
    pub fn memory_controller(&self) -> Option<&SharedResource> {
        self.mc.as_ref()
    }

    /// A shared resource by request-path id, if present on this topology.
    pub fn resource(&self, id: ResourceId) -> Option<&SharedResource> {
        match id {
            ResourceId::BUS => Some(&self.bus),
            ResourceId::MEMORY_CONTROLLER => self.mc.as_ref(),
            _ => None,
        }
    }

    /// The event trace (empty unless `record_trace` was set).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The shared L2 (for hit-rate diagnostics).
    pub fn l2(&self) -> &L2 {
        &self.l2
    }

    /// The memory subsystem (for row-buffer diagnostics).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// DL1 statistics of one core.
    pub fn dl1_stats(&self, core: CoreId) -> crate::cache::CacheStats {
        self.cores[core.index()].dl1.stats()
    }

    /// Store-buffer stall count of one core.
    pub fn store_buffer_stalls(&self, core: CoreId) -> u64 {
        self.cores[core.index()].store_buffer.full_stalls()
    }

    /// Installs `program` on `core`, (re)starting it at the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range; use [`Machine::try_load_program`]
    /// for fallible loading.
    pub fn load_program(&mut self, core: CoreId, program: Program) {
        // lint_sources: allow (the documented-panicking convenience wrapper)
        self.try_load_program(core, program).expect("core index out of range");
    }

    /// Fallible variant of [`Machine::load_program`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoSuchCore`] when `core` is out of range.
    pub fn try_load_program(&mut self, core: CoreId, program: Program) -> Result<(), SimError> {
        if core.index() >= self.cfg.num_cores {
            return Err(SimError::NoSuchCore { core: core.index(), num_cores: self.cfg.num_cores });
        }
        let idx = core.index();
        let was_unfinished = self.finite[idx] && !self.cores[idx].is_done();
        self.finite[idx] = matches!(program.iterations(), Iterations::Finite(_));
        self.cores[idx].load_program(program, self.now);
        let is_unfinished = self.finite[idx] && !self.cores[idx].is_done();
        match (was_unfinished, is_unfinished) {
            (false, true) => self.unfinished_count += 1,
            (true, false) => self.unfinished_count -= 1,
            _ => {}
        }
        Ok(())
    }

    fn unfinished(&self) -> Vec<usize> {
        (0..self.cfg.num_cores).filter(|&i| self.finite[i] && !self.cores[i].is_done()).collect()
    }

    /// Runs until every finite program completes — jumping over
    /// quiescent cycles unless [`MachineConfig::quiescence_skip`] is off.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleBudgetExhausted`] if `max_cycles` elapses
    /// first.
    pub fn run(&mut self) -> Result<RunSummary, SimError> {
        debug_assert_eq!(self.unfinished_count, self.unfinished().len());
        let budget = self.now + self.cfg.max_cycles;
        let mut ff = crate::fastforward::PeriodSkip::new(self);
        while self.unfinished_count > 0 {
            if self.now >= budget {
                return Err(SimError::CycleBudgetExhausted {
                    budget: self.cfg.max_cycles,
                    incomplete: self.unfinished(),
                });
            }
            self.step();
            if self.unfinished_count > 0 {
                self.skip_quiescence(budget);
                ff.observe(self, budget);
            }
        }
        Ok(self.summary())
    }

    /// Advances the machine by exactly `cycles` cycles (useful when every
    /// core runs an endless kernel), jumping over quiescent stretches
    /// unless [`MachineConfig::quiescence_skip`] is off.
    pub fn run_for(&mut self, cycles: Cycle) -> RunSummary {
        let end = self.now + cycles;
        while self.now < end {
            self.step();
            self.skip_quiescence(end);
        }
        self.summary()
    }

    /// Jumps `now` to the next event horizon, never past `horizon` and
    /// never backwards. A fully quiescent machine (no event at all: a
    /// deadlock unless every finite core is done) jumps straight to
    /// `horizon`, exactly as per-cycle stepping would idle up to it.
    fn skip_quiescence(&mut self, horizon: Cycle) {
        if !self.cfg.quiescence_skip || self.now >= horizon {
            return;
        }
        let target = self.next_event().unwrap_or(horizon).min(horizon);
        if target > self.now {
            self.now = target;
        }
    }

    /// The earliest cycle `>= now` at which any component can act — the
    /// minimum of the per-component event horizons — or `None` when the
    /// whole machine is quiescent (nothing in flight anywhere, so no
    /// amount of stepping will change its state).
    pub fn next_event(&self) -> Option<Cycle> {
        let now = self.now;
        let mut horizon = self.bus.next_event(now);
        if let Some(mc) = &self.mc {
            horizon = min_opt(horizon, mc.next_event(now));
        }
        horizon = min_opt(horizon, self.dram.next_event(now));
        for i in 0..self.cfg.num_cores {
            let may_post = !self.bus.has_outstanding(CoreId::new(i));
            horizon = min_opt(horizon, self.cores[i].next_event(now, may_post));
        }
        horizon
    }

    /// First cycle of the current measurement window (0 until
    /// [`Machine::reset_measurements`] moves it).
    pub fn measure_start(&self) -> Cycle {
        self.measure_start
    }

    /// Cycles elapsed in the current measurement window — the
    /// denominator of the summary's utilisations.
    pub fn measured_cycles(&self) -> Cycle {
        self.now - self.measure_start
    }

    /// Builds the current run summary. Utilisations are computed over
    /// the current measurement window (since the last
    /// [`Machine::reset_measurements`], or the whole run without one).
    pub fn summary(&self) -> RunSummary {
        let cores = (0..self.cfg.num_cores)
            .map(|i| {
                let core = &self.cores[i];
                let pmc = self.pmc.core(CoreId::new(i));
                CoreSummary {
                    completed_at: if self.finite[i] { core.completed_at() } else { None },
                    instructions: core.instructions(),
                    bus_requests: pmc.bus_requests(),
                    max_gamma: pmc.max_gamma(),
                    total_gamma: pmc.total_gamma(),
                }
            })
            .collect();
        let window = self.measured_cycles().max(1);
        RunSummary {
            cycles: self.now,
            cores,
            bus_utilization: self.bus.stats().utilization(window),
            mc_utilization: self.mc.as_ref().map(|mc| mc.stats().utilization(window)),
        }
    }

    /// Clears every measurement (PMCs, per-resource statistics, trace)
    /// without touching architectural state — the warm-up idiom — and
    /// starts a new measurement window at the current cycle, so the
    /// summary's utilisations divide by the cycles actually measured
    /// rather than the absolute cycle count.
    pub fn reset_measurements(&mut self) {
        self.pmc.reset();
        self.bus.reset_stats();
        if let Some(mc) = &mut self.mc {
            mc.reset_stats();
        }
        self.trace.clear();
        self.measure_start = self.now;
    }

    /// Number of cycles actually stepped so far — `now()` minus the
    /// quiescent cycles the event-driven loop jumped over.
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        self.steps_executed += 1;
        let now = self.now;

        // 1. Bus completion.
        if let Some(done) = self.bus.take_completed(now) {
            self.handle_completion(done, now);
        }

        // 1b. Memory-controller-queue completion: the miss has won
        // controller admission; its line fetch enters DRAM immediately.
        if let Some(mc) = &mut self.mc {
            if let Some(done) = mc.take_completed(now) {
                self.trace.push(TraceEvent::Complete {
                    resource: ResourceId::MEMORY_CONTROLLER,
                    core: done.core,
                    cycle: now,
                    kind: done.kind,
                });
                self.pmc.record_request(
                    done.core,
                    RequestRecord {
                        resource: ResourceId::MEMORY_CONTROLLER,
                        kind: done.kind,
                        addr: done.addr,
                        ready: done.ready,
                        granted: done.granted,
                        completed: now,
                        contenders: self.mc_contenders_at_post[done.core.index()],
                    },
                );
                self.dram.enqueue(done.core, done.addr, now);
            }
        }

        // 2. DRAM.
        if let Some(c) = self.dram.tick(now) {
            self.cores[c.core.index()].enqueue_refill(c.addr, c.finished);
        }

        // 3. Core pipelines.
        for i in 0..self.cfg.num_cores {
            let was_done = self.cores[i].is_done();
            let stalls = self.cores[i].tick(now);
            if stalls > 0 {
                self.pmc.core_mut(CoreId::new(i)).sb_stall_cycles += stalls;
            }
            if !was_done && self.finite[i] && self.cores[i].is_done() {
                self.unfinished_count -= 1;
            }
        }

        // 4. Posting.
        for i in 0..self.cfg.num_cores {
            let id = CoreId::new(i);
            if self.bus.has_outstanding(id) {
                continue;
            }
            // A request is presented to the bus at the first cycle where
            // it is ready AND the core's master slot is free; γ counts
            // from that cycle. Cycles spent blocked behind the core's own
            // earlier transaction are pipeline serialisation, not bus
            // contention, so they never inflate γ — which keeps the
            // invariant γ <= ubd that Eq. 1 promises.
            let post = match self.cores[i].want_post() {
                Some(p) if p.ready <= now => {
                    self.cores[i].take_post();
                    Some((p.kind, p.addr))
                }
                Some(_) => None, // not ready yet
                None => match (
                    self.cores[i].store_buffer.head(),
                    self.cores[i].store_buffer.head_ready(),
                ) {
                    (Some(addr), Some(ready)) if ready <= now => Some((BusOpKind::Store, addr)),
                    _ => None,
                },
            };
            if let Some((kind, addr)) = post {
                self.contenders_at_post[i] = self.bus.contenders_of(id);
                self.bus.post(id, kind, addr, now);
                self.trace.push(TraceEvent::Ready {
                    resource: ResourceId::BUS,
                    core: id,
                    cycle: now,
                    kind,
                });
            }
        }

        // 5. Bus arbitration.
        let l2 = &mut self.l2;
        let pmc = &mut self.pmc;
        let bus_cfg = self.cfg.topology.bus;
        let granted = self.bus.try_grant(now, |core, pending| match pending.kind {
            BusOpKind::Load | BusOpKind::Ifetch => match l2.touch(core, pending.addr) {
                Access::Hit => {
                    pmc.core_mut(core).l2_hits += 1;
                    (bus_cfg.l2_hit_occupancy, Some(true))
                }
                Access::Miss => {
                    pmc.core_mut(core).l2_misses += 1;
                    (bus_cfg.transfer_occupancy, Some(false))
                }
            },
            BusOpKind::Store => {
                // Write-through stores terminate at the L2 (allocating the
                // line); they never propagate to DRAM in this model, and
                // being posted writes they hold the bus only for
                // `store_occupancy` cycles (§2: "immediately answered").
                l2.touch(core, pending.addr);
                (bus_cfg.store_occupancy, Some(true))
            }
            BusOpKind::MissResponse => (bus_cfg.transfer_occupancy, None),
        });
        if let Some(txn) = granted {
            self.trace.push(TraceEvent::Grant {
                resource: ResourceId::BUS,
                core: txn.core,
                cycle: txn.granted,
                gamma: txn.gamma(),
                occupancy: txn.until - txn.granted,
                kind: txn.kind,
            });
        }

        // 6. Memory-controller-queue arbitration (two-level topologies):
        // a fixed service occupancy per admitted miss, granted by the
        // queue's own arbiter.
        if let Some(mc) = &mut self.mc {
            let occupancy = mc.worst_occupancy();
            if let Some(txn) = mc.try_grant(now, |_, _| (occupancy, None)) {
                self.trace.push(TraceEvent::Grant {
                    resource: ResourceId::MEMORY_CONTROLLER,
                    core: txn.core,
                    cycle: txn.granted,
                    gamma: txn.gamma(),
                    occupancy: txn.until - txn.granted,
                    kind: txn.kind,
                });
            }
        }

        self.now += 1;
    }

    fn handle_completion(&mut self, txn: ActiveTxn, now: Cycle) {
        self.trace.push(TraceEvent::Complete {
            resource: ResourceId::BUS,
            core: txn.core,
            cycle: now,
            kind: txn.kind,
        });
        let record = RequestRecord {
            resource: ResourceId::BUS,
            kind: txn.kind,
            addr: txn.addr,
            ready: txn.ready,
            granted: txn.granted,
            completed: now,
            contenders: self.contenders_at_post[txn.core.index()],
        };
        self.pmc.record_request(txn.core, record);
        let was_done = self.cores[txn.core.index()].is_done();
        let core = &mut self.cores[txn.core.index()];
        match txn.kind {
            BusOpKind::Load | BusOpKind::Ifetch => {
                if txn.l2_hit == Some(true) {
                    core.on_data_return(txn.addr, now);
                } else if let Some(mc) = &mut self.mc {
                    // Request phase of a split transaction on a two-level
                    // topology: the miss now arbitrates for controller
                    // admission before its line fetch may enter DRAM.
                    self.mc_contenders_at_post[txn.core.index()] = mc.contenders_of(txn.core);
                    mc.post(txn.core, txn.kind, txn.addr, now);
                    self.trace.push(TraceEvent::Ready {
                        resource: ResourceId::MEMORY_CONTROLLER,
                        core: txn.core,
                        cycle: now,
                        kind: txn.kind,
                    });
                } else {
                    // Single-bus topology: fetch the line directly.
                    self.dram.enqueue(txn.core, txn.addr, now);
                }
            }
            BusOpKind::MissResponse => {
                core.on_data_return(txn.addr, now);
            }
            BusOpKind::Store => {
                core.store_buffer.complete_head(now);
            }
        }
        let idx = txn.core.index();
        if !was_done && self.finite[idx] && self.cores[idx].is_done() {
            self.unfinished_count -= 1;
        }
    }
}

/// Minimum of two optional horizons (`None` = no event).
fn min_opt(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Chained builder for a [`Machine`]: start from a base configuration,
/// adjust the cores and caches, and compose the request-path topology
/// resource by resource.
///
/// ```
/// use rrb_sim::{MachineBuilder, BusConfig, McQueueConfig};
///
/// # fn main() -> Result<(), rrb_sim::SimError> {
/// let machine = MachineBuilder::new()
///     .cores(4)
///     .bus(BusConfig::ngmp())
///     .then_memory_controller(McQueueConfig::ngmp())
///     .build()?;
/// assert_eq!(machine.config().ubd_breakdown().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    cfg: MachineConfig,
}

impl MachineBuilder {
    /// A builder over the reference configuration
    /// ([`MachineConfig::ngmp_ref`]).
    pub fn new() -> Self {
        MachineBuilder { cfg: MachineConfig::ngmp_ref() }
    }

    /// A builder over an explicit base configuration.
    pub fn from_config(cfg: MachineConfig) -> Self {
        MachineBuilder { cfg }
    }

    /// Sets the core count.
    #[must_use]
    pub fn cores(mut self, num_cores: usize) -> Self {
        self.cfg.num_cores = num_cores;
        if (self.cfg.l2.ways as usize) < num_cores {
            self.cfg.l2.ways = num_cores as u32;
        }
        self
    }

    /// Replaces the whole request-path topology.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.cfg.topology = topology;
        self
    }

    /// Sets the bus (resource 0) and drops any chained resource — the
    /// start of a fresh request path.
    #[must_use]
    pub fn bus(mut self, bus: BusConfig) -> Self {
        self.cfg.topology = Topology::single_bus(bus);
        self
    }

    /// Sets the bus arbitration policy in place.
    #[must_use]
    pub fn bus_arbiter(mut self, arbiter: ArbiterKind) -> Self {
        self.cfg.topology.bus.arbiter = arbiter;
        self
    }

    /// Chains a memory-controller queue behind the bus (resource 1).
    #[must_use]
    pub fn then_memory_controller(mut self, mc: McQueueConfig) -> Self {
        self.cfg.topology.mc = Some(mc);
        self
    }

    /// Enables or disables the per-request record log.
    #[must_use]
    pub fn record_requests(mut self, on: bool) -> Self {
        self.cfg.record_requests = on;
        self
    }

    /// Enables or disables the resource-event trace.
    #[must_use]
    pub fn record_trace(mut self, on: bool) -> Self {
        self.cfg.record_trace = on;
        self
    }

    /// Enables or disables quiescence skipping in `run`/`run_for`
    /// (cycle-identical either way; disable to force per-cycle stepping
    /// when debugging the simulator itself).
    #[must_use]
    pub fn quiescence_skip(mut self, on: bool) -> Self {
        self.cfg.quiescence_skip = on;
        self
    }

    /// Enables or disables steady-state period skipping in `run`
    /// (cycle-identical either way; the skip also disables itself when
    /// it cannot be proven sound — see
    /// [`MachineConfig::period_skip`]).
    #[must_use]
    pub fn period_skip(mut self, on: bool) -> Self {
        self.cfg.period_skip = on;
        self
    }

    /// The configuration built so far.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Consumes the builder, returning the configuration (e.g. to hand
    /// to a campaign instead of a single machine).
    pub fn into_config(self) -> MachineConfig {
        self.cfg
    }

    /// Validates the configuration and builds the machine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] when the composed configuration is
    /// invalid.
    pub fn build(self) -> Result<Machine, SimError> {
        Machine::new(self.cfg)
    }
}

impl Default for MachineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    /// DL1-thrashing load addresses: `count` lines, all mapping to the
    /// same DL1 set (stride = sets * line = 4 KB on the NGMP config),
    /// based at 32 KB to stay clear of the ifetch L2 sets.
    fn thrash_addrs(count: u64) -> Vec<u64> {
        (0..count).map(|i| 32 * 1024 + i * 4096).collect()
    }

    fn rsk_load_body(k_nops: usize) -> Vec<Instr> {
        let mut body = Vec::new();
        for a in thrash_addrs(5) {
            body.push(Instr::load(a));
            body.extend(std::iter::repeat_n(Instr::Nop, k_nops));
        }
        body
    }

    #[test]
    fn single_core_rsk_in_isolation_has_zero_gamma() {
        let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(0), 50));
        let s = m.run().expect("run");
        let c0 = s.core(CoreId::new(0));
        assert!(c0.completed());
        assert_eq!(c0.max_gamma, Some(0), "no contenders, no contention");
        assert_eq!(c0.total_gamma, 0);
        // 5 loads * 50 iterations, plus a handful of ifetch/refill txns.
        assert!(c0.bus_requests >= 250);
    }

    #[test]
    fn loads_miss_dl1_every_time() {
        // W+1 same-set lines thrash the 4-way DL1 (§2).
        let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(0), 100));
        m.run().expect("run");
        let stats = m.dl1_stats(CoreId::new(0));
        assert_eq!(stats.hits, 0, "every rsk load must miss DL1");
        assert_eq!(stats.misses, 500);
    }

    #[test]
    fn rsk_hits_l2_after_first_iteration() {
        let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(0), 100));
        m.run().expect("run");
        let pmc = m.pmc().core(CoreId::new(0));
        // 5 data lines + a few ifetch lines miss once; everything else hits.
        assert!(pmc.l2_misses <= 8, "l2 misses: {}", pmc.l2_misses);
        assert!(pmc.l2_hits >= 495);
    }

    #[test]
    fn four_saturating_rsk_reach_full_bus_utilization() {
        let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        for i in 0..4 {
            m.load_program(CoreId::new(i), Program::endless(rsk_load_body(0)));
        }
        let s = m.run_for(100_000);
        assert!(
            s.bus_utilization > 0.99,
            "Nc-1 rsk must saturate the bus (got {})",
            s.bus_utilization
        );
    }

    #[test]
    fn synchrony_effect_on_reference_architecture() {
        // §5.2 / Fig. 6(b): with 4 rsk on the ref architecture, almost all
        // requests suffer the same γ = ubd - δ_rsk = 27 - 1 = 26.
        let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(0), 2000));
        for i in 1..4 {
            m.load_program(CoreId::new(i), Program::endless(rsk_load_body(0)));
        }
        let _ = m.run().expect("run");
        let pmc = m.pmc().core(CoreId::new(0));
        let (mode, count) = pmc.mode_gamma().expect("requests recorded");
        assert_eq!(mode, 26, "gamma histogram: {:?}", pmc.gamma_histogram);
        assert!(
            count as f64 / pmc.bus_requests() as f64 > 0.95,
            "synchrony: one delay dominates ({count} of {})",
            pmc.bus_requests()
        );
        // And crucially: ubd = 27 is never observed (ubd_m < ubd).
        assert!(pmc.max_gamma().expect("max") < 27);
    }

    #[test]
    fn synchrony_effect_on_variant_architecture() {
        // Variant: δ_rsk = 4, so the dominant γ is 27 - 4 = 23 (Fig. 6(b)).
        let mut m = Machine::new(MachineConfig::ngmp_var()).expect("config");
        m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(0), 2000));
        for i in 1..4 {
            m.load_program(CoreId::new(i), Program::endless(rsk_load_body(0)));
        }
        let _ = m.run().expect("run");
        let pmc = m.pmc().core(CoreId::new(0));
        let (mode, _) = pmc.mode_gamma().expect("requests recorded");
        assert_eq!(mode, 23, "gamma histogram: {:?}", pmc.gamma_histogram);
    }

    #[test]
    fn contender_histogram_shows_three_under_saturation() {
        let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(0), 500));
        for i in 1..4 {
            m.load_program(CoreId::new(i), Program::endless(rsk_load_body(0)));
        }
        let _ = m.run().expect("run");
        let hist = &m.pmc().core(CoreId::new(0)).contender_histogram;
        let at_three: u64 = hist.get(&3).copied().unwrap_or(0);
        let total: u64 = hist.values().sum();
        assert!(
            at_three as f64 / total as f64 > 0.9,
            "under saturation nearly every request sees 3 contenders: {hist:?}"
        );
    }

    #[test]
    fn cycle_budget_guards_livelock() {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.max_cycles = 100;
        let mut m = Machine::new(cfg).expect("config");
        m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(0), 1_000_000));
        match m.run() {
            Err(SimError::CycleBudgetExhausted { incomplete, .. }) => {
                assert_eq!(incomplete, vec![0]);
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn no_such_core_is_reported() {
        let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        let err = m.try_load_program(CoreId::new(9), Program::empty());
        assert_eq!(err, Err(SimError::NoSuchCore { core: 9, num_cores: 4 }));
    }

    #[test]
    fn store_program_drains_through_bus() {
        let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        let body: Vec<Instr> = thrash_addrs(5).into_iter().map(Instr::store).collect();
        m.load_program(CoreId::new(0), Program::from_body(body, 100));
        let s = m.run().expect("run");
        assert!(s.core(CoreId::new(0)).completed());
        // Keep the machine running so the buffer drains fully, then check
        // that stores reached the bus.
        let pmc = m.pmc().core(CoreId::new(0));
        assert!(pmc.bus_requests() >= 400, "stores must generate bus writes");
    }

    #[test]
    fn store_rsk_under_contention_reaches_full_ubd() {
        // §5.3: buffered stores are injected back to back (δ = 0), so under
        // saturation each drained store suffers the full ubd = 27 — the
        // one case where ubd is actually observable.
        let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        let body: Vec<Instr> = thrash_addrs(5).into_iter().map(Instr::store).collect();
        m.load_program(CoreId::new(0), Program::from_body(body, 500));
        for i in 1..4 {
            let contender: Vec<Instr> = thrash_addrs(5).into_iter().map(Instr::load).collect();
            m.load_program(CoreId::new(i), Program::endless(contender));
        }
        let _ = m.run().expect("run");
        let pmc = m.pmc().core(CoreId::new(0));
        let (mode, _) = pmc.mode_gamma().expect("requests");
        assert_eq!(mode, 27, "gamma histogram: {:?}", pmc.gamma_histogram);
    }

    #[test]
    fn reset_measurements_clears_counters_keeps_state() {
        let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(0), 10));
        m.run().expect("run");
        assert!(m.pmc().core(CoreId::new(0)).bus_requests() > 0);
        m.reset_measurements();
        assert_eq!(m.pmc().core(CoreId::new(0)).bus_requests(), 0);
        assert_eq!(m.bus().stats().grants, 0);
    }

    #[test]
    fn trace_records_grants_when_enabled() {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.record_trace = true;
        let mut m = Machine::new(cfg).expect("config");
        m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(0), 5));
        m.run().expect("run");
        assert!(m.trace().events().iter().any(|e| matches!(e, TraceEvent::Grant { .. })));
    }

    #[test]
    fn memory_controller_contention_is_modelled() {
        // §5.1: "contention only happens on the bus and the memory
        // controller". Two cores streaming through working sets larger
        // than their L2 partitions queue at the FCFS controller.
        let cfg = MachineConfig::ngmp_ref();
        let miss_body = |core: usize| -> Vec<Instr> {
            // Stride of one DL1 span over twice the partition: misses
            // DL1 and L2 every time.
            let base = 0x4000_0000 + 0x0400_0000 * core as u64;
            (0..64).map(|i| Instr::load(base + i * 4096)).collect()
        };
        let mut solo = Machine::new(cfg.clone()).expect("config");
        solo.load_program(CoreId::new(0), Program::endless(miss_body(0)));
        solo.run_for(60_000);
        let solo_wait = solo.dram().stats().queue_wait_cycles;

        let mut duo = Machine::new(cfg.clone()).expect("config");
        duo.load_program(CoreId::new(0), Program::endless(miss_body(0)));
        duo.load_program(CoreId::new(1), Program::endless(miss_body(1)));
        duo.run_for(60_000);
        let duo_wait = duo.dram().stats().queue_wait_cycles;
        assert!(
            duo_wait > solo_wait * 2,
            "a second memory-hungry core must queue at the controller              (solo {solo_wait}, duo {duo_wait})"
        );
    }

    #[test]
    fn run_for_advances_all_infinite_workload() {
        let cfg = MachineConfig::ngmp_ref();
        let mut m = Machine::new(cfg.clone()).expect("config");
        for i in 0..4 {
            m.load_program(CoreId::new(i), Program::endless(rsk_load_body(0)));
        }
        let s = m.run_for(5_000);
        assert_eq!(s.cycles, 5_000);
        for i in 0..4 {
            let c = s.core(CoreId::new(i));
            assert!(c.instructions > 0, "core {i} must make progress");
            assert_eq!(c.completed_at, None, "endless programs never complete");
        }
        // run() with no finite programs returns immediately.
        let before = m.now();
        m.run().expect("vacuous run");
        assert_eq!(m.now(), before);
    }

    #[test]
    fn gantt_of_saturated_machine_shows_dense_bus() {
        let mut cfg = MachineConfig::toy(4, 2);
        cfg.record_trace = true;
        let mut m = Machine::new(cfg.clone()).expect("config");
        for i in 0..4 {
            m.load_program(CoreId::new(i), Program::endless(rsk_load_body(0)));
        }
        m.run_for(400);
        let g = m.trace().gantt(4, 300, 380);
        let occupied = g.chars().filter(|&c| c == '#').count();
        // Four rows over an 80-cycle window on a saturated bus: the
        // union of rows covers nearly every cycle.
        assert!(
            occupied >= 70,
            "gantt too sparse:
{g}"
        );
    }

    #[test]
    fn two_level_misses_arbitrate_at_the_controller_queue() {
        // §5.1: "contention only happens on the bus and the memory
        // controller". On the two-level topology, concurrent L2-miss
        // streams must queue (γ_mc > 0) at the controller resource.
        let mut cfg = MachineConfig::ngmp_two_level();
        cfg.record_trace = true;
        let miss_body = |core: usize| -> Vec<Instr> {
            let base = 0x4000_0000 + 0x0400_0000 * core as u64;
            (0..64).map(|i| Instr::load(base + i * 4096)).collect()
        };
        let mut m = Machine::new(cfg).expect("config");
        for i in 0..2 {
            m.load_program(CoreId::new(i), Program::endless(miss_body(i)));
        }
        let s = m.run_for(30_000);
        let mc = m.memory_controller().expect("two-level topology has an mc queue");
        assert_eq!(mc.id(), ResourceId::MEMORY_CONTROLLER);
        assert!(mc.stats().grants > 0, "misses must pass through the queue");
        assert!(s.mc_utilization.expect("mc utilisation reported") > 0.0);
        assert!(m.pmc().core(CoreId::new(0)).requests_at(ResourceId::MEMORY_CONTROLLER) > 0);
        // The bus staggers the two miss streams, so which core queues at
        // the controller is schedule-dependent — but *someone* must.
        let max_mc_gamma = (0..2)
            .filter_map(|i| {
                m.pmc().core(CoreId::new(i)).max_gamma_at(ResourceId::MEMORY_CONTROLLER)
            })
            .max()
            .expect("mc gammas recorded");
        assert!(max_mc_gamma > 0, "a second miss stream must contend at the controller");
        let mc_ubd = m.config().ubd_breakdown()[1].ubd;
        assert!(
            max_mc_gamma <= mc_ubd,
            "per-resource gamma {max_mc_gamma} must respect the per-resource term {mc_ubd}"
        );
        assert!(
            m.trace().events().iter().any(|e| e.resource() == ResourceId::MEMORY_CONTROLLER
                && matches!(e, TraceEvent::Grant { .. })),
            "trace must tag controller-queue grants"
        );
    }

    #[test]
    fn two_level_preserves_bus_synchrony() {
        // The extra resource sits behind the L2, so the steady-state
        // (L2-hitting) rsk traffic still sees the pure bus algebra:
        // dominant γ_bus = ubd_bus - δ_rsk = 26.
        let mut m = Machine::new(MachineConfig::ngmp_two_level()).expect("config");
        m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(0), 2000));
        for i in 1..4 {
            m.load_program(CoreId::new(i), Program::endless(rsk_load_body(0)));
        }
        let _ = m.run().expect("run");
        let pmc = m.pmc().core(CoreId::new(0));
        let (mode, _) = pmc.mode_gamma().expect("requests recorded");
        assert_eq!(mode, 26, "gamma histogram: {:?}", pmc.gamma_histogram);
    }

    #[test]
    fn single_bus_machine_has_no_controller_resource() {
        let m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        assert!(m.memory_controller().is_none());
        assert!(m.resource(ResourceId::MEMORY_CONTROLLER).is_none());
        assert_eq!(m.resource(ResourceId::BUS).expect("bus").id(), ResourceId::BUS);
        assert_eq!(m.summary().mc_utilization, None);
    }

    #[test]
    fn builder_composes_topologies() {
        use crate::config::McQueueConfig;
        let m = Machine::builder()
            .cores(3)
            .bus_arbiter(crate::bus::ArbiterKind::Fifo)
            .then_memory_controller(McQueueConfig {
                service_occupancy: 4,
                arbiter: ArbiterKind::Fifo,
            })
            .record_trace(true)
            .build()
            .expect("build");
        assert_eq!(m.config().num_cores, 3);
        assert_eq!(m.bus().arbiter_kind(), ArbiterKind::Fifo);
        assert_eq!(m.memory_controller().expect("mc").arbiter_kind(), ArbiterKind::Fifo);
        assert_eq!(m.config().ubd(), m.config().bus_ubd() + 2 * 4);
        assert!(m.trace().is_enabled());
    }

    /// One machine per stepping mode over the same config and programs.
    fn paired_machines(mut cfg: MachineConfig) -> (Machine, Machine) {
        cfg.quiescence_skip = true;
        let skip = Machine::new(cfg.clone()).expect("config");
        cfg.quiescence_skip = false;
        let step = Machine::new(cfg).expect("config");
        (skip, step)
    }

    #[test]
    fn quiescence_skip_is_cycle_identical_on_contended_run() {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.record_trace = true;
        let (mut a, mut b) = paired_machines(cfg);
        for m in [&mut a, &mut b] {
            m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(2), 300));
            for i in 1..4 {
                m.load_program(CoreId::new(i), Program::endless(rsk_load_body(0)));
            }
        }
        let sa = a.run().expect("skip run");
        let sb = b.run().expect("step run");
        assert_eq!(sa, sb, "summaries must be identical across stepping modes");
        assert_eq!(a.now(), b.now());
        assert_eq!(a.trace().events(), b.trace().events());
        assert_eq!(a.bus().stats(), b.bus().stats());
        assert_eq!(a.dram().stats(), b.dram().stats());
    }

    #[test]
    fn quiescence_skip_is_cycle_identical_on_dram_bound_run_for() {
        // The stall-heavy case the skip targets: every load misses L2, so
        // cores spend most cycles waiting on the serialised controller.
        let miss_body = |core: usize| -> Vec<Instr> {
            let base = 0x4000_0000 + 0x0400_0000 * core as u64;
            (0..64).map(|i| Instr::load(base + i * 4096)).collect()
        };
        let (mut a, mut b) = paired_machines(MachineConfig::ngmp_two_level());
        for m in [&mut a, &mut b] {
            for i in 0..2 {
                m.load_program(CoreId::new(i), Program::endless(miss_body(i)));
            }
        }
        let sa = a.run_for(20_000);
        let sb = b.run_for(20_000);
        assert_eq!(sa, sb);
        assert_eq!(sa.cycles, 20_000, "run_for lands exactly on the requested cycle");
        assert_eq!(a.dram().stats(), b.dram().stats());
        assert_eq!(a.l2().stats(CoreId::new(0)), b.l2().stats(CoreId::new(0)));
    }

    #[test]
    fn quiescence_skip_preserves_budget_exhaustion() {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.max_cycles = 100;
        let (mut a, mut b) = paired_machines(cfg);
        for m in [&mut a, &mut b] {
            m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(0), 1_000_000));
        }
        assert_eq!(a.run(), b.run(), "same error, same incomplete set");
        assert_eq!(a.now(), b.now(), "both stop at the budget");
    }

    #[test]
    fn next_event_is_none_on_quiescent_machine() {
        let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        assert_eq!(m.next_event(), None, "freshly built: nothing in flight");
        m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(0), 5));
        assert_eq!(m.next_event(), Some(0), "a loaded core dispatches at its start cycle");
        m.run().expect("run");
        assert_eq!(m.next_event(), None, "all work drained: quiescent again");
    }

    #[test]
    fn utilization_uses_measurement_window_after_reset() {
        // Warm-up idiom: idle warm-up, reset, then saturate the bus. The
        // absolute-cycle denominator would under-report utilisation by
        // the warm-up share; the window denominator must not.
        let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
        m.run_for(50_000); // long idle warm-up, no programs loaded
        for i in 0..4 {
            m.load_program(CoreId::new(i), Program::endless(rsk_load_body(0)));
        }
        m.run_for(2_000); // let the rsk reach steady state
        m.reset_measurements();
        assert_eq!(m.measure_start(), 52_000);
        let s = m.run_for(10_000);
        assert_eq!(m.measured_cycles(), 10_000);
        assert!(
            s.bus_utilization > 0.99,
            "saturated window must report ~full utilisation (got {})",
            s.bus_utilization
        );
    }

    #[test]
    fn builder_forces_per_cycle_stepping() {
        let m = Machine::builder().quiescence_skip(false).build().expect("build");
        assert!(!m.config().quiescence_skip);
        assert!(Machine::builder().build().expect("build").config().quiescence_skip);
    }

    #[test]
    fn isolation_execution_time_is_deterministic() {
        let run_once = || {
            let mut m = Machine::new(MachineConfig::ngmp_ref()).expect("config");
            m.load_program(CoreId::new(0), Program::from_body(rsk_load_body(3), 200));
            m.run().expect("run").core(CoreId::new(0)).execution_time().expect("done")
        };
        assert_eq!(run_once(), run_once());
    }
}
