//! # rrb-sim — cycle-accurate round-robin-bus multicore simulator
//!
//! This crate implements the hardware substrate used by the DAC 2015 paper
//! *"Increasing Confidence on Measurement-Based Contention Bounds for
//! Real-Time Round-Robin Buses"* (Fernandez et al.): a model of the 4-core
//! Cobham Gaisler NGMP (LEON4) in which each core owns private IL1/DL1
//! caches and reaches a partitioned L2 cache and an on-chip memory
//! controller through a shared, round-robin arbitrated bus.
//!
//! The simulator is *timing-first*: its purpose is to reproduce, cycle by
//! cycle, the contention algebra the paper studies — in particular the
//! **synchrony effect** of heavily loaded round-robin buses and the
//! saw-tooth relation between request *injection time* and per-request
//! contention delay. Functional data values are not modelled; addresses
//! are, because cache hit/miss behaviour drives the timing.
//!
//! ## Architecture
//!
//! ```text
//!  core 0      core 1      core 2      core 3        (in-order, 1 req
//!  IL1/DL1/SB  IL1/DL1/SB  IL1/DL1/SB  IL1/DL1/SB     outstanding each)
//!     |           |           |           |
//!     +-----------+-----+-----+-----------+
//!                       |  shared bus (RR / TDMA / FP / FIFO arbiter)
//!               +-------+--------+
//!               |  L2 (way-partitioned per core)
//!               |  memory controller + DDR2-like DRAM
//! ```
//!
//! ## Quick example
//!
//! ```
//! use rrb_sim::{Machine, MachineConfig, Program, Instr, CoreId};
//!
//! # fn main() -> Result<(), rrb_sim::SimError> {
//! let mut machine = Machine::new(MachineConfig::ngmp_ref())?;
//! // A two-instruction program on core 0: one load and one nop.
//! let prog = Program::from_body(vec![Instr::load(0x1000), Instr::Nop], 100);
//! machine.load_program(CoreId::new(0), prog);
//! let summary = machine.run()?;
//! assert!(summary.core(CoreId::new(0)).completed());
//! # Ok(())
//! # }
//! ```
//!
//! A `Machine` is single-threaded and fully deterministic: the same
//! configuration and programs always produce the same cycle-by-cycle
//! behaviour. Batch experiments exploit both properties — the `rrb`
//! crate's `Scenario`/`Campaign` layer describes each measurement as a
//! `RunSpec` (one machine, one workload), executes many machines
//! concurrently on a scoped thread pool, and still emits bit-identical
//! results regardless of the thread count. When driving the simulator
//! directly, prefer the same shape: build one `Machine` per run rather
//! than resetting and reusing one across measurements.
//!
//! The companion crates build on this substrate: [`rrb-kernels`] generates
//! resource-stressing kernels, [`rrb-analysis`] provides the γ(δ) model and
//! saw-tooth period detection, and [`rrb`] implements the paper's
//! measurement-based methodology end to end — see `rrb`'s crate docs for
//! the campaign quick start.
//!
//! [`rrb-kernels`]: https://example.invalid/rrb
//! [`rrb-analysis`]: https://example.invalid/rrb
//! [`rrb`]: https://example.invalid/rrb

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod config;
pub mod core_model;
pub mod dram;
mod error;
pub mod instr;
pub mod l2;
pub mod machine;
pub mod pmc;
pub mod store_buffer;
pub mod trace;
mod types;

pub use bus::{
    Arbiter, ArbiterKind, Bus, BusOpKind, FifoArbiter, FixedPriorityArbiter,
    GroupedRoundRobinArbiter, RoundRobinArbiter, TdmaArbiter,
};
pub use cache::{Cache, CacheStats, Replacement};
pub use config::{BusConfig, CacheConfig, DramConfig, L2Config, MachineConfig, StoreBufferConfig};
pub use error::{ConfigError, SimError};
pub use instr::{Instr, Iterations, Program, ProgramBuilder};
pub use machine::{CoreSummary, Machine, RunSummary};
pub use pmc::{Pmc, RequestRecord};
pub use trace::{Trace, TraceEvent};
pub use types::{Addr, CoreId, Cycle};
