//! # rrb-sim — cycle-accurate round-robin-bus multicore simulator
//!
//! This crate implements the hardware substrate used by the DAC 2015 paper
//! *"Increasing Confidence on Measurement-Based Contention Bounds for
//! Real-Time Round-Robin Buses"* (Fernandez et al.): a model of the 4-core
//! Cobham Gaisler NGMP (LEON4) in which each core owns private IL1/DL1
//! caches and reaches a partitioned L2 cache and an on-chip memory
//! controller through a shared, round-robin arbitrated bus.
//!
//! The simulator is *timing-first*: its purpose is to reproduce, cycle by
//! cycle, the contention algebra the paper studies — in particular the
//! **synchrony effect** of heavily loaded round-robin buses and the
//! saw-tooth relation between request *injection time* and per-request
//! contention delay. Functional data values are not modelled; addresses
//! are, because cache hit/miss behaviour drives the timing.
//!
//! ## Architecture
//!
//! Contention is modelled as a composable **topology** of shared
//! resources on the request path, each an instance of the same
//! post/grant/occupy/complete protocol ([`SharedResource`]) with its own
//! arbiter, occupancy, and statistics:
//!
//! ```text
//!  core 0      core 1      core 2      core 3        (in-order, 1 req
//!  IL1/DL1/SB  IL1/DL1/SB  IL1/DL1/SB  IL1/DL1/SB     outstanding each)
//!     |           |           |           |
//!     +-----------+-----+-----+-----------+
//!                       |  resource 0: shared bus
//!                       |  (RR / TDMA / FP / FIFO / grouped-RR arbiter)
//!               +-------+--------+
//!               |  L2 (way-partitioned per core)
//!               +-------+--------+
//!                       |  resource 1 (optional): MC admission queue
//!                       |  (FIFO by default — the NGMP's second
//!                       |   contention point, §5.1)
//!               +-------+--------+
//!               |  DDR2-like DRAM (banked, open page)
//! ```
//!
//! [`MachineConfig::ngmp_ref`] is the classic one-resource topology;
//! [`MachineConfig::ngmp_two_level`] chains the controller queue behind
//! the bus, so every L2 miss arbitrates twice. The Eq. 1 bound
//! decomposes per resource — `ubd = Σ_r (Nc − 1)·l_r`, see
//! [`MachineConfig::ubd_breakdown`] — and the PMCs/trace tag every
//! request with its [`ResourceId`], so per-resource delay distributions
//! can be measured independently.
//!
//! ## Quick example
//!
//! Build machines with [`MachineBuilder`], chaining resources along the
//! request path:
//!
//! ```
//! use rrb_sim::{MachineBuilder, McQueueConfig, Program, Instr, CoreId};
//!
//! # fn main() -> Result<(), rrb_sim::SimError> {
//! let mut machine = MachineBuilder::new()            // ngmp_ref base
//!     .then_memory_controller(McQueueConfig::ngmp()) // two-level path
//!     .build()?;
//! // A two-instruction program on core 0: one load and one nop.
//! let prog = Program::from_body(vec![Instr::load(0x1000), Instr::Nop], 100);
//! machine.load_program(CoreId::new(0), prog);
//! let summary = machine.run()?;
//! assert!(summary.core(CoreId::new(0)).completed());
//! let terms = machine.config().ubd_breakdown();
//! assert_eq!(terms.iter().map(|t| t.ubd).sum::<u64>(), machine.config().ubd());
//! # Ok(())
//! # }
//! ```
//!
//! A `Machine` is single-threaded and fully deterministic: the same
//! configuration and programs always produce the same cycle-by-cycle
//! behaviour. Batch experiments exploit both properties — the `rrb`
//! crate's `Executor` describes each measurement as a `RunSpec` (one
//! machine, one workload), executes many machines concurrently on a
//! scoped thread pool, and still emits bit-identical results regardless
//! of the thread count. For back-to-back runs, [`Machine::reset_to`]
//! rewinds a machine to a just-built state without reallocating — the
//! arena idiom the `rrb` crate's `MachineArena` wraps; the reset is
//! semantically indistinguishable from building a fresh machine (the
//! arena property test pins this).
//!
//! The companion crates build on this substrate: [`rrb-kernels`] generates
//! resource-stressing kernels, [`rrb-analysis`] provides the γ(δ) model and
//! saw-tooth period detection, and [`rrb`] implements the paper's
//! measurement-based methodology end to end — see `rrb`'s crate docs for
//! the campaign quick start.
//!
//! [`rrb-kernels`]: https://example.invalid/rrb
//! [`rrb-analysis`]: https://example.invalid/rrb
//! [`rrb`]: https://example.invalid/rrb

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod config;
pub mod core_model;
pub mod dram;
mod error;
mod fastforward;
pub mod instr;
pub mod l2;
pub mod machine;
pub mod pmc;
pub mod resource;
pub mod store_buffer;
pub mod trace;
mod types;

pub use bus::{
    build_arbiter, Arbiter, ArbiterKind, BusOpKind, FifoArbiter, FixedPriorityArbiter,
    GroupedRoundRobinArbiter, ParseArbiterError, RequestView, RoundRobinArbiter, TdmaArbiter,
};
pub use cache::{Cache, CacheStats, Replacement};
pub use config::{
    BusConfig, CacheConfig, DramConfig, L2Config, MachineConfig, McQueueConfig,
    ParseReplacementError, ResourceUbd, StoreBufferConfig, Topology,
};
pub use error::{ConfigError, SimError};
pub use instr::{Instr, Iterations, Program, ProgramBuilder};
pub use machine::{CoreSummary, Machine, MachineBuilder, RunSummary};
pub use pmc::{Pmc, RequestRecord};
pub use resource::{ResourceId, ResourceKind, ResourceStats, SharedResource};
pub use trace::{Trace, TraceEvent};
pub use types::{Addr, CoreId, Cycle};
