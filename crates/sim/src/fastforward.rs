//! Steady-state period skipping for [`Machine::run`].
//!
//! A contended run of periodic kernels settles into a steady state: at
//! every iteration boundary of the measured core, the whole machine is a
//! time-shifted copy of what it was some whole number of iterations ago
//! — same pipeline states, same cache contents and recency order over
//! the programs' (static, bounded) footprints, same arbiter positions,
//! same queue contents with the same relative deadlines. From such a
//! state the machine provably replays the same period forever, so
//! instead of stepping through thousands of identical periods the run
//! loop can jump `now` forward by a whole multiple of the period and
//! scale every monotone counter by the per-period delta.
//!
//! ## Soundness
//!
//! The detector fingerprints the *complete* observable machine state
//! with every cycle stamp encoded relative to `now`:
//!
//! * per core: pc, pipeline state, pending post, store buffer
//!   ([`CoreModel::ff_signature`]), plus the captured contender counts
//!   when (and only when) a transaction that will read them is still
//!   outstanding;
//! * per cache: validity, tags, and within-set recency *ranks* over the
//!   sets reachable from the programs' static addresses
//!   ([`Cache::rank_signature`] — rank order, not absolute clocks, is
//!   what LRU/FIFO behaviour depends on; random replacement depends on
//!   the absolute clock, so it disables the skip);
//! * per shared resource: pending and active transactions and the
//!   arbiter's schedule state — a TDMA arbiter contributes its slot
//!   phase, so a period only matches when it is a multiple of the TDMA
//!   frame ([`SharedResource::ff_signature`]);
//! * the DRAM controller: open rows, queue, in-flight access
//!   ([`Dram::ff_signature`]).
//!
//! Two equal fingerprints at cycles `t₁ < t₂` evolve identically from
//! their respective `now`s, so every future iteration boundary recurs
//! with period `t₂ − t₁`. The skip count is clamped so that (a) no
//! finite core completes inside a skipped period — the final approach
//! to completion is always stepped live — and (b) the cycle budget is
//! never overshot, preserving exact budget-exhaustion behaviour.
//!
//! The skip is a pure optimisation: `run` with and without it is
//! cycle-identical, pinned by the period-equivalence property test in
//! `tests/prop_arena_reset.rs` and the golden-trace tests (trace
//! recording disables the skip, so traces are always exact).
//!
//! [`Machine::run`]: crate::Machine::run
//! [`CoreModel::ff_signature`]: crate::core_model::CoreModel
//! [`Cache::rank_signature`]: crate::cache::Cache
//! [`SharedResource::ff_signature`]: crate::resource::SharedResource
//! [`Dram::ff_signature`]: crate::dram::Dram

use crate::cache::CacheStats;
use crate::config::Replacement;
use crate::dram::DramStats;
use crate::instr::Iterations;
use crate::machine::Machine;
use crate::pmc::CorePmc;
use crate::resource::ResourceStats;
use crate::types::{CoreId, Cycle};
use std::collections::BTreeMap;

/// Snapshots kept before the oldest is dropped.
const MAX_HISTORY: usize = 64;
/// Iteration boundaries observed before the detector gives up.
const MAX_BOUNDARIES: usize = 256;
/// Cap on fingerprinted cache sets (summed over every cache); programs
/// with a larger reachable footprint run without the skip.
const MAX_FOOTPRINT_SETS: usize = 4096;

/// One fingerprinted iteration boundary: the relative-time signature
/// plus a copy of every monotone counter, for per-period delta scaling.
struct Snapshot {
    sig: Vec<u64>,
    now: Cycle,
    iterations: Vec<u64>,
    instructions: Vec<u64>,
    pmc: Vec<CorePmc>,
    dl1_stats: Vec<CacheStats>,
    il1_stats: Vec<CacheStats>,
    l2_stats: Vec<CacheStats>,
    sb_full_stalls: Vec<u64>,
    bus_stats: ResourceStats,
    mc_stats: Option<ResourceStats>,
    dram_stats: DramStats,
}

/// The steady-state detector driven by [`Machine::run`].
///
/// [`Machine::run`]: crate::Machine::run
pub(crate) struct PeriodSkip {
    enabled: bool,
    /// Lowest-index unfinished finite core: its iteration boundaries are
    /// the observation points.
    anchor: usize,
    last_iteration: u64,
    boundaries: usize,
    /// Reachable cache sets per core, sorted and deduplicated.
    dl1_sets: Vec<Vec<usize>>,
    il1_sets: Vec<Vec<usize>>,
    l2_sets: Vec<Vec<usize>>,
    history: Vec<Snapshot>,
}

impl PeriodSkip {
    /// Prepares the detector for one `run`, computing the reachable
    /// cache footprint — or a disabled detector when soundness cannot
    /// be established up front (see [`MachineConfig::period_skip`]).
    ///
    /// [`MachineConfig::period_skip`]: crate::config::MachineConfig::period_skip
    pub(crate) fn new(m: &Machine) -> Self {
        let disabled = PeriodSkip {
            enabled: false,
            anchor: 0,
            last_iteration: 0,
            boundaries: 0,
            dl1_sets: Vec::new(),
            il1_sets: Vec::new(),
            l2_sets: Vec::new(),
            history: Vec::new(),
        };
        let cfg = &m.cfg;
        if !cfg.period_skip || cfg.record_trace || cfg.record_requests {
            return disabled;
        }
        if cfg.dl1.replacement == Replacement::Random
            || cfg.il1.replacement == Replacement::Random
            || cfg.l2.replacement == Replacement::Random
        {
            return disabled;
        }
        let Some(anchor) = (0..cfg.num_cores).find(|&i| m.finite[i] && !m.cores[i].is_done())
        else {
            return disabled;
        };
        let mut dl1_sets = Vec::with_capacity(cfg.num_cores);
        let mut il1_sets = Vec::with_capacity(cfg.num_cores);
        let mut l2_sets = Vec::with_capacity(cfg.num_cores);
        let mut total = 0usize;
        let mut data = Vec::new();
        let mut fetch = Vec::new();
        for i in 0..cfg.num_cores {
            data.clear();
            fetch.clear();
            let core = &m.cores[i];
            core.ff_footprint(&mut data, &mut fetch);
            let dl1: Vec<usize> = sorted_sets(data.iter().map(|&a| core.dl1.set_of(a)));
            let il1: Vec<usize> = sorted_sets(fetch.iter().map(|&a| core.il1.set_of(a)));
            let part = m.l2.partition(CoreId::new(i));
            let l2: Vec<usize> =
                sorted_sets(data.iter().chain(fetch.iter()).map(|&a| part.set_of(a)));
            total += dl1.len() + il1.len() + l2.len();
            dl1_sets.push(dl1);
            il1_sets.push(il1);
            l2_sets.push(l2);
        }
        if total > MAX_FOOTPRINT_SETS {
            return disabled;
        }
        PeriodSkip {
            enabled: true,
            anchor,
            last_iteration: m.cores[anchor].iteration(),
            ..disabled
        }
        .with_sets(dl1_sets, il1_sets, l2_sets)
    }

    fn with_sets(
        mut self,
        dl1: Vec<Vec<usize>>,
        il1: Vec<Vec<usize>>,
        l2: Vec<Vec<usize>>,
    ) -> Self {
        self.dl1_sets = dl1;
        self.il1_sets = il1;
        self.l2_sets = l2;
        self
    }

    /// Called by the run loop after every step: on an anchor iteration
    /// boundary, fingerprints the machine and — when the fingerprint
    /// recurs — fast-forwards as many whole periods as soundly fit
    /// before `budget` and before any finite core's completion.
    pub(crate) fn observe(&mut self, m: &mut Machine, budget: Cycle) {
        if !self.enabled {
            return;
        }
        let it = m.cores[self.anchor].iteration();
        if it == self.last_iteration {
            return;
        }
        self.last_iteration = it;
        self.boundaries += 1;
        if self.boundaries > MAX_BOUNDARIES {
            self.enabled = false;
            self.history = Vec::new();
            return;
        }
        let snap = self.snapshot(m);
        if let Some(prev) = self.history.iter().rev().find(|p| p.sig == snap.sig) {
            let period = snap.now - prev.now;
            let k = skippable_periods(m, prev, &snap, period, budget);
            if k > 0 {
                apply(m, prev, &snap, period, k);
            }
            // One successful skip lands within a period of completion;
            // a failed one (k = 0) can never succeed later, since every
            // future boundary is closer to completion. Either way the
            // detector's work is done.
            self.enabled = false;
            self.history = Vec::new();
            return;
        }
        if self.history.len() == MAX_HISTORY {
            self.history.remove(0);
        }
        self.history.push(snap);
    }

    /// Fingerprints the machine at the current cycle.
    fn snapshot(&self, m: &Machine) -> Snapshot {
        let now = m.now;
        let n = m.cfg.num_cores;
        let mut sig = Vec::new();
        sig.push(m.unfinished_count as u64);
        for i in 0..n {
            let id = CoreId::new(i);
            m.cores[i].ff_signature(now, &mut sig);
            // The captured contender counts are only ever read when the
            // transaction they were captured for completes, so they are
            // observable state exactly while one is outstanding.
            sig.push(if m.bus.has_outstanding(id) {
                u64::from(m.contenders_at_post[i])
            } else {
                u64::MAX
            });
            match &m.mc {
                Some(mc) if mc.has_outstanding(id) => {
                    sig.push(u64::from(m.mc_contenders_at_post[i]));
                }
                _ => sig.push(u64::MAX),
            }
            m.cores[i].dl1.rank_signature(&self.dl1_sets[i], &mut sig);
            m.cores[i].il1.rank_signature(&self.il1_sets[i], &mut sig);
            m.l2.partition(id).rank_signature(&self.l2_sets[i], &mut sig);
        }
        m.bus.ff_signature(now, &mut sig);
        if let Some(mc) = &m.mc {
            mc.ff_signature(now, &mut sig);
        }
        m.dram.ff_signature(now, &mut sig);

        Snapshot {
            sig,
            now,
            iterations: m.cores.iter().map(|c| c.iteration()).collect(),
            instructions: m.cores.iter().map(|c| c.instructions()).collect(),
            pmc: (0..n).map(|i| m.pmc.core(CoreId::new(i)).clone()).collect(),
            dl1_stats: m.cores.iter().map(|c| c.dl1.stats()).collect(),
            il1_stats: m.cores.iter().map(|c| c.il1.stats()).collect(),
            l2_stats: (0..n).map(|i| m.l2.partition(CoreId::new(i)).stats()).collect(),
            sb_full_stalls: m.cores.iter().map(|c| c.store_buffer.full_stalls()).collect(),
            bus_stats: m.bus.stats().clone(),
            mc_stats: m.mc.as_ref().map(|mc| mc.stats().clone()),
            dram_stats: m.dram.stats(),
        }
    }
}

/// Sorted, deduplicated set list from an address→set mapping.
fn sorted_sets(iter: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut v: Vec<usize> = iter.collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// How many whole periods may be skipped from the matched state: at
/// least one whole period must remain before any finite core completes
/// (so the completion period is replayed live), and the cycle budget
/// must not be overshot (so budget exhaustion stays exact).
fn skippable_periods(
    m: &Machine,
    prev: &Snapshot,
    snap: &Snapshot,
    period: Cycle,
    budget: Cycle,
) -> u64 {
    if period == 0 {
        return 0;
    }
    let mut k = (budget - snap.now) / period;
    for i in 0..m.cfg.num_cores {
        if !m.finite[i] || m.cores[i].is_done() {
            continue;
        }
        let d_iter = snap.iterations[i] - prev.iterations[i];
        if d_iter == 0 {
            // This core makes no progress per period: it will exhaust
            // the budget, which the budget clamp above already handles.
            continue;
        }
        let Iterations::Finite(n) = m.cores[i].program().iterations() else {
            continue;
        };
        // After skipping, the core must still have at least one whole
        // period to go: iterations + k * d_iter <= n - 1.
        let headroom = n.saturating_sub(1).saturating_sub(snap.iterations[i]);
        k = k.min(headroom / d_iter);
    }
    k
}

/// Jumps the machine `k` whole periods ahead: shifts every live cycle
/// stamp, credits per-core progress, and adds `k` copies of every
/// per-period counter delta.
fn apply(m: &mut Machine, prev: &Snapshot, snap: &Snapshot, period: Cycle, k: u64) {
    let delta = k * period;
    m.now += delta;
    for i in 0..m.cfg.num_cores {
        let id = CoreId::new(i);
        let core = &mut m.cores[i];
        core.ff_shift(delta);
        core.ff_add_progress(
            k * (snap.iterations[i] - prev.iterations[i]),
            k * (snap.instructions[i] - prev.instructions[i]),
        );
        core.dl1.ff_add_stats(
            k * (snap.dl1_stats[i].hits - prev.dl1_stats[i].hits),
            k * (snap.dl1_stats[i].misses - prev.dl1_stats[i].misses),
        );
        core.il1.ff_add_stats(
            k * (snap.il1_stats[i].hits - prev.il1_stats[i].hits),
            k * (snap.il1_stats[i].misses - prev.il1_stats[i].misses),
        );
        core.store_buffer.ff_add_full_stalls(k * (snap.sb_full_stalls[i] - prev.sb_full_stalls[i]));
        m.l2.partition_mut(id).ff_add_stats(
            k * (snap.l2_stats[i].hits - prev.l2_stats[i].hits),
            k * (snap.l2_stats[i].misses - prev.l2_stats[i].misses),
        );
        scale_core_pmc(m.pmc.core_mut(id), &prev.pmc[i], &snap.pmc[i], k);
    }
    m.bus.ff_shift(delta);
    m.bus.ff_scale_stats(&stats_delta(&prev.bus_stats, &snap.bus_stats), k);
    if let Some(mc) = &mut m.mc {
        mc.ff_shift(delta);
        if let (Some(p), Some(s)) = (&prev.mc_stats, &snap.mc_stats) {
            mc.ff_scale_stats(&stats_delta(p, s), k);
        }
    }
    m.dram.ff_shift(delta);
    m.dram.ff_scale_stats(dram_delta(prev.dram_stats, snap.dram_stats), k);
}

fn stats_delta(prev: &ResourceStats, snap: &ResourceStats) -> ResourceStats {
    ResourceStats {
        busy_cycles: snap.busy_cycles - prev.busy_cycles,
        grants: snap.grants - prev.grants,
        per_core_busy: snap
            .per_core_busy
            .iter()
            .zip(&prev.per_core_busy)
            .map(|(s, p)| s - p)
            .collect(),
        per_core_grants: snap
            .per_core_grants
            .iter()
            .zip(&prev.per_core_grants)
            .map(|(s, p)| s - p)
            .collect(),
    }
}

fn dram_delta(prev: DramStats, snap: DramStats) -> DramStats {
    DramStats {
        requests: snap.requests - prev.requests,
        row_hits: snap.row_hits - prev.row_hits,
        row_conflicts: snap.row_conflicts - prev.row_conflicts,
        queue_wait_cycles: snap.queue_wait_cycles - prev.queue_wait_cycles,
    }
}

/// Adds `k` copies of the per-period delta to one core's counters.
/// Histogram keys never disappear and counts never decrease, so the
/// per-key delta is `snap − prev` with absent keys reading as zero.
fn scale_core_pmc(cur: &mut CorePmc, prev: &CorePmc, snap: &CorePmc, k: u64) {
    scale_hist(&mut cur.gamma_histogram, &prev.gamma_histogram, &snap.gamma_histogram, k);
    scale_hist(&mut cur.mc_gamma_histogram, &prev.mc_gamma_histogram, &snap.mc_gamma_histogram, k);
    scale_hist(
        &mut cur.contender_histogram,
        &prev.contender_histogram,
        &snap.contender_histogram,
        k,
    );
    cur.instructions += k * (snap.instructions - prev.instructions);
    cur.loads += k * (snap.loads - prev.loads);
    cur.stores += k * (snap.stores - prev.stores);
    cur.dl1_hits += k * (snap.dl1_hits - prev.dl1_hits);
    cur.dl1_misses += k * (snap.dl1_misses - prev.dl1_misses);
    cur.l2_hits += k * (snap.l2_hits - prev.l2_hits);
    cur.l2_misses += k * (snap.l2_misses - prev.l2_misses);
    cur.sb_stall_cycles += k * (snap.sb_stall_cycles - prev.sb_stall_cycles);
}

fn scale_hist<K: Ord + Copy>(
    cur: &mut BTreeMap<K, u64>,
    prev: &BTreeMap<K, u64>,
    snap: &BTreeMap<K, u64>,
    k: u64,
) {
    for (&key, &n) in snap {
        let d = n - prev.get(&key).copied().unwrap_or(0);
        if d > 0 {
            *cur.entry(key).or_insert(0) += k * d;
        }
    }
}
