//! The shared, way-partitioned L2 cache (§5.1).
//!
//! The paper's NGMP configuration splits the 4-way 256 KB L2 among the
//! cores, one way each, "hence contention only happens on the bus and the
//! memory controller". Each partition is therefore an independent cache
//! indexed by the owning core, and inter-core cache interference is
//! impossible by construction.

use crate::cache::{Access, Cache, CacheStats};
use crate::config::L2Config;
use crate::types::{Addr, CoreId};

/// The partitioned L2: one private slice per core.
#[derive(Debug, Clone)]
pub struct L2 {
    partitions: Vec<Cache>,
    cfg: L2Config,
}

impl L2 {
    /// Builds the L2 for `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry; validate with [`L2Config::validate`]
    /// first for user-supplied configurations.
    pub fn new(cfg: L2Config, num_cores: usize) -> Self {
        // lint_sources: allow (construction-time geometry check)
        cfg.validate(num_cores).expect("invalid L2 geometry");
        let part = cfg.partition(num_cores);
        L2 { partitions: (0..num_cores).map(|_| Cache::new(part)).collect(), cfg }
    }

    /// The configuration this L2 was built with.
    pub fn config(&self) -> &L2Config {
        &self.cfg
    }

    /// Looks up `addr` in `core`'s partition, filling on miss.
    pub fn touch(&mut self, core: CoreId, addr: Addr) -> Access {
        self.partitions[core.index()].touch(addr)
    }

    /// Non-destructive residence check in `core`'s partition.
    pub fn probe(&self, core: CoreId, addr: Addr) -> bool {
        self.partitions[core.index()].probe(addr)
    }

    /// Hit/miss counters of `core`'s partition.
    pub fn stats(&self, core: CoreId) -> CacheStats {
        self.partitions[core.index()].stats()
    }

    /// Capacity of one partition, in bytes.
    pub fn partition_bytes(&self) -> u64 {
        self.partitions[0].config().size_bytes
    }

    /// Invalidates every partition.
    pub fn invalidate_all(&mut self) {
        for p in &mut self.partitions {
            p.invalidate_all();
        }
    }

    /// Rewinds every partition to its just-built state (cold lines, zero
    /// counters) without reallocating.
    pub fn reset(&mut self) {
        for p in &mut self.partitions {
            p.reset();
        }
    }

    /// Re-targets the L2 at `cfg` for `num_cores` cores, reusing the
    /// partition buffers when the per-partition geometry and core count
    /// are unchanged. Equivalent to `L2::new(cfg, num_cores)`.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry, like [`L2::new`].
    pub fn reset_to(&mut self, cfg: L2Config, num_cores: usize) {
        // lint_sources: allow (construction-time geometry check)
        cfg.validate(num_cores).expect("invalid L2 geometry");
        if self.partitions.len() == num_cores {
            let part = cfg.partition(num_cores);
            for p in &mut self.partitions {
                p.reset_to(part);
            }
            self.cfg = cfg;
        } else {
            *self = L2::new(cfg, num_cores);
        }
    }

    /// Access to one partition for fast-forward signatures.
    pub(crate) fn partition(&self, core: CoreId) -> &Cache {
        &self.partitions[core.index()]
    }

    /// Mutable partition access for fast-forward statistics scaling.
    pub(crate) fn partition_mut(&mut self, core: CoreId) -> &mut Cache {
        &mut self.partitions[core.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Access;

    fn l2() -> L2 {
        L2::new(L2Config::ngmp(), 4)
    }

    #[test]
    fn partitions_are_isolated() {
        let mut l2 = l2();
        let a = 0x4000;
        assert_eq!(l2.touch(CoreId::new(0), a), Access::Miss);
        assert_eq!(l2.touch(CoreId::new(0), a), Access::Hit);
        // The same address is cold in every other partition.
        for i in 1..4 {
            assert_eq!(l2.touch(CoreId::new(i), a), Access::Miss, "core {i}");
        }
    }

    #[test]
    fn thrashing_one_partition_leaves_others_untouched() {
        let mut l2 = l2();
        let part_bytes = l2.partition_bytes();
        // Core 3 streams through twice its partition; core 0's single
        // line must stay resident (no inter-core eviction is possible).
        l2.touch(CoreId::new(0), 0x40);
        for i in 0..(2 * part_bytes / 32) {
            l2.touch(CoreId::new(3), i * 32);
        }
        assert!(l2.probe(CoreId::new(0), 0x40));
    }

    #[test]
    fn ngmp_partition_is_64kb() {
        let l2 = l2();
        assert_eq!(l2.partition_bytes(), 64 * 1024);
    }

    #[test]
    fn stats_are_per_core() {
        let mut l2 = l2();
        l2.touch(CoreId::new(1), 0x100);
        l2.touch(CoreId::new(1), 0x100);
        assert_eq!(l2.stats(CoreId::new(1)).hits, 1);
        assert_eq!(l2.stats(CoreId::new(1)).misses, 1);
        assert_eq!(l2.stats(CoreId::new(0)).accesses(), 0);
    }

    #[test]
    fn invalidate_all_cools_every_partition() {
        let mut l2 = l2();
        l2.touch(CoreId::new(2), 0x40);
        l2.invalidate_all();
        assert!(!l2.probe(CoreId::new(2), 0x40));
    }

    #[test]
    #[should_panic(expected = "invalid L2 geometry")]
    fn too_many_cores_panics() {
        let _ = L2::new(L2Config::ngmp(), 8);
    }

    #[test]
    fn reset_to_matches_a_fresh_l2() {
        let mut reused = l2();
        for i in 0..64u64 {
            reused.touch(CoreId::new((i % 4) as usize), i * 32);
        }
        reused.reset_to(L2Config::ngmp(), 2);
        let mut fresh = L2::new(L2Config::ngmp(), 2);
        for i in 0..64u64 {
            let c = CoreId::new((i % 2) as usize);
            assert_eq!(reused.touch(c, i * 32), fresh.touch(c, i * 32));
        }
        assert_eq!(reused.stats(CoreId::new(0)), fresh.stats(CoreId::new(0)));
    }
}
