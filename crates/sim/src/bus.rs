//! Arbitration policies and the transaction vocabulary of the shared
//! resources.
//!
//! The bus connects each core (and its store buffer) to the partitioned L2
//! and, for L2 misses, to the memory controller. Each core presents at most
//! one transaction at a time (it is a single AHB-like master). Arbitration
//! happens whenever a resource is free, among the transactions whose
//! `ready` cycle has been reached, in the order dictated by the configured
//! [`Arbiter`].
//!
//! Round-robin is the policy under study: after core *i* is granted, the
//! highest priority for the next round becomes *i+1 mod Nc* (§2). The
//! per-request contention delay `γ = grant_cycle - ready_cycle` recorded
//! per resource is precisely the quantity of the paper's Eq. 2.
//!
//! TDMA, fixed-priority, and FIFO arbiters are provided for the ablation
//! experiments (the saw-tooth methodology is RR-specific, and the ablation
//! benches demonstrate it degrades or disappears under other policies) and
//! for the memory-controller queue of two-level topologies, whose
//! hardware policy is FIFO.
//!
//! The resource protocol itself (post / grant / occupy / complete) lives
//! in [`crate::resource::SharedResource`]; this module owns the policies
//! and the transaction types they arbitrate over.

use crate::types::{Addr, CoreId, Cycle};
use std::fmt;
use std::str::FromStr;

/// Which arbitration policy a bus uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbiterKind {
    /// Work-conserving rotating-priority round-robin (the paper's policy).
    RoundRobin,
    /// Lowest core index wins; starvation-prone, included for ablation.
    FixedPriority,
    /// Oldest ready request wins (global FIFO order).
    Fifo,
    /// Non-work-conserving time-division multiplexing with fixed slots.
    Tdma {
        /// Slot length in cycles; must fit one full bus transaction.
        slot_cycles: u64,
    },
    /// MBBA-style grouped round-robin (Bourgade et al., EMC 2010 — the
    /// paper's reference \[2\]): cores are split into contiguous groups of
    /// `group_size`; a round-robin pointer rotates over the groups and a
    /// second pointer rotates within each group. A core's worst case is
    /// then governed by the group count, not the core count.
    GroupedRoundRobin {
        /// Cores per group (the last group may be smaller).
        group_size: usize,
    },
}

impl fmt::Display for ArbiterKind {
    /// The canonical token form, round-tripped by [`ArbiterKind::from_str`]
    /// and shared by the CLI, campaign records, and scenario names:
    /// `rr`, `fp`, `fifo`, `tdma:<slot>`, `grr:<group>`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArbiterKind::RoundRobin => write!(f, "rr"),
            ArbiterKind::FixedPriority => write!(f, "fp"),
            ArbiterKind::Fifo => write!(f, "fifo"),
            ArbiterKind::Tdma { slot_cycles } => write!(f, "tdma:{slot_cycles}"),
            ArbiterKind::GroupedRoundRobin { group_size } => write!(f, "grr:{group_size}"),
        }
    }
}

/// An arbiter token that [`ArbiterKind::from_str`] could not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArbiterError {
    /// The offending token.
    pub token: String,
}

impl ParseArbiterError {
    /// The canonical tokens, for error messages and CLI help.
    pub const ALLOWED: &'static str = "rr, fp, fifo, tdma:<slot>, grr:<group>";
}

impl fmt::Display for ParseArbiterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown arbiter `{}` (expected one of: {})", self.token, Self::ALLOWED)
    }
}

impl std::error::Error for ParseArbiterError {}

impl FromStr for ArbiterKind {
    type Err = ParseArbiterError;

    /// Parses the canonical token form emitted by [`ArbiterKind`]'s
    /// `Display` (`rr`, `fp`, `fifo`, `tdma:<slot>`, `grr:<group>`), plus
    /// the long aliases `round-robin`, `fixed-priority`.
    fn from_str(token: &str) -> Result<Self, Self::Err> {
        let bad = || ParseArbiterError { token: token.to_string() };
        match token {
            "rr" | "round-robin" => Ok(ArbiterKind::RoundRobin),
            "fp" | "fixed-priority" => Ok(ArbiterKind::FixedPriority),
            "fifo" => Ok(ArbiterKind::Fifo),
            other => {
                if let Some(slot) = other.strip_prefix("tdma:") {
                    let slot_cycles = slot.parse().map_err(|_| bad())?;
                    Ok(ArbiterKind::Tdma { slot_cycles })
                } else if let Some(group) = other.strip_prefix("grr:") {
                    let group_size = group.parse().map_err(|_| bad())?;
                    Ok(ArbiterKind::GroupedRoundRobin { group_size })
                } else {
                    Err(bad())
                }
            }
        }
    }
}

/// The kind of bus transaction, which determines its occupancy and what
/// happens on completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusOpKind {
    /// A demand load that will be looked up in the requester's L2
    /// partition at grant time.
    Load,
    /// An instruction fetch that missed IL1.
    Ifetch,
    /// A write-through store drained from the store buffer.
    Store,
    /// The response phase of a split L2-miss transaction (refill).
    MissResponse,
}

impl fmt::Display for BusOpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusOpKind::Load => write!(f, "load"),
            BusOpKind::Ifetch => write!(f, "ifetch"),
            BusOpKind::Store => write!(f, "store"),
            BusOpKind::MissResponse => write!(f, "refill"),
        }
    }
}

/// A not-yet-granted transaction posted by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pending {
    /// Transaction kind.
    pub kind: BusOpKind,
    /// Line-aligned target address.
    pub addr: Addr,
    /// Cycle at which the request became ready to use the bus.
    pub ready: Cycle,
}

/// A pending request as seen by an [`Arbiter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestView {
    /// Cycle at which the request became ready.
    pub ready: Cycle,
    /// Worst-case occupancy the arbiter should budget for.
    pub occupancy: u64,
}

/// An arbitration policy.
///
/// `select` is called only when the bus is free; it must return the index
/// of a core whose view entry is `Some` with `ready <= now`, or `None` to
/// leave the bus idle this cycle. Implementations update their internal
/// rotation state when they return a grant.
pub trait Arbiter: fmt::Debug + Send {
    /// Chooses which ready request (if any) to grant at cycle `now`.
    fn select(&mut self, view: &[Option<RequestView>], now: Cycle) -> Option<usize>;

    /// The policy this arbiter implements.
    fn kind(&self) -> ArbiterKind;

    /// Restores the arbiter to its initial state.
    fn reset(&mut self);

    /// A lower bound on the first cycle `>= now` at which `core`'s
    /// request `req` could be granted, assuming the resource is free and
    /// stays free; `None` if the policy can never serve it.
    ///
    /// This is the event horizon the quiescence-skipping machine loop
    /// uses: it may be earlier than the actual grant (competing requests
    /// are ignored — stepping a no-op cycle is harmless), but it must
    /// never be later. Work-conserving policies grant any ready request
    /// on a free resource, so the default is `max(req.ready, now)`;
    /// time-gated policies (TDMA) override it with their slot schedule.
    fn earliest_grant(&self, core: usize, req: RequestView, now: Cycle) -> Option<Cycle> {
        let _ = core;
        Some(req.ready.max(now))
    }

    /// Appends the policy's time-relative decision state to `out`: every
    /// word that can influence a *future* `select` outcome, with absolute
    /// cycles reduced relative to `now`. Two arbiters with equal
    /// signatures at their respective `now`s make identical decisions on
    /// identical future request patterns — the property the steady-state
    /// fast-forward detector relies on. Stateless, time-free policies
    /// (fixed priority, FIFO) append nothing.
    fn ff_signature(&self, now: Cycle, out: &mut Vec<u64>) {
        let _ = (now, out);
    }
}

/// Rotating-priority round-robin (§2).
///
/// If core `c_i` was granted in a round, the priority ordering for the next
/// round is `c_{i+1}, c_{i+2}, ..., c_{Nc}, c_1, ..., c_i`.
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    num_cores: usize,
    /// Core with the highest priority in the current round.
    head: usize,
}

impl RoundRobinArbiter {
    /// A round-robin arbiter over `num_cores` requesters; core 0 starts
    /// with the highest priority.
    pub fn new(num_cores: usize) -> Self {
        RoundRobinArbiter { num_cores, head: 0 }
    }

    /// The core that currently holds the highest priority.
    pub fn head(&self) -> CoreId {
        CoreId::new(self.head)
    }
}

impl Arbiter for RoundRobinArbiter {
    fn select(&mut self, view: &[Option<RequestView>], now: Cycle) -> Option<usize> {
        debug_assert_eq!(view.len(), self.num_cores);
        for offset in 0..self.num_cores {
            let core = (self.head + offset) % self.num_cores;
            if let Some(req) = view[core] {
                if req.ready <= now {
                    self.head = (core + 1) % self.num_cores;
                    return Some(core);
                }
            }
        }
        None
    }

    fn kind(&self) -> ArbiterKind {
        ArbiterKind::RoundRobin
    }

    fn reset(&mut self) {
        self.head = 0;
    }

    fn ff_signature(&self, _now: Cycle, out: &mut Vec<u64>) {
        out.push(self.head as u64);
    }
}

/// Fixed priority: the lowest core index always wins.
#[derive(Debug, Clone)]
pub struct FixedPriorityArbiter;

impl Arbiter for FixedPriorityArbiter {
    fn select(&mut self, view: &[Option<RequestView>], now: Cycle) -> Option<usize> {
        view.iter()
            .enumerate()
            .find(|(_, v)| matches!(v, Some(r) if r.ready <= now))
            .map(|(i, _)| i)
    }

    fn kind(&self) -> ArbiterKind {
        ArbiterKind::FixedPriority
    }

    fn reset(&mut self) {}
}

/// Global FIFO: the request that became ready earliest wins; ties break
/// toward the lower core index.
#[derive(Debug, Clone)]
pub struct FifoArbiter;

impl Arbiter for FifoArbiter {
    fn select(&mut self, view: &[Option<RequestView>], now: Cycle) -> Option<usize> {
        view.iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|r| (i, r)))
            .filter(|(_, r)| r.ready <= now)
            .min_by_key(|&(i, r)| (r.ready, i))
            .map(|(i, _)| i)
    }

    fn kind(&self) -> ArbiterKind {
        ArbiterKind::Fifo
    }

    fn reset(&mut self) {}
}

/// Non-work-conserving TDMA: core `(now / slot) % Nc` owns the bus and may
/// start a transaction only if it fits in the remainder of its slot.
#[derive(Debug, Clone)]
pub struct TdmaArbiter {
    num_cores: usize,
    slot_cycles: u64,
}

impl TdmaArbiter {
    /// A TDMA arbiter with the given slot length.
    pub fn new(num_cores: usize, slot_cycles: u64) -> Self {
        TdmaArbiter { num_cores, slot_cycles }
    }
}

impl Arbiter for TdmaArbiter {
    fn select(&mut self, view: &[Option<RequestView>], now: Cycle) -> Option<usize> {
        let owner = ((now / self.slot_cycles) as usize) % self.num_cores;
        let remaining = self.slot_cycles - (now % self.slot_cycles);
        match view[owner] {
            Some(req) if req.ready <= now && req.occupancy <= remaining => Some(owner),
            _ => None,
        }
    }

    fn kind(&self) -> ArbiterKind {
        ArbiterKind::Tdma { slot_cycles: self.slot_cycles }
    }

    fn reset(&mut self) {}

    /// TDMA is time-gated: the request can only start inside its own
    /// core's slot, and only if it fits in what remains of that slot.
    /// The earliest chance is therefore its ready cycle (if that lands
    /// in a fitting position of its own slot) or the start of the
    /// core's next slot — an exact horizon, not just a lower bound,
    /// because within a slot the remaining room only shrinks.
    fn earliest_grant(&self, core: usize, req: RequestView, now: Cycle) -> Option<Cycle> {
        let slot = self.slot_cycles;
        let n = self.num_cores as u64;
        let t = req.ready.max(now);
        let owner = ((t / slot) % n) as usize;
        if owner == core && req.occupancy <= slot - (t % slot) {
            return Some(t);
        }
        if req.occupancy > slot {
            return None; // cannot fit even a whole slot
        }
        // Start of this core's next slot at or after t.
        let cur = t / slot;
        let mut q = cur + (core as u64 + n - cur % n) % n;
        if q == cur {
            // Own slot, but too little of it left: wait a full rotation.
            q += n;
        }
        Some(q * slot)
    }

    /// The schedule position: grants depend on `now` only through the
    /// phase within the full rotation.
    fn ff_signature(&self, now: Cycle, out: &mut Vec<u64>) {
        out.push(now % (self.slot_cycles * self.num_cores as u64));
    }
}

/// MBBA-style two-level round-robin: groups rotate, and members rotate
/// within the granted group. Work conserving at both levels: an idle
/// group is skipped, and an idle member yields to the next member.
#[derive(Debug, Clone)]
pub struct GroupedRoundRobinArbiter {
    num_cores: usize,
    group_size: usize,
    /// Group with the highest priority in the current round.
    group_head: usize,
    /// Per-group member pointer.
    member_head: Vec<usize>,
}

impl GroupedRoundRobinArbiter {
    /// A grouped arbiter over `num_cores` cores in groups of `group_size`.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    pub fn new(num_cores: usize, group_size: usize) -> Self {
        assert!(group_size > 0, "groups must be non-empty");
        let groups = num_cores.div_ceil(group_size);
        GroupedRoundRobinArbiter {
            num_cores,
            group_size,
            group_head: 0,
            member_head: vec![0; groups],
        }
    }

    fn groups(&self) -> usize {
        self.member_head.len()
    }

    fn members(&self, group: usize) -> std::ops::Range<usize> {
        let start = group * self.group_size;
        start..((group + 1) * self.group_size).min(self.num_cores)
    }
}

impl Arbiter for GroupedRoundRobinArbiter {
    fn select(&mut self, view: &[Option<RequestView>], now: Cycle) -> Option<usize> {
        debug_assert_eq!(view.len(), self.num_cores);
        let groups = self.groups();
        for g_off in 0..groups {
            let group = (self.group_head + g_off) % groups;
            let members: Vec<usize> = self.members(group).collect();
            let m_len = members.len();
            for m_off in 0..m_len {
                let idx = (self.member_head[group] + m_off) % m_len;
                let core = members[idx];
                if let Some(req) = view[core] {
                    if req.ready <= now {
                        self.member_head[group] = (idx + 1) % m_len;
                        self.group_head = (group + 1) % groups;
                        return Some(core);
                    }
                }
            }
        }
        None
    }

    fn kind(&self) -> ArbiterKind {
        ArbiterKind::GroupedRoundRobin { group_size: self.group_size }
    }

    fn reset(&mut self) {
        self.group_head = 0;
        for m in &mut self.member_head {
            *m = 0;
        }
    }

    fn ff_signature(&self, _now: Cycle, out: &mut Vec<u64>) {
        out.push(self.group_head as u64);
        out.extend(self.member_head.iter().map(|&m| m as u64));
    }
}

/// Builds an arbiter of the requested policy over `num_cores` requesters.
pub fn build_arbiter(kind: ArbiterKind, num_cores: usize) -> Box<dyn Arbiter> {
    match kind {
        ArbiterKind::RoundRobin => Box::new(RoundRobinArbiter::new(num_cores)),
        ArbiterKind::FixedPriority => Box::new(FixedPriorityArbiter),
        ArbiterKind::Fifo => Box::new(FifoArbiter),
        ArbiterKind::Tdma { slot_cycles } => Box::new(TdmaArbiter::new(num_cores, slot_cycles)),
        ArbiterKind::GroupedRoundRobin { group_size } => {
            Box::new(GroupedRoundRobinArbiter::new(num_cores, group_size))
        }
    }
}

/// A transaction currently occupying the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveTxn {
    /// Owning core.
    pub core: CoreId,
    /// Transaction kind.
    pub kind: BusOpKind,
    /// Target address.
    pub addr: Addr,
    /// When the request became ready.
    pub ready: Cycle,
    /// When it was granted (`gamma = granted - ready`).
    pub granted: Cycle,
    /// First cycle after the occupancy ends.
    pub until: Cycle,
    /// Whether the grant-time L2 lookup hit (None for [`BusOpKind::MissResponse`]).
    pub l2_hit: Option<bool>,
}

impl ActiveTxn {
    /// The contention delay this transaction suffered (γ of Eq. 2).
    pub fn gamma(&self) -> u64 {
        self.granted - self.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BusConfig;
    use crate::resource::SharedResource;

    fn hit(occ: u64) -> impl FnMut(CoreId, &Pending) -> (u64, Option<bool>) {
        move |_, _| (occ, Some(true))
    }

    #[test]
    fn rr_rotates_priority_after_each_grant() {
        let mut a = RoundRobinArbiter::new(4);
        let all = |t: Cycle| vec![Some(RequestView { ready: t, occupancy: 2 }); 4];
        assert_eq!(a.select(&all(0), 0), Some(0));
        assert_eq!(a.select(&all(0), 0), Some(1));
        assert_eq!(a.select(&all(0), 0), Some(2));
        assert_eq!(a.select(&all(0), 0), Some(3));
        assert_eq!(a.select(&all(0), 0), Some(0), "wraps around");
    }

    #[test]
    fn rr_is_work_conserving() {
        // §2: "Since RR is work conserving, a lower priority requester can
        // use the bus when all higher priority requesters do not use it."
        let mut a = RoundRobinArbiter::new(4);
        let mut view = vec![None; 4];
        view[3] = Some(RequestView { ready: 0, occupancy: 2 });
        assert_eq!(a.select(&view, 0), Some(3));
        // After granting c3, head is c0 again.
        assert_eq!(a.head(), CoreId::new(0));
    }

    #[test]
    fn rr_ignores_future_requests() {
        let mut a = RoundRobinArbiter::new(2);
        let view = vec![
            Some(RequestView { ready: 5, occupancy: 2 }),
            Some(RequestView { ready: 1, occupancy: 2 }),
        ];
        assert_eq!(a.select(&view, 1), Some(1));
        assert_eq!(a.select(&view, 0), None);
    }

    #[test]
    fn fixed_priority_always_prefers_low_index() {
        let mut a = FixedPriorityArbiter;
        let view = vec![
            Some(RequestView { ready: 9, occupancy: 2 }),
            Some(RequestView { ready: 0, occupancy: 2 }),
        ];
        assert_eq!(a.select(&view, 10), Some(0));
        assert_eq!(a.select(&view, 10), Some(0), "no rotation");
    }

    #[test]
    fn fifo_grants_oldest() {
        let mut a = FifoArbiter;
        let view = vec![
            Some(RequestView { ready: 7, occupancy: 2 }),
            Some(RequestView { ready: 3, occupancy: 2 }),
            None,
        ];
        assert_eq!(a.select(&view, 10), Some(1));
    }

    #[test]
    fn fifo_ties_break_to_lower_index() {
        let mut a = FifoArbiter;
        let view = vec![
            Some(RequestView { ready: 3, occupancy: 2 }),
            Some(RequestView { ready: 3, occupancy: 2 }),
        ];
        assert_eq!(a.select(&view, 5), Some(0));
    }

    #[test]
    fn tdma_only_grants_slot_owner() {
        let mut a = TdmaArbiter::new(2, 10);
        let both = vec![
            Some(RequestView { ready: 0, occupancy: 5 }),
            Some(RequestView { ready: 0, occupancy: 5 }),
        ];
        assert_eq!(a.select(&both, 0), Some(0), "cycle 0: slot of c0");
        assert_eq!(a.select(&both, 10), Some(1), "cycle 10: slot of c1");
        // Not work conserving: owner idle => bus idle.
        let only_c1 = vec![None, Some(RequestView { ready: 0, occupancy: 5 })];
        assert_eq!(a.select(&only_c1, 0), None);
    }

    #[test]
    fn tdma_rejects_transactions_that_overrun_slot() {
        let mut a = TdmaArbiter::new(2, 10);
        let view = vec![Some(RequestView { ready: 0, occupancy: 5 }), None];
        assert_eq!(a.select(&view, 7), None, "3 cycles left < 5 needed");
        assert_eq!(a.select(&view, 5), Some(0), "exactly fits");
    }

    #[test]
    fn bus_tracks_occupancy_and_stats() {
        let cfg = BusConfig {
            l2_hit_occupancy: 9,
            transfer_occupancy: 3,
            store_occupancy: 3,
            arbiter: ArbiterKind::RoundRobin,
        };
        let mut bus = SharedResource::bus(cfg, 2);
        bus.post(CoreId::new(1), BusOpKind::Load, 0x40, 0);
        let txn = bus.try_grant(0, hit(9)).expect("grant");
        assert_eq!(txn.core, CoreId::new(1));
        assert_eq!(txn.gamma(), 0);
        assert_eq!(txn.until, 9);
        assert!(!bus.is_free(5));
        assert!(bus.is_free(9));
        assert!(bus.take_completed(8).is_none());
        let done = bus.take_completed(9).expect("completes at 9");
        assert_eq!(done, txn);
        assert_eq!(bus.stats().busy_cycles, 9);
        assert_eq!(bus.stats().per_core_busy, vec![0, 9]);
        assert_eq!(bus.stats().utilization(10), 0.9);
    }

    #[test]
    #[should_panic(expected = "second transaction")]
    fn double_post_panics() {
        let cfg = BusConfig {
            l2_hit_occupancy: 2,
            transfer_occupancy: 1,
            store_occupancy: 2,
            arbiter: ArbiterKind::RoundRobin,
        };
        let mut bus = SharedResource::bus(cfg, 1);
        bus.post(CoreId::new(0), BusOpKind::Load, 0, 0);
        bus.post(CoreId::new(0), BusOpKind::Load, 0, 0);
    }

    #[test]
    fn contender_count_includes_active_and_pending() {
        let cfg = BusConfig {
            l2_hit_occupancy: 4,
            transfer_occupancy: 1,
            store_occupancy: 4,
            arbiter: ArbiterKind::RoundRobin,
        };
        let mut bus = SharedResource::bus(cfg, 4);
        bus.post(CoreId::new(1), BusOpKind::Load, 0, 0);
        bus.post(CoreId::new(2), BusOpKind::Load, 0, 0);
        assert_eq!(bus.contenders_of(CoreId::new(0)), 2);
        bus.try_grant(0, hit(4)).expect("grant c1");
        // c1 active, c2 pending: still two contenders of c0.
        assert_eq!(bus.contenders_of(CoreId::new(0)), 2);
        assert_eq!(bus.contenders_of(CoreId::new(2)), 1);
    }

    /// Hand-driven reproduction of the paper's Figure 3: a 4-core bus with
    /// `l_bus = 2` (`ubd = 6`), three always-pending contenders, and an
    /// observed core whose injection time δ is swept. The resulting γ must
    /// match Eq. 2 exactly.
    #[test]
    fn figure3_gamma_matrix() {
        let ubd = 6u64;
        for delta in 0..=13u64 {
            let gamma = simulate_observed_gamma(delta);
            let expected = if delta == 0 { ubd } else { (ubd - (delta % ubd)) % ubd };
            assert_eq!(gamma, expected, "delta={delta}");
        }
    }

    /// Drives a standalone `Bus` with three saturating contenders (repost
    /// immediately on completion) and one observed core that reposts with
    /// injection time `delta` after each of its completions. Returns the
    /// steady-state γ of the observed core.
    fn simulate_observed_gamma(delta: u64) -> u64 {
        let l_bus = 2u64;
        let cfg = BusConfig {
            l2_hit_occupancy: l_bus,
            transfer_occupancy: 1,
            store_occupancy: l_bus,
            arbiter: ArbiterKind::RoundRobin,
        };
        let mut bus = SharedResource::bus(cfg, 4);
        let observed = CoreId::new(3);
        // Everyone ready at cycle 0.
        for i in 0..4 {
            bus.post(CoreId::new(i), BusOpKind::Load, 0x40 * i as u64, 0);
        }
        let mut gammas = Vec::new();
        let mut now: Cycle = 0;
        while gammas.len() < 8 && now < 10_000 {
            if let Some(done) = bus.take_completed(now) {
                if done.core == observed {
                    gammas.push(done.gamma());
                    bus.post(observed, BusOpKind::Load, 0xdead, now + delta);
                } else {
                    // Contenders are saturating rsk: always pending again.
                    bus.post(done.core, BusOpKind::Load, done.addr, now);
                }
            }
            bus.try_grant(now, |_, _| (l_bus, Some(true)));
            now += 1;
        }
        assert!(gammas.len() >= 8, "observed core starved at delta={delta}");
        // Skip the start-up transient; synchrony fixes γ afterwards.
        let steady = gammas.split_off(3);
        let g = steady[0];
        assert!(
            steady.iter().all(|&x| x == g),
            "synchrony effect must fix gamma, got {steady:?} at delta={delta}"
        );
        g
    }

    /// The synchrony effect (§3): under full load the bus behaves as if
    /// time-multiplexed, and every contender observes the same γ.
    #[test]
    fn synchrony_fixes_gamma_for_all_saturating_cores() {
        let l_bus = 2u64;
        let cfg = BusConfig {
            l2_hit_occupancy: l_bus,
            transfer_occupancy: 1,
            store_occupancy: l_bus,
            arbiter: ArbiterKind::RoundRobin,
        };
        let mut bus = SharedResource::bus(cfg, 4);
        for i in 0..4 {
            bus.post(CoreId::new(i), BusOpKind::Load, 0, 0);
        }
        let mut per_core: Vec<Vec<u64>> = vec![Vec::new(); 4];
        for now in 0..2_000u64 {
            if let Some(done) = bus.take_completed(now) {
                per_core[done.core.index()].push(done.gamma());
                bus.post(done.core, BusOpKind::Load, 0, now); // δ = 0
            }
            bus.try_grant(now, |_, _| (l_bus, Some(true)));
        }
        for (i, gs) in per_core.iter().enumerate() {
            assert!(gs.len() > 10, "core {i} starved");
            let steady = &gs[3..];
            assert!(
                steady.windows(2).all(|w| w[0] == w[1]),
                "core {i} gamma not fixed: {steady:?}"
            );
            // With δ = 0 every request suffers exactly ubd.
            assert_eq!(steady[0], 6, "core {i}");
        }
    }

    #[test]
    fn bus_utilization_is_full_under_saturation() {
        let cfg = BusConfig {
            l2_hit_occupancy: 3,
            transfer_occupancy: 1,
            store_occupancy: 3,
            arbiter: ArbiterKind::RoundRobin,
        };
        let mut bus = SharedResource::bus(cfg, 2);
        for i in 0..2 {
            bus.post(CoreId::new(i), BusOpKind::Load, 0, 0);
        }
        let horizon = 300u64;
        for now in 0..horizon {
            if let Some(done) = bus.take_completed(now) {
                bus.post(done.core, BusOpKind::Load, 0, now);
            }
            bus.try_grant(now, |_, _| (3, Some(true)));
        }
        // Minus the tail transaction that may extend past the horizon.
        assert!(bus.stats().utilization(horizon) > 0.98);
    }

    #[test]
    fn build_arbiter_matches_kind() {
        for kind in [
            ArbiterKind::RoundRobin,
            ArbiterKind::FixedPriority,
            ArbiterKind::Fifo,
            ArbiterKind::Tdma { slot_cycles: 10 },
            ArbiterKind::GroupedRoundRobin { group_size: 2 },
        ] {
            assert_eq!(build_arbiter(kind, 4).kind(), kind);
        }
    }

    #[test]
    fn grouped_rr_alternates_groups() {
        // 4 cores, groups {0,1} and {2,3}, everyone pending: the grant
        // order interleaves groups and rotates members within them.
        let mut a = GroupedRoundRobinArbiter::new(4, 2);
        let all = vec![Some(RequestView { ready: 0, occupancy: 2 }); 4];
        let order: Vec<usize> = (0..8).map(|_| a.select(&all, 0).expect("grant")).collect();
        assert_eq!(order, vec![0, 2, 1, 3, 0, 2, 1, 3]);
    }

    #[test]
    fn grouped_rr_is_work_conserving_across_groups() {
        // Only core 3 (group 1) pending: it is granted immediately even
        // when group 0 holds the head.
        let mut a = GroupedRoundRobinArbiter::new(4, 2);
        let mut view = vec![None; 4];
        view[3] = Some(RequestView { ready: 0, occupancy: 2 });
        assert_eq!(a.select(&view, 0), Some(3));
    }

    #[test]
    fn grouped_rr_bounds_wait_by_group_count() {
        // With 4 saturating cores in 2 groups, a core waits at most
        // (groups - 1) grants of other groups plus (members - 1) of its
        // own group before being served again — tighter than plain RR for
        // the member that alternates.
        let l_bus = 2u64;
        let cfg = BusConfig {
            l2_hit_occupancy: l_bus,
            transfer_occupancy: 1,
            store_occupancy: l_bus,
            arbiter: ArbiterKind::GroupedRoundRobin { group_size: 2 },
        };
        let mut bus = SharedResource::bus(cfg, 4);
        for i in 0..4 {
            bus.post(CoreId::new(i), BusOpKind::Load, 0, 0);
        }
        let mut max_gamma = 0;
        for now in 0..2_000u64 {
            if let Some(done) = bus.take_completed(now) {
                max_gamma = max_gamma.max(done.gamma());
                bus.post(done.core, BusOpKind::Load, 0, now);
            }
            bus.try_grant(now, |_, _| (l_bus, Some(true)));
        }
        assert!(max_gamma <= 3 * l_bus, "max gamma {max_gamma}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn grouped_rr_zero_group_panics() {
        let _ = GroupedRoundRobinArbiter::new(4, 0);
    }

    #[test]
    fn work_conserving_earliest_grant_is_readiness() {
        let req = RequestView { ready: 7, occupancy: 3 };
        for kind in [ArbiterKind::RoundRobin, ArbiterKind::FixedPriority, ArbiterKind::Fifo] {
            let a = build_arbiter(kind, 4);
            assert_eq!(a.earliest_grant(2, req, 0), Some(7), "{kind}: future readiness");
            assert_eq!(a.earliest_grant(2, req, 20), Some(20), "{kind}: already ready");
        }
    }

    #[test]
    fn tdma_earliest_grant_respects_slot_schedule() {
        // 2 cores, 10-cycle slots: c0 owns [0,10), [20,30)…; c1 owns [10,20)…
        let a = TdmaArbiter::new(2, 10);
        let req = |ready, occupancy| RequestView { ready, occupancy };
        // c0 ready inside its own slot with room: granted at readiness.
        assert_eq!(a.earliest_grant(0, req(3, 5), 3), Some(3));
        // c0 ready but the slot remainder is too short: next own slot.
        assert_eq!(a.earliest_grant(0, req(0, 5), 7), Some(20));
        // c1 ready during c0's slot: start of c1's slot.
        assert_eq!(a.earliest_grant(1, req(0, 5), 3), Some(10));
        // A transaction longer than a whole slot can never be served.
        assert_eq!(a.earliest_grant(0, req(0, 11), 0), None);
        // Exact fit at a slot boundary.
        assert_eq!(a.earliest_grant(1, req(0, 10), 12), Some(30));
    }

    /// The TDMA horizon is *sound*: select never grants before the
    /// predicted cycle, and (with a lone requester) grants exactly at it.
    #[test]
    fn tdma_earliest_grant_matches_select() {
        let mut a = TdmaArbiter::new(3, 12);
        for ready in 0..40u64 {
            for occ in [1u64, 5, 12] {
                for core in 0..3usize {
                    let mut view = vec![None; 3];
                    view[core] = Some(RequestView { ready, occupancy: occ });
                    let predicted =
                        a.earliest_grant(core, RequestView { ready, occupancy: occ }, ready);
                    let actual = (ready..ready + 80).find(|&t| a.select(&view, t).is_some());
                    assert_eq!(predicted, actual, "core={core} ready={ready} occ={occ}");
                }
            }
        }
    }

    #[test]
    fn arbiter_kind_display_is_canonical() {
        assert_eq!(ArbiterKind::RoundRobin.to_string(), "rr");
        assert_eq!(ArbiterKind::Tdma { slot_cycles: 9 }.to_string(), "tdma:9");
        assert_eq!(ArbiterKind::GroupedRoundRobin { group_size: 2 }.to_string(), "grr:2");
    }

    #[test]
    fn arbiter_kind_round_trips_through_display() {
        for kind in [
            ArbiterKind::RoundRobin,
            ArbiterKind::FixedPriority,
            ArbiterKind::Fifo,
            ArbiterKind::Tdma { slot_cycles: 12 },
            ArbiterKind::GroupedRoundRobin { group_size: 3 },
        ] {
            assert_eq!(kind.to_string().parse::<ArbiterKind>(), Ok(kind));
        }
        assert_eq!("round-robin".parse::<ArbiterKind>(), Ok(ArbiterKind::RoundRobin));
        assert_eq!("fixed-priority".parse::<ArbiterKind>(), Ok(ArbiterKind::FixedPriority));
        for bad in ["cdma", "tdma:", "tdma:x", "grr:", "rrx", ""] {
            let err = bad.parse::<ArbiterKind>().expect_err("must fail");
            assert!(err.to_string().contains("tdma:<slot>"), "{bad}: {err}");
        }
    }
}
