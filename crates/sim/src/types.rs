//! Fundamental value types shared across the simulator.

use std::fmt;

/// A simulation time stamp, in core clock cycles since machine reset.
pub type Cycle = u64;

/// A byte address in the simulated physical address space.
///
/// Addresses only matter for cache indexing and bank mapping; no data is
/// stored behind them.
pub type Addr = u64;

/// Identifier of a core (bus requester), in `0..num_cores`.
///
/// A newtype rather than a bare `usize` so that core indices cannot be
/// confused with cycle counts or way indices at API boundaries.
///
/// ```
/// use rrb_sim::CoreId;
/// let c = CoreId::new(2);
/// assert_eq!(c.index(), 2);
/// assert_eq!(c.to_string(), "c2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(usize);

impl CoreId {
    /// Creates a core identifier from a raw index.
    pub fn new(index: usize) -> Self {
        CoreId(index)
    }

    /// Returns the raw index of this core.
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns the core that follows this one in round-robin order on a
    /// machine with `num_cores` cores.
    ///
    /// ```
    /// use rrb_sim::CoreId;
    /// assert_eq!(CoreId::new(3).next_in_rotation(4), CoreId::new(0));
    /// ```
    pub fn next_in_rotation(self, num_cores: usize) -> Self {
        CoreId((self.0 + 1) % num_cores)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<CoreId> for usize {
    fn from(id: CoreId) -> usize {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_round_trips_index() {
        for i in 0..16 {
            assert_eq!(CoreId::new(i).index(), i);
            assert_eq!(usize::from(CoreId::new(i)), i);
        }
    }

    #[test]
    fn rotation_wraps() {
        assert_eq!(CoreId::new(0).next_in_rotation(4), CoreId::new(1));
        assert_eq!(CoreId::new(3).next_in_rotation(4), CoreId::new(0));
        assert_eq!(CoreId::new(0).next_in_rotation(1), CoreId::new(0));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(CoreId::new(7).to_string(), "c7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
    }
}
