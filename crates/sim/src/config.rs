//! Machine and component configuration.
//!
//! Two presets mirror the paper's evaluation setups (§5.1):
//!
//! * [`MachineConfig::ngmp_ref`] — the reference NGMP-like architecture:
//!   4 cores, 16 KB 4-way IL1/DL1 with 1-cycle latency, a shared
//!   round-robin bus whose L2-hit occupancy is 9 cycles (6-cycle L2 hit +
//!   3-cycle transfer and arbitration handover), a way-partitioned 256 KB
//!   4-way L2, and a DDR2-667-like memory behind an FCFS controller.
//!   `ubd = (4 - 1) * 9 = 27` cycles.
//! * [`MachineConfig::ngmp_var`] — identical except IL1/DL1 latency is
//!   4 cycles, which raises the injection time of every bus-accessing
//!   instruction from 1 to 4 cycles.
//!
//! [`MachineConfig::toy`] builds the small bus of the paper's Figures 2–3
//! (`l_bus = 2`, `ubd = 6`) for didactic experiments and exact unit tests.
//!
//! Contention points are described by a [`Topology`]: the shared bus
//! (always resource 0), optionally chained into a memory-controller
//! queue ([`McQueueConfig`], resource 1) in front of DRAM —
//! [`MachineConfig::ngmp_two_level`] is the two-resource preset. The
//! theoretical bound decomposes per resource
//! (`ubd = Σ_r (Nc − 1) · l_r`, [`MachineConfig::ubd_breakdown`]).

use crate::bus::ArbiterKind;
use crate::error::ConfigError;
use crate::resource::ResourceKind;
use std::str::FromStr;

/// Cache replacement policy.
///
/// The paper's reference architecture uses LRU everywhere; FIFO is included
/// because the rsk construction in §2 explicitly supports it, and random
/// replacement is included as a stress case for the kernel generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// Evict the least recently used line.
    #[default]
    Lru,
    /// Evict lines in insertion order.
    Fifo,
    /// Evict a pseudo-random line (xorshift over the access counter).
    Random,
}

impl std::fmt::Display for Replacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Replacement::Lru => write!(f, "LRU"),
            Replacement::Fifo => write!(f, "FIFO"),
            Replacement::Random => write!(f, "random"),
        }
    }
}

/// A replacement-policy token that [`Replacement::from_str`] could not
/// parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseReplacementError {
    /// The offending token.
    pub token: String,
}

impl ParseReplacementError {
    /// The canonical tokens, for error messages and CLI help.
    pub const ALLOWED: &'static str = "lru, fifo, random";
}

impl std::fmt::Display for ParseReplacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown replacement policy `{}` (expected one of: {})",
            self.token,
            Self::ALLOWED
        )
    }
}

impl std::error::Error for ParseReplacementError {}

impl FromStr for Replacement {
    type Err = ParseReplacementError;

    /// Parses a policy token, accepting both the lowercase canonical
    /// form and the `Display` spelling (`LRU`, `FIFO`, `random`), so the
    /// two directions round-trip.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lru" | "LRU" => Ok(Replacement::Lru),
            "fifo" | "FIFO" => Ok(Replacement::Fifo),
            "random" => Ok(Replacement::Random),
            other => Err(ParseReplacementError { token: other.to_string() }),
        }
    }
}

/// Geometry and latency of one cache (IL1, DL1, or one L2 partition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a power of two.
    pub size_bytes: u64,
    /// Associativity. Must be non-zero and divide `size_bytes / line_bytes`.
    pub ways: u32,
    /// Line size in bytes. Must be a power of two.
    pub line_bytes: u64,
    /// Hit latency in cycles (also the time from instruction issue to the
    /// miss request becoming ready at the bus).
    pub latency: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// The paper's 16 KB, 4-way, 32-byte-line L1 with the given latency.
    pub fn l1_ngmp(latency: u64) -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 32,
            latency,
            replacement: Replacement::Lru,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.ways))
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any size is zero or not a power of two,
    /// or if the set count does not come out integral (and a power of two).
    pub fn validate(&self, name: &'static str) -> Result<(), ConfigError> {
        if self.size_bytes == 0 {
            return Err(ConfigError::ZeroParameter { name: "size_bytes" });
        }
        if self.ways == 0 {
            return Err(ConfigError::ZeroParameter { name: "ways" });
        }
        if self.line_bytes == 0 {
            return Err(ConfigError::ZeroParameter { name: "line_bytes" });
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo { name: "line_bytes", value: self.line_bytes });
        }
        let denom = self.line_bytes * u64::from(self.ways);
        if !self.size_bytes.is_multiple_of(denom) {
            return Err(ConfigError::BadCacheGeometry {
                detail: format!(
                    "{name}: size {} is not a multiple of ways*line = {denom}",
                    self.size_bytes
                ),
            });
        }
        let sets = self.size_bytes / denom;
        if !sets.is_power_of_two() {
            return Err(ConfigError::BadCacheGeometry {
                detail: format!("{name}: set count {sets} is not a power of two"),
            });
        }
        Ok(())
    }
}

/// Rejects arbiter parameters that the arbiter constructors would
/// panic on, so a bad `tdma:<slot>`/`grr:<group>` token surfaces as a
/// [`ConfigError`] (and a per-run error record in campaigns) instead of
/// a process abort.
fn validate_arbiter(kind: ArbiterKind) -> Result<(), ConfigError> {
    match kind {
        ArbiterKind::Tdma { slot_cycles: 0 } => {
            Err(ConfigError::ZeroParameter { name: "arbiter.slot_cycles" })
        }
        ArbiterKind::GroupedRoundRobin { group_size: 0 } => {
            Err(ConfigError::ZeroParameter { name: "arbiter.group_size" })
        }
        _ => Ok(()),
    }
}

/// Shared-bus timing and arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BusConfig {
    /// Bus occupancy of an L2 *hit*, in cycles. On the NGMP configuration
    /// this is 9: a 6-cycle L2 hit plus 3 cycles of transfer and
    /// arbitration handover (§5.2). This is the `l_bus` of Eq. 1.
    pub l2_hit_occupancy: u64,
    /// Bus occupancy of each phase (request, response) of a *split* L2-miss
    /// transaction, in cycles.
    pub transfer_occupancy: u64,
    /// Bus occupancy of a write-through store, in cycles. Stores are
    /// posted writes — "immediately answered" (§2) — so on the NGMP they
    /// hold the bus only for the transfer, not the L2 round trip.
    pub store_occupancy: u64,
    /// Arbitration policy.
    pub arbiter: ArbiterKind,
}

impl BusConfig {
    /// Round-robin bus with the NGMP timing (`l_bus = 9`, posted stores
    /// occupy 3 cycles).
    pub fn ngmp() -> Self {
        BusConfig {
            l2_hit_occupancy: 9,
            transfer_occupancy: 3,
            store_occupancy: 3,
            arbiter: ArbiterKind::RoundRobin,
        }
    }

    /// Validates the bus timing.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroParameter`] if either occupancy is zero,
    /// or [`ConfigError::TdmaSlotTooShort`] for an unusable TDMA schedule.
    pub fn validate(&self) -> Result<(), ConfigError> {
        validate_arbiter(self.arbiter)?;
        if self.l2_hit_occupancy == 0 {
            return Err(ConfigError::ZeroParameter { name: "l2_hit_occupancy" });
        }
        if self.transfer_occupancy == 0 {
            return Err(ConfigError::ZeroParameter { name: "transfer_occupancy" });
        }
        if self.store_occupancy == 0 {
            return Err(ConfigError::ZeroParameter { name: "store_occupancy" });
        }
        if let ArbiterKind::Tdma { slot_cycles } = self.arbiter {
            if slot_cycles < self.l2_hit_occupancy {
                return Err(ConfigError::TdmaSlotTooShort {
                    slot: slot_cycles,
                    occupancy: self.l2_hit_occupancy,
                });
            }
        }
        Ok(())
    }
}

/// The admission queue at the on-chip memory controller — the second
/// arbitrated contention point of the reference NGMP (§5.1: "contention
/// only happens on the bus and the memory controller").
///
/// When present in a [`Topology`], every L2 miss must win this queue
/// (FIFO on the real hardware; other policies are available for
/// ablation) before its line fetch enters DRAM. The queue's service
/// occupancy is the `l_mc` of the per-resource Eq. 1 term
/// `ubd_mc = (Nc − 1) · l_mc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct McQueueConfig {
    /// Cycles the controller's admission stage is held per request.
    pub service_occupancy: u64,
    /// Arbitration policy among the per-core miss streams.
    pub arbiter: ArbiterKind,
}

impl McQueueConfig {
    /// The NGMP-like controller front end: FIFO admission, 6-cycle
    /// service slot (command decode + bank scheduling).
    pub fn ngmp() -> Self {
        McQueueConfig { service_occupancy: 6, arbiter: ArbiterKind::Fifo }
    }

    /// Validates the queue parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroParameter`] for a zero service
    /// occupancy, or [`ConfigError::TdmaSlotTooShort`] for an unusable
    /// TDMA schedule.
    pub fn validate(&self) -> Result<(), ConfigError> {
        validate_arbiter(self.arbiter)?;
        if self.service_occupancy == 0 {
            return Err(ConfigError::ZeroParameter { name: "mc.service_occupancy" });
        }
        if let ArbiterKind::Tdma { slot_cycles } = self.arbiter {
            if slot_cycles < self.service_occupancy {
                return Err(ConfigError::TdmaSlotTooShort {
                    slot: slot_cycles,
                    occupancy: self.service_occupancy,
                });
            }
        }
        Ok(())
    }
}

/// One resource's term of the decomposed Eq. 1 bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceUbd {
    /// Which contention point the term belongs to.
    pub resource: ResourceKind,
    /// Its worst-case per-request contribution `(Nc − 1) · l_r`.
    pub ubd: u64,
}

/// The chain of shared resources on the request path.
///
/// Resource 0 is always the bus; a memory-controller queue can be
/// chained behind it, in which case every L2 miss arbitrates twice: once
/// for the bus (request phase), once for controller admission. The
/// topology is the composable part of a [`MachineConfig`] — presets are
/// one-resource ([`MachineConfig::ngmp_ref`]) or two-resource
/// ([`MachineConfig::ngmp_two_level`]) instances of the same machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    /// The shared bus (resource 0, always present).
    pub bus: BusConfig,
    /// The memory-controller queue (resource 1), if modelled.
    pub mc: Option<McQueueConfig>,
}

impl Topology {
    /// The classic single-resource topology: just the bus.
    pub fn single_bus(bus: BusConfig) -> Self {
        Topology { bus, mc: None }
    }

    /// Bus chained into a memory-controller queue.
    pub fn bus_with_mc(bus: BusConfig, mc: McQueueConfig) -> Self {
        Topology { bus, mc: Some(mc) }
    }

    /// Number of contention points on the request path.
    pub fn resource_count(&self) -> usize {
        1 + usize::from(self.mc.is_some())
    }

    /// The kinds of the chained resources, in request-path order.
    pub fn resource_kinds(&self) -> Vec<ResourceKind> {
        let mut kinds = vec![ResourceKind::Bus];
        if self.mc.is_some() {
            kinds.push(ResourceKind::MemoryController);
        }
        kinds
    }

    /// The per-resource Eq. 1 terms for `num_cores` requesters, in
    /// request-path order. Their sum is the machine's total `ubd`.
    pub fn ubd_breakdown(&self, num_cores: usize) -> Vec<ResourceUbd> {
        let contenders = num_cores.saturating_sub(1) as u64;
        let worst_bus = self
            .bus
            .l2_hit_occupancy
            .max(self.bus.transfer_occupancy)
            .max(self.bus.store_occupancy);
        let mut terms =
            vec![ResourceUbd { resource: ResourceKind::Bus, ubd: contenders * worst_bus }];
        if let Some(mc) = self.mc {
            terms.push(ResourceUbd {
                resource: ResourceKind::MemoryController,
                ubd: contenders * mc.service_occupancy,
            });
        }
        terms
    }

    /// Validates every chained resource.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in any resource.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.bus.validate()?;
        if let Some(mc) = &self.mc {
            mc.validate()?;
        }
        Ok(())
    }
}

/// Way-partitioned shared L2 configuration.
///
/// Each core receives `ways_per_core` ways of the shared cache, so cores
/// never conflict in the L2 and contention arises only on the bus and the
/// memory controller, as in the paper (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct L2Config {
    /// Total capacity in bytes across all partitions.
    pub size_bytes: u64,
    /// Total associativity across all partitions.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Replacement policy inside each partition.
    pub replacement: Replacement,
}

impl L2Config {
    /// The paper's 256 KB 4-way L2 with 32-byte lines.
    pub fn ngmp() -> Self {
        L2Config { size_bytes: 256 * 1024, ways: 4, line_bytes: 32, replacement: Replacement::Lru }
    }

    /// The per-core partition as a standalone cache geometry.
    ///
    /// With one way per core the partition behaves as a direct-mapped cache
    /// of `size_bytes / ways` bytes.
    pub fn partition(&self, num_cores: usize) -> CacheConfig {
        let ways_per_core = (self.ways as usize / num_cores).max(1) as u32;
        CacheConfig {
            size_bytes: self.size_bytes / u64::from(self.ways) * u64::from(ways_per_core),
            ways: ways_per_core,
            line_bytes: self.line_bytes,
            // L2 hit latency is folded into the bus occupancy, per the
            // paper's definition of l_bus; the partition itself adds none.
            latency: 0,
            replacement: self.replacement,
        }
    }

    /// Validates the geometry for a machine with `num_cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero/non-power-of-two sizes or when
    /// there are more cores than L2 ways to partition among them.
    pub fn validate(&self, num_cores: usize) -> Result<(), ConfigError> {
        if self.ways == 0 {
            return Err(ConfigError::ZeroParameter { name: "l2.ways" });
        }
        if num_cores > self.ways as usize {
            return Err(ConfigError::TooManyCores {
                requested: num_cores,
                max: self.ways as usize,
            });
        }
        self.partition(num_cores).validate("l2.partition")
    }
}

/// DDR2-like DRAM timing, in core cycles.
///
/// This stands in for the paper's DRAMsim2 + DDR2-667 configuration; see
/// DESIGN.md for the substitution argument. Defaults approximate a
/// one-rank, 4-bank DDR2-667 part driven by a 200 MHz core clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: u32,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u64,
    /// Activate-to-read delay (tRCD), core cycles.
    pub t_rcd: u64,
    /// Precharge delay (tRP), core cycles.
    pub t_rp: u64,
    /// CAS latency (tCL), core cycles.
    pub t_cl: u64,
    /// Data-burst occupancy per access, core cycles.
    pub burst: u64,
    /// Fixed controller overhead per request, core cycles.
    pub controller_overhead: u64,
}

impl DramConfig {
    /// DDR2-667-like timing at a 200 MHz core clock.
    pub fn ddr2_667() -> Self {
        DramConfig {
            banks: 4,
            row_bytes: 2048,
            t_rcd: 4,
            t_rp: 4,
            t_cl: 4,
            burst: 2,
            controller_overhead: 2,
        }
    }

    /// Validates the timing parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if banks, row size, or burst length is zero,
    /// or the row size is not a power of two.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.banks == 0 {
            return Err(ConfigError::ZeroParameter { name: "dram.banks" });
        }
        if self.row_bytes == 0 {
            return Err(ConfigError::ZeroParameter { name: "dram.row_bytes" });
        }
        if !self.row_bytes.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                name: "dram.row_bytes",
                value: self.row_bytes,
            });
        }
        if self.burst == 0 {
            return Err(ConfigError::ZeroParameter { name: "dram.burst" });
        }
        Ok(())
    }
}

/// Store-buffer sizing (§5.3).
///
/// Write-through stores retire from the pipeline as soon as they enter the
/// buffer; the buffer drains to the bus in FIFO order. Once full, the
/// pipeline stalls and, crucially for the paper's store experiment, the
/// buffered requests reach the bus with zero injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreBufferConfig {
    /// Number of entries.
    pub entries: usize,
}

impl StoreBufferConfig {
    /// The default 8-entry buffer.
    pub fn ngmp() -> Self {
        StoreBufferConfig { entries: 8 }
    }

    /// Validates the sizing.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroParameter`] for an empty buffer.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.entries == 0 {
            return Err(ConfigError::ZeroParameter { name: "store_buffer.entries" });
        }
        Ok(())
    }
}

/// Complete machine configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Number of cores (bus requesters).
    pub num_cores: usize,
    /// Private data cache.
    pub dl1: CacheConfig,
    /// Private instruction cache.
    pub il1: CacheConfig,
    /// Shared, partitioned L2.
    pub l2: L2Config,
    /// The chain of arbitrated contention points (bus, optional
    /// memory-controller queue).
    pub topology: Topology,
    /// DRAM timing behind the controller.
    pub dram: DramConfig,
    /// Per-core store buffer.
    pub store_buffer: StoreBufferConfig,
    /// Latency of a `nop` instruction, cycles (δ_nop). Almost always 1.
    pub nop_latency: u64,
    /// Latency of loop-control (branch) instructions, cycles.
    pub branch_latency: u64,
    /// Cycle budget for [`Machine::run`]; guards against livelock.
    ///
    /// [`Machine::run`]: crate::Machine::run
    pub max_cycles: u64,
    /// Whether the PMC records every individual bus request (needed for
    /// per-request histograms; costs memory on long runs).
    pub record_requests: bool,
    /// Whether to record a bus-event trace (used by timeline figures).
    pub record_trace: bool,
    /// Whether [`Machine::run`]/[`Machine::run_for`] may jump `now`
    /// straight to the next component event horizon when no component
    /// can act this cycle (all cores stalled on DRAM/bus waits), instead
    /// of stepping every quiescent cycle.
    ///
    /// The two modes are cycle-identical — skipping elides only provable
    /// no-op cycles, and the golden-trace and equivalence property tests
    /// pin that — so this stays `true` everywhere except when forcing
    /// naive per-cycle stepping to debug the simulator itself (or to
    /// benchmark the skip, as `simspeed` does).
    ///
    /// [`Machine::run`]: crate::Machine::run
    /// [`Machine::run_for`]: crate::Machine::run_for
    pub quiescence_skip: bool,
    /// Whether [`Machine::run`] may detect a steady-state period (the
    /// whole machine returning to a time-shifted copy of an earlier
    /// state at an iteration boundary) and fast-forward whole periods at
    /// once, scaling the monotone counters instead of replaying them.
    ///
    /// Like [`MachineConfig::quiescence_skip`], the two modes are
    /// cycle-identical — a period is only skipped when every
    /// time-relative component signature (pipeline states, cache
    /// contents and replacement ranks over the program's footprint,
    /// arbiter positions, DRAM and store-buffer queues) matches exactly,
    /// which the period-equivalence property test pins. The skip
    /// disables itself when it cannot be proven sound: trace or request
    /// recording is on, a cache uses random replacement, no core runs a
    /// finite program, or the footprint is too large to fingerprint.
    ///
    /// [`Machine::run`]: crate::Machine::run
    pub period_skip: bool,
}

impl MachineConfig {
    /// The paper's reference architecture (§5.1): 1-cycle L1s, `ubd = 27`.
    pub fn ngmp_ref() -> Self {
        MachineConfig {
            num_cores: 4,
            dl1: CacheConfig::l1_ngmp(1),
            il1: CacheConfig::l1_ngmp(1),
            l2: L2Config::ngmp(),
            topology: Topology::single_bus(BusConfig::ngmp()),
            dram: DramConfig::ddr2_667(),
            store_buffer: StoreBufferConfig::ngmp(),
            nop_latency: 1,
            branch_latency: 1,
            max_cycles: 200_000_000,
            record_requests: true,
            record_trace: false,
            quiescence_skip: true,
            period_skip: true,
        }
    }

    /// The paper's variant architecture (§5.1): 4-cycle L1s, so the
    /// injection time of every bus-accessing instruction rises from 1 to 4.
    pub fn ngmp_var() -> Self {
        let mut cfg = Self::ngmp_ref();
        cfg.dl1.latency = 4;
        cfg.il1.latency = 4;
        cfg
    }

    /// The reference architecture with *both* of its arbitrated
    /// contention points modelled: the round-robin bus chained into the
    /// FIFO memory-controller queue. L2 misses arbitrate twice, and the
    /// Eq. 1 bound decomposes as `ubd = ubd_bus + ubd_mc`
    /// (see [`MachineConfig::ubd_breakdown`]).
    pub fn ngmp_two_level() -> Self {
        let mut cfg = Self::ngmp_ref();
        cfg.topology.mc = Some(McQueueConfig::ngmp());
        cfg
    }

    /// The toy bus of Figures 2–3: `num_cores` cores, a *uniform*
    /// per-transaction occupancy of `l_bus` cycles (loads and stores
    /// alike), and tiny caches, so `ubd = (num_cores-1)*l_bus`.
    pub fn toy(num_cores: usize, l_bus: u64) -> Self {
        let mut cfg = Self::ngmp_ref();
        cfg.num_cores = num_cores;
        cfg.topology.bus.l2_hit_occupancy = l_bus;
        cfg.topology.bus.store_occupancy = l_bus;
        cfg.topology.bus.transfer_occupancy = l_bus;
        cfg.l2.ways = num_cores.max(4) as u32;
        cfg
    }

    /// The bus of the request-path topology (resource 0).
    pub fn bus(&self) -> &BusConfig {
        &self.topology.bus
    }

    /// Mutable access to the bus configuration.
    pub fn bus_mut(&mut self) -> &mut BusConfig {
        &mut self.topology.bus
    }

    /// The memory-controller queue, if this topology chains one.
    pub fn mc(&self) -> Option<&McQueueConfig> {
        self.topology.mc.as_ref()
    }

    /// The theoretical upper-bound delay of this configuration —
    /// Eq. 1 summed over every resource on the request path:
    /// `ubd = Σ_r (Nc - 1) * l_r`, with `l_r` the *longest* transaction
    /// any contender can hold resource `r` for (the L2-hit occupancy on
    /// the NGMP bus, where stores and split-transaction phases are
    /// shorter; the service occupancy at the controller queue).
    ///
    /// The whole point of the paper is that a COTS user *cannot* compute
    /// this (the latencies are undocumented); the simulator exposes it so
    /// experiments can compare measured estimates against the truth.
    /// [`MachineConfig::ubd_breakdown`] exposes the per-resource terms.
    pub fn ubd(&self) -> u64 {
        self.ubd_breakdown().iter().map(|t| t.ubd).sum()
    }

    /// The per-resource terms of [`MachineConfig::ubd`], in request-path
    /// order; they sum to the total by construction.
    pub fn ubd_breakdown(&self) -> Vec<ResourceUbd> {
        self.topology.ubd_breakdown(self.num_cores)
    }

    /// The bus's own term of the bound, `(Nc - 1) * l_bus` — the quantity
    /// the rsk-nop saw-tooth measures (rsk kernels hit in L2 at steady
    /// state, so they exercise the bus, not the controller queue).
    pub fn bus_ubd(&self) -> u64 {
        self.ubd_breakdown()[0].ubd
    }

    /// Validates every component.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in any component.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_cores == 0 {
            return Err(ConfigError::ZeroParameter { name: "num_cores" });
        }
        if self.nop_latency == 0 {
            return Err(ConfigError::ZeroParameter { name: "nop_latency" });
        }
        if self.max_cycles == 0 {
            return Err(ConfigError::ZeroParameter { name: "max_cycles" });
        }
        self.dl1.validate("dl1")?;
        self.il1.validate("il1")?;
        self.l2.validate(self.num_cores)?;
        self.topology.validate()?;
        self.dram.validate()?;
        self.store_buffer.validate()?;
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::ngmp_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngmp_ref_matches_paper_numbers() {
        let cfg = MachineConfig::ngmp_ref();
        assert_eq!(cfg.num_cores, 4);
        assert_eq!(cfg.topology.bus.l2_hit_occupancy, 9);
        assert_eq!(cfg.ubd(), 27);
        assert_eq!(cfg.dl1.latency, 1);
        assert_eq!(cfg.dl1.sets(), 128);
        cfg.validate().expect("reference config must validate");
    }

    #[test]
    fn ngmp_var_only_changes_l1_latency() {
        let r = MachineConfig::ngmp_ref();
        let v = MachineConfig::ngmp_var();
        assert_eq!(v.dl1.latency, 4);
        assert_eq!(v.il1.latency, 4);
        assert_eq!(v.ubd(), r.ubd());
        v.validate().expect("variant config must validate");
    }

    #[test]
    fn toy_config_matches_figure_three() {
        let cfg = MachineConfig::toy(4, 2);
        assert_eq!(cfg.ubd(), 6);
        cfg.validate().expect("toy config must validate");
    }

    #[test]
    fn zero_cores_rejected() {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.num_cores = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroParameter { name: "num_cores" }));
    }

    #[test]
    fn more_cores_than_l2_ways_rejected() {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.num_cores = 8;
        assert!(matches!(cfg.validate(), Err(ConfigError::TooManyCores { .. })));
    }

    #[test]
    fn bad_line_size_rejected() {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.dl1.line_bytes = 48;
        assert!(matches!(cfg.validate(), Err(ConfigError::NotPowerOfTwo { .. })));
    }

    #[test]
    fn l2_partition_is_direct_mapped_per_core() {
        let l2 = L2Config::ngmp();
        let part = l2.partition(4);
        assert_eq!(part.ways, 1);
        assert_eq!(part.size_bytes, 64 * 1024);
        assert_eq!(part.sets(), 2048);
    }

    #[test]
    fn tdma_slot_shorter_than_occupancy_rejected() {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.topology.bus.arbiter = ArbiterKind::Tdma { slot_cycles: 4 };
        assert!(matches!(cfg.validate(), Err(ConfigError::TdmaSlotTooShort { .. })));
    }

    #[test]
    fn ubd_scales_with_core_count_and_latency() {
        for nc in 2..=4usize {
            for lbus in [2u64, 5, 9, 12] {
                let cfg = MachineConfig::toy(nc, lbus);
                assert_eq!(cfg.ubd(), (nc as u64 - 1) * lbus);
            }
        }
    }

    #[test]
    fn single_bus_breakdown_is_the_classic_ubd() {
        let cfg = MachineConfig::ngmp_ref();
        let terms = cfg.ubd_breakdown();
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].resource, ResourceKind::Bus);
        assert_eq!(terms[0].ubd, 27);
        assert_eq!(cfg.bus_ubd(), 27);
        assert_eq!(cfg.ubd(), 27, "one-resource topology keeps the Eq. 1 total");
    }

    #[test]
    fn two_level_breakdown_sums_to_total() {
        let cfg = MachineConfig::ngmp_two_level();
        cfg.validate().expect("two-level preset must validate");
        let terms = cfg.ubd_breakdown();
        assert_eq!(
            terms.iter().map(|t| t.resource).collect::<Vec<_>>(),
            vec![ResourceKind::Bus, ResourceKind::MemoryController]
        );
        assert_eq!(terms[0].ubd, 27);
        assert_eq!(terms[1].ubd, 3 * McQueueConfig::ngmp().service_occupancy);
        assert_eq!(cfg.ubd(), terms[0].ubd + terms[1].ubd, "breakdown sums to the total");
        assert_eq!(cfg.bus_ubd(), 27, "the bus term is unchanged by the extra resource");
    }

    #[test]
    fn topology_constructors_chain_resources() {
        let single = Topology::single_bus(BusConfig::ngmp());
        assert_eq!(single.resource_count(), 1);
        assert_eq!(single.resource_kinds(), vec![ResourceKind::Bus]);
        let two = Topology::bus_with_mc(BusConfig::ngmp(), McQueueConfig::ngmp());
        assert_eq!(two.resource_count(), 2);
        assert_eq!(two.resource_kinds(), vec![ResourceKind::Bus, ResourceKind::MemoryController]);
    }

    #[test]
    fn mc_queue_validation_rejects_bad_parameters() {
        let mut cfg = MachineConfig::ngmp_two_level();
        cfg.topology.mc = Some(McQueueConfig { service_occupancy: 0, arbiter: ArbiterKind::Fifo });
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroParameter { name: "mc.service_occupancy" })
        );
        cfg.topology.mc = Some(McQueueConfig {
            service_occupancy: 6,
            arbiter: ArbiterKind::Tdma { slot_cycles: 2 },
        });
        assert!(matches!(cfg.validate(), Err(ConfigError::TdmaSlotTooShort { .. })));
    }

    #[test]
    fn degenerate_arbiter_parameters_are_config_errors_not_panics() {
        // grr:0 / tdma:0 parse fine but would panic in the arbiter
        // constructors; validation must catch them on every resource.
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.topology.bus.arbiter = ArbiterKind::GroupedRoundRobin { group_size: 0 };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroParameter { name: "arbiter.group_size" }));
        let mut cfg = MachineConfig::ngmp_two_level();
        cfg.topology.mc = Some(McQueueConfig {
            service_occupancy: 6,
            arbiter: ArbiterKind::GroupedRoundRobin { group_size: 0 },
        });
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroParameter { name: "arbiter.group_size" }));
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.topology.bus.arbiter = ArbiterKind::Tdma { slot_cycles: 0 };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroParameter { name: "arbiter.slot_cycles" }));
    }

    #[test]
    fn dram_validation_rejects_zero_banks() {
        let mut d = DramConfig::ddr2_667();
        d.banks = 0;
        assert!(d.validate().is_err());
    }
}
