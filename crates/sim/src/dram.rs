//! Memory controller and DDR2-like DRAM timing model.
//!
//! Stands in for the paper's DRAMsim2 + DDR2-667 configuration (§5.1).
//! The controller is FCFS and single-channel; each of the `banks` banks
//! keeps an open-page row buffer, so a request's latency depends on whether
//! it hits the open row (tCL + burst), needs an activate (tRCD + tCL +
//! burst) or a precharge-activate (tRP + tRCD + tCL + burst), plus a fixed
//! controller overhead. All latencies are expressed in core cycles.
//!
//! The rsk experiments never reach DRAM in steady state (they are
//! architected to hit in L2); DRAM shapes the EEMBC-profile background
//! traffic of Fig. 6(a) and the cold-start transients.

use crate::config::DramConfig;
use crate::types::{Addr, CoreId, Cycle};
use std::collections::VecDeque;

/// How a request interacted with the bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The open row matched.
    Hit,
    /// The bank had no open row; an activate was needed.
    Empty,
    /// A different row was open; precharge then activate.
    Conflict,
}

/// A completed memory access, to be turned into a bus refill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCompletion {
    /// Requesting core.
    pub core: CoreId,
    /// Line address that was fetched.
    pub addr: Addr,
    /// Cycle at which the data is available at the controller.
    pub finished: Cycle,
    /// Row-buffer outcome (diagnostics).
    pub outcome: RowOutcome,
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests serviced.
    pub requests: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer conflicts (precharge needed).
    pub row_conflicts: u64,
    /// Total cycles requests spent queued before service began.
    pub queue_wait_cycles: u64,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    core: CoreId,
    addr: Addr,
    done: Cycle,
    outcome: RowOutcome,
}

#[derive(Debug, Clone, Copy)]
struct Queued {
    core: CoreId,
    addr: Addr,
    arrived: Cycle,
}

/// FCFS memory controller in front of a banked, open-page DRAM.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    open_rows: Vec<Option<u64>>,
    queue: VecDeque<Queued>,
    in_flight: Option<InFlight>,
    stats: DramStats,
}

impl Dram {
    /// Builds the memory subsystem.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; validate user-supplied configs
    /// with [`DramConfig::validate`] first.
    pub fn new(cfg: DramConfig) -> Self {
        // lint_sources: allow (construction-time config check)
        cfg.validate().expect("invalid DRAM configuration");
        Dram {
            open_rows: vec![None; cfg.banks as usize],
            cfg,
            queue: VecDeque::new(),
            in_flight: None,
            stats: DramStats::default(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    fn bank_of(&self, addr: Addr) -> usize {
        ((addr / self.cfg.row_bytes) % u64::from(self.cfg.banks)) as usize
    }

    fn row_of(&self, addr: Addr) -> u64 {
        addr / (self.cfg.row_bytes * u64::from(self.cfg.banks))
    }

    /// Queues a line fetch for `core`.
    pub fn enqueue(&mut self, core: CoreId, addr: Addr, now: Cycle) {
        self.queue.push_back(Queued { core, addr, arrived: now });
    }

    /// Outstanding requests (queued + in flight).
    pub fn outstanding(&self) -> usize {
        self.queue.len() + usize::from(self.in_flight.is_some())
    }

    /// The earliest cycle `>= now` at which the controller can act, or
    /// `None` when it is quiescent (no request queued or in flight).
    ///
    /// The in-flight access completes at its `done` cycle and the next
    /// queued request starts service in the very same [`Dram::tick`], so
    /// that one cycle is the only event horizon. A non-empty queue with
    /// nothing in flight cannot outlive a tick (the head is admitted
    /// immediately); `now` is returned defensively so a skipping caller
    /// never jumps over the admission.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match self.in_flight {
            Some(f) => Some(f.done.max(now)),
            None if !self.queue.is_empty() => Some(now),
            None => None,
        }
    }

    /// Rewinds the controller to its just-built state for a possibly
    /// different configuration, reusing the row-buffer allocation when the
    /// bank count is unchanged. Indistinguishable from `Dram::new(cfg)`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration, like [`Dram::new`].
    pub fn reset_to(&mut self, cfg: DramConfig) {
        // lint_sources: allow (construction-time config check)
        cfg.validate().expect("invalid DRAM configuration");
        if u64::from(cfg.banks) == self.open_rows.len() as u64 {
            self.open_rows.fill(None);
        } else {
            self.open_rows.clear();
            self.open_rows.resize(cfg.banks as usize, None);
        }
        self.cfg = cfg;
        self.queue.clear();
        self.in_flight = None;
        self.stats = DramStats::default();
    }

    /// Appends a time-relative signature of the in-flight state to `out`
    /// (open rows, queue, current access), encoding cycle stamps relative
    /// to `now`.
    pub(crate) fn ff_signature(&self, now: Cycle, out: &mut Vec<u64>) {
        for row in &self.open_rows {
            out.push(row.map_or(u64::MAX, |r| r));
        }
        out.push(self.queue.len() as u64);
        for q in &self.queue {
            out.push(q.core.index() as u64);
            out.push(q.addr);
            out.push(now.wrapping_sub(q.arrived));
        }
        match self.in_flight {
            None => out.push(u64::MAX),
            Some(f) => {
                out.push(f.core.index() as u64);
                out.push(f.addr);
                out.push(f.done.wrapping_sub(now));
                out.push(f.outcome as u64);
            }
        }
    }

    /// Shifts every live cycle stamp forward by `delta` (fast-forward).
    pub(crate) fn ff_shift(&mut self, delta: Cycle) {
        for q in &mut self.queue {
            q.arrived += delta;
        }
        if let Some(f) = &mut self.in_flight {
            f.done += delta;
        }
    }

    /// Adds `k` copies of the per-period statistics delta (fast-forward).
    pub(crate) fn ff_scale_stats(&mut self, delta: DramStats, k: u64) {
        self.stats.requests += k * delta.requests;
        self.stats.row_hits += k * delta.row_hits;
        self.stats.row_conflicts += k * delta.row_conflicts;
        self.stats.queue_wait_cycles += k * delta.queue_wait_cycles;
    }

    /// Advances the controller to cycle `now`; returns a completion if one
    /// finishes exactly at `now`.
    pub fn tick(&mut self, now: Cycle) -> Option<DramCompletion> {
        let mut completion = None;
        if let Some(f) = self.in_flight {
            if f.done == now {
                completion = Some(DramCompletion {
                    core: f.core,
                    addr: f.addr,
                    finished: f.done,
                    outcome: f.outcome,
                });
                self.in_flight = None;
            }
        }
        if self.in_flight.is_none() {
            if let Some(req) = self.queue.front().copied() {
                if req.arrived <= now {
                    self.queue.pop_front();
                    let bank = self.bank_of(req.addr);
                    let row = self.row_of(req.addr);
                    let outcome = match self.open_rows[bank] {
                        Some(open) if open == row => RowOutcome::Hit,
                        Some(_) => RowOutcome::Conflict,
                        None => RowOutcome::Empty,
                    };
                    self.open_rows[bank] = Some(row);
                    let c = &self.cfg;
                    let latency = c.controller_overhead
                        + match outcome {
                            RowOutcome::Hit => c.t_cl + c.burst,
                            RowOutcome::Empty => c.t_rcd + c.t_cl + c.burst,
                            RowOutcome::Conflict => c.t_rp + c.t_rcd + c.t_cl + c.burst,
                        };
                    self.stats.requests += 1;
                    self.stats.queue_wait_cycles += now - req.arrived;
                    match outcome {
                        RowOutcome::Hit => self.stats.row_hits += 1,
                        RowOutcome::Conflict => self.stats.row_conflicts += 1,
                        RowOutcome::Empty => {}
                    }
                    self.in_flight = Some(InFlight {
                        core: req.core,
                        addr: req.addr,
                        done: now + latency,
                        outcome,
                    });
                }
            }
        }
        completion
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::ddr2_667())
    }

    fn run_one(d: &mut Dram, addr: Addr, start: Cycle) -> DramCompletion {
        d.enqueue(CoreId::new(0), addr, start);
        for now in start..start + 200 {
            if let Some(c) = d.tick(now) {
                return c;
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn empty_bank_latency() {
        let mut d = dram();
        let c = run_one(&mut d, 0, 0);
        // overhead + tRCD + tCL + burst = 2 + 4 + 4 + 2 = 12
        assert_eq!(c.finished, 12);
        assert_eq!(c.outcome, RowOutcome::Empty);
    }

    #[test]
    fn row_hit_is_faster() {
        let mut d = dram();
        let first = run_one(&mut d, 0, 0);
        let second = run_one(&mut d, 32, first.finished + 1);
        assert_eq!(second.outcome, RowOutcome::Hit);
        let hit_latency = second.finished - (first.finished + 1);
        // overhead + tCL + burst = 2 + 4 + 2 = 8
        assert_eq!(hit_latency, 8);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut d = dram();
        let cfg = *d.config();
        let first = run_one(&mut d, 0, 0);
        // Same bank, different row: stride = row_bytes * banks.
        let other_row = cfg.row_bytes * u64::from(cfg.banks);
        let second = run_one(&mut d, other_row, first.finished + 1);
        assert_eq!(second.outcome, RowOutcome::Conflict);
        let lat = second.finished - (first.finished + 1);
        // overhead + tRP + tRCD + tCL + burst = 2 + 4 + 4 + 4 + 2 = 16
        assert_eq!(lat, 16);
    }

    #[test]
    fn different_banks_have_independent_rows() {
        let mut d = dram();
        let cfg = *d.config();
        let a = run_one(&mut d, 0, 0);
        let b = run_one(&mut d, cfg.row_bytes, a.finished + 1); // bank 1
        assert_eq!(b.outcome, RowOutcome::Empty);
        // Returning to bank 0's open row still hits.
        let c = run_one(&mut d, 64, b.finished + 1);
        assert_eq!(c.outcome, RowOutcome::Hit);
    }

    #[test]
    fn fcfs_ordering_and_queue_wait() {
        let mut d = dram();
        d.enqueue(CoreId::new(0), 0, 0);
        d.enqueue(CoreId::new(1), 4096, 0);
        let mut done = Vec::new();
        for now in 0..100 {
            if let Some(c) = d.tick(now) {
                done.push(c);
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].core, CoreId::new(0));
        assert_eq!(done[1].core, CoreId::new(1));
        assert!(done[1].finished > done[0].finished);
        assert!(d.stats().queue_wait_cycles > 0, "second request waited");
    }

    #[test]
    fn next_event_is_the_in_flight_completion() {
        let mut d = dram();
        assert_eq!(d.next_event(0), None, "idle DRAM is quiescent");
        d.enqueue(CoreId::new(0), 0, 0);
        assert_eq!(d.next_event(0), Some(0), "queued but not started: imminent");
        d.tick(0); // admits the request; empty-bank latency is 12
        assert_eq!(d.next_event(1), Some(12));
        d.enqueue(CoreId::new(1), 4096, 3);
        assert_eq!(d.next_event(3), Some(12), "queued work waits behind the flight");
        assert!(d.tick(12).is_some());
        assert_eq!(d.next_event(12), Some(12 + 12), "second request started in the same tick");
    }

    #[test]
    fn outstanding_counts_queue_and_flight() {
        let mut d = dram();
        d.enqueue(CoreId::new(0), 0, 0);
        d.enqueue(CoreId::new(0), 64, 0);
        assert_eq!(d.outstanding(), 2);
        d.tick(0); // starts the first
        assert_eq!(d.outstanding(), 2, "one queued + one in flight");
    }
}
