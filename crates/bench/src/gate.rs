//! Benchmark-regression gating: checked-in baselines vs fresh
//! `BENCH_*.json` artifacts.
//!
//! Every perf-bearing bench bin in this workspace writes a JSON
//! artifact (`BENCH_simspeed.json`, `BENCH_campaign.json`,
//! `BENCH_cache.json`). Before this module those numbers were printed
//! and thrown away; now `crates/bench/baselines/*.json` pin the
//! invariants each artifact must keep — with explicit tolerances — and
//! the `bench_gate` bin fails CI when one regresses.
//!
//! A baseline file looks like:
//!
//! ```json
//! {
//!   "artifact": "BENCH_simspeed.json",
//!   "applies_when": { "quick": false },
//!   "checks": [
//!     { "metric": "workloads[0].speedup", "min": 3.0,
//!       "reason": "quiescence-skip speedup on the dram-bound workload" },
//!     { "metric": "workloads[0].stepped_cycles", "max": 0.1,
//!       "ratio_of": "workloads[0].simulated_cycles",
//!       "reason": "share of cycles actually stepped" },
//!     { "metric": "campaign_runs", "eq": 115,
//!       "reason": "the benchmark grid is fixed" }
//!   ]
//! }
//! ```
//!
//! * `metric` is a dotted path with `[i]` indexing into the artifact.
//! * `min` / `max` bound the metric (or, with `ratio_of`, the ratio
//!   `metric / ratio_of`) — this is where tolerances live: bounds are
//!   deliberately looser than the recorded numbers so scheduler noise
//!   on shared CI runners cannot flake the gate, while a real
//!   regression (e.g. the quiescence skip dropping under 3×) still
//!   trips it.
//! * `eq` pins deterministic values exactly (run counts, bools).
//! * `applies_when` skips the baseline unless the artifact matches
//!   (e.g. strict speedup floors only for full, non-`--quick` runs).
//!
//! Updating a baseline is a reviewed change by construction: the gate
//! never rewrites files, so a perf regression can only be accepted by
//! editing the checked-in JSON in the same PR that causes it.

use rrb::json::Json;
use std::fmt;

/// One pinned invariant of a benchmark artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Dotted path (with `[i]` indexing) of the gated metric.
    pub metric: String,
    /// Optional denominator path: bounds then apply to the ratio.
    pub ratio_of: Option<String>,
    /// Inclusive lower bound.
    pub min: Option<f64>,
    /// Inclusive upper bound.
    pub max: Option<f64>,
    /// Exact expected value (numbers compare numerically, bools and
    /// strings structurally).
    pub eq: Option<Json>,
    /// Why this invariant matters — shown on failure.
    pub reason: String,
}

/// A parsed baseline file: which artifact it gates, when it applies,
/// and the checks themselves.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// File name of the gated artifact (e.g. `BENCH_simspeed.json`).
    pub artifact: String,
    /// `(path, expected)` guards: the baseline is skipped unless every
    /// guard matches the artifact.
    pub applies_when: Vec<(String, Json)>,
    /// The pinned invariants.
    pub checks: Vec<Check>,
}

/// The outcome of one check.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The invariant holds. The message describes value vs bound.
    Pass(String),
    /// The invariant is violated (or the metric is missing/mistyped).
    Fail(String),
}

impl Outcome {
    /// Whether this outcome is a pass.
    pub fn is_pass(&self) -> bool {
        matches!(self, Outcome::Pass(_))
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Pass(msg) => write!(f, "PASS {msg}"),
            Outcome::Fail(msg) => write!(f, "FAIL {msg}"),
        }
    }
}

/// One baseline evaluated against one artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// `Some(reason)` when the baseline did not apply (an
    /// `applies_when` guard mismatched) and no checks ran.
    pub skipped: Option<String>,
    /// Per-check outcomes, in baseline order.
    pub outcomes: Vec<Outcome>,
}

impl Evaluation {
    /// Whether every executed check passed (a skipped baseline passes).
    pub fn is_pass(&self) -> bool {
        self.outcomes.iter().all(Outcome::is_pass)
    }
}

/// Looks up a dotted path with `[i]` indexing (`workloads[0].speedup`)
/// in a JSON document.
pub fn lookup<'a>(doc: &'a Json, path: &str) -> Option<&'a Json> {
    let mut current = doc;
    for segment in path.split('.') {
        let (key, indexes) = match segment.find('[') {
            Some(at) => (&segment[..at], &segment[at..]),
            None => (segment, ""),
        };
        if !key.is_empty() {
            current = current.get(key)?;
        }
        for index in indexes.split('[').filter(|s| !s.is_empty()) {
            let index: usize = index.strip_suffix(']')?.parse().ok()?;
            current = current.as_array()?.get(index)?;
        }
    }
    Some(current)
}

fn scalar_to_string(v: &Json) -> String {
    v.render_compact()
}

/// Parses a baseline document.
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let v = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let artifact = v
        .get("artifact")
        .and_then(Json::as_str)
        .ok_or("baseline needs a string `artifact` field")?
        .to_string();
    let applies_when = match v.get("applies_when") {
        None => Vec::new(),
        Some(guard) => guard
            .as_object()
            .ok_or("`applies_when` must be an object")?
            .iter()
            .map(|(k, val)| (k.clone(), val.clone()))
            .collect(),
    };
    let checks_json =
        v.get("checks").and_then(Json::as_array).ok_or("baseline needs a `checks` array")?;
    let mut checks = Vec::with_capacity(checks_json.len());
    for (i, c) in checks_json.iter().enumerate() {
        let field_str = |key: &str| c.get(key).and_then(Json::as_str).map(str::to_string);
        let field_f64 = |key: &str| c.get(key).and_then(Json::as_f64);
        let check = Check {
            metric: field_str("metric").ok_or(format!("checks[{i}] needs a `metric` path"))?,
            ratio_of: field_str("ratio_of"),
            min: field_f64("min"),
            max: field_f64("max"),
            eq: c.get("eq").cloned(),
            reason: field_str("reason").ok_or(format!("checks[{i}] needs a `reason`"))?,
        };
        if check.min.is_none() && check.max.is_none() && check.eq.is_none() {
            return Err(format!("checks[{i}] needs at least one of `min`, `max`, `eq`"));
        }
        if check.eq.is_some() && check.ratio_of.is_some() {
            return Err(format!("checks[{i}]: `eq` and `ratio_of` do not compose"));
        }
        checks.push(check);
    }
    Ok(Baseline { artifact, applies_when, checks })
}

/// Evaluates one check against an artifact.
pub fn evaluate_check(check: &Check, artifact: &Json) -> Outcome {
    let Some(value) = lookup(artifact, &check.metric) else {
        return Outcome::Fail(format!("{}: metric missing from artifact", check.metric));
    };
    if let Some(expected) = &check.eq {
        // Numbers compare numerically so `eq: 115` matches a U64 115;
        // everything else (bools, strings) compares structurally.
        let equal = match (expected.as_f64(), value.as_f64()) {
            (Some(e), Some(v)) => e == v,
            _ => expected == value,
        };
        return if equal {
            Outcome::Pass(format!(
                "{} == {} ({})",
                check.metric,
                scalar_to_string(expected),
                check.reason
            ))
        } else {
            Outcome::Fail(format!(
                "{}: expected {}, artifact has {} ({})",
                check.metric,
                scalar_to_string(expected),
                scalar_to_string(value),
                check.reason
            ))
        };
    }
    let Some(mut v) = value.as_f64() else {
        return Outcome::Fail(format!("{}: not a number", check.metric));
    };
    let mut shown = check.metric.clone();
    if let Some(denom_path) = &check.ratio_of {
        let denom = lookup(artifact, denom_path).and_then(Json::as_f64);
        let Some(denom) = denom.filter(|d| *d != 0.0) else {
            return Outcome::Fail(format!("{denom_path}: missing or zero denominator"));
        };
        v /= denom;
        shown = format!("{} / {}", check.metric, denom_path);
    }
    // NaN fails every bound: a poisoned metric must never pass a gate.
    if let Some(min) = check.min {
        if v.is_nan() || v < min {
            return Outcome::Fail(format!(
                "{shown} = {v:.4} < required minimum {min} ({})",
                check.reason
            ));
        }
    }
    if let Some(max) = check.max {
        if v.is_nan() || v > max {
            return Outcome::Fail(format!(
                "{shown} = {v:.4} > allowed maximum {max} ({})",
                check.reason
            ));
        }
    }
    let bounds = match (check.min, check.max) {
        (Some(min), Some(max)) => format!("within [{min}, {max}]"),
        (Some(min), None) => format!(">= {min}"),
        (None, Some(max)) => format!("<= {max}"),
        (None, None) => String::from("unbounded"),
    };
    Outcome::Pass(format!("{shown} = {v:.4} {bounds} ({})", check.reason))
}

/// Evaluates a whole baseline against its artifact.
pub fn evaluate(baseline: &Baseline, artifact: &Json) -> Evaluation {
    for (path, expected) in &baseline.applies_when {
        let actual = lookup(artifact, path);
        if actual != Some(expected) {
            return Evaluation {
                skipped: Some(format!(
                    "guard `{path}` is {} in the artifact, baseline wants {}",
                    actual.map_or_else(|| String::from("absent"), scalar_to_string),
                    scalar_to_string(expected),
                )),
                outcomes: Vec::new(),
            };
        }
    }
    Evaluation {
        skipped: None,
        outcomes: baseline.checks.iter().map(|c| evaluate_check(c, artifact)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact() -> Json {
        Json::parse(
            r#"{
                "bench": "simspeed",
                "quick": false,
                "workloads": [
                    {"workload": "dram-bound", "simulated_cycles": 4000000,
                     "stepped_cycles": 250000, "speedup": 9.02},
                    {"workload": "bus-saturated", "simulated_cycles": 4000000,
                     "stepped_cycles": 888907, "speedup": 1.95}
                ],
                "campaign_runs": 115,
                "byte_identical": true
            }"#,
        )
        .expect("artifact")
    }

    fn baseline(text: &str) -> Baseline {
        parse_baseline(text).expect("baseline")
    }

    #[test]
    fn lookup_follows_paths_and_indexes() {
        let a = artifact();
        assert_eq!(lookup(&a, "campaign_runs").and_then(Json::as_u64), Some(115));
        assert_eq!(
            lookup(&a, "workloads[1].workload").and_then(Json::as_str),
            Some("bus-saturated")
        );
        assert_eq!(lookup(&a, "workloads[0].speedup").and_then(Json::as_f64), Some(9.02));
        assert!(lookup(&a, "workloads[2].speedup").is_none());
        assert!(lookup(&a, "nope.nope").is_none());
    }

    #[test]
    fn a_seeded_synthetic_regression_fails_the_gate() {
        let b = baseline(
            r#"{"artifact": "BENCH_simspeed.json", "checks": [
                {"metric": "workloads[0].speedup", "min": 3.0,
                 "reason": "quiescence-skip speedup must stay >= 3x"}
            ]}"#,
        );
        // Healthy artifact: passes.
        assert!(evaluate(&b, &artifact()).is_pass());
        // Seed a regression: the skip degraded to 2.4x.
        let regressed = Json::parse(
            &artifact().render_compact().replace("\"speedup\":9.02", "\"speedup\":2.4"),
        )
        .expect("regressed artifact");
        let eval = evaluate(&b, &regressed);
        assert!(!eval.is_pass(), "{eval:?}");
        let msg = eval.outcomes[0].to_string();
        assert!(msg.starts_with("FAIL"), "{msg}");
        assert!(msg.contains("2.4") && msg.contains("required minimum 3"), "{msg}");
    }

    #[test]
    fn ratio_eq_and_max_checks_work() {
        let b = baseline(
            r#"{"artifact": "BENCH_simspeed.json", "checks": [
                {"metric": "workloads[0].stepped_cycles", "max": 0.1,
                 "ratio_of": "workloads[0].simulated_cycles",
                 "reason": "stepped share stays small"},
                {"metric": "campaign_runs", "eq": 115, "reason": "fixed grid"},
                {"metric": "byte_identical", "eq": true, "reason": "determinism"},
                {"metric": "workloads[1].speedup", "max": 50.0, "reason": "sanity"}
            ]}"#,
        );
        let eval = evaluate(&b, &artifact());
        assert!(eval.is_pass(), "{eval:?}");

        let broken = Json::parse(
            &artifact()
                .render_compact()
                .replace("\"campaign_runs\":115", "\"campaign_runs\":114")
                .replace("\"byte_identical\":true", "\"byte_identical\":false"),
        )
        .expect("broken");
        let eval = evaluate(&b, &broken);
        let fails: Vec<_> = eval.outcomes.iter().filter(|o| !o.is_pass()).collect();
        assert_eq!(fails.len(), 2, "{eval:?}");
    }

    #[test]
    fn applies_when_guards_skip_mismatched_artifacts() {
        let b = baseline(
            r#"{"artifact": "BENCH_simspeed.json",
                "applies_when": {"quick": true},
                "checks": [
                    {"metric": "workloads[0].speedup", "min": 1000.0,
                     "reason": "never evaluated"}
                ]}"#,
        );
        let eval = evaluate(&b, &artifact());
        assert!(eval.skipped.is_some(), "{eval:?}");
        assert!(eval.is_pass(), "a skipped baseline cannot fail");
    }

    #[test]
    fn missing_metrics_and_zero_denominators_fail_loudly() {
        let b = baseline(
            r#"{"artifact": "a.json", "checks": [
                {"metric": "does.not.exist", "min": 0.0, "reason": "r"},
                {"metric": "campaign_runs", "max": 1.0,
                 "ratio_of": "does.not.exist", "reason": "r"}
            ]}"#,
        );
        let eval = evaluate(&b, &artifact());
        assert!(eval.outcomes.iter().all(|o| !o.is_pass()), "{eval:?}");
    }

    #[test]
    fn malformed_baselines_are_rejected_with_a_reason() {
        for (text, needle) in [
            ("{", "not valid JSON"),
            (r#"{"checks": []}"#, "artifact"),
            (r#"{"artifact": "a.json"}"#, "checks"),
            (r#"{"artifact": "a.json", "checks": [{"metric": "m", "reason": "r"}]}"#, "at least"),
            (r#"{"artifact": "a.json", "checks": [{"metric": "m", "min": 1.0}]}"#, "reason"),
            (
                r#"{"artifact": "a.json",
                    "checks": [{"metric": "m", "eq": 1, "ratio_of": "d", "reason": "r"}]}"#,
                "compose",
            ),
        ] {
            let e = parse_baseline(text).expect_err(text);
            assert!(e.contains(needle), "`{text}` -> {e}");
        }
    }
}
