//! Figure regenerators live in `src/bin`; std-only benchmarks in
//! `benches/` (built with `harness = false` via [`harness`], so the
//! workspace needs no external bench framework and builds offline).
#![allow(missing_docs)]

pub mod gate;
pub mod harness;

pub use harness::{bench, BenchResult};

/// The worker-thread count the figure regenerators hand to the campaign
/// runner: every available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
