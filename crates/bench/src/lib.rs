//! Figure regenerators live in `src/bin`; criterion benches in `benches/`.
#![allow(missing_docs)]
