//! A tiny wall-clock benchmark harness (std-only).
//!
//! The workspace builds offline, so instead of an external framework the
//! `benches/` targets are plain binaries (`harness = false`) driving
//! this module: warm up, run a fixed number of timed iterations, report
//! min/mean/max. The numbers are indicative, not statistically rigorous
//! — the repo's perf trajectory is tracked by the `BENCH_*.json`
//! artifacts, which record means over fixed workloads.

use std::time::Instant;

/// Timing results of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchResult {
    /// Timed iterations.
    pub iterations: u32,
    /// Fastest iteration, in nanoseconds.
    pub min_ns: u128,
    /// Mean iteration, in nanoseconds.
    pub mean_ns: u128,
    /// Slowest iteration, in nanoseconds.
    pub max_ns: u128,
}

impl BenchResult {
    /// Mean time in seconds.
    pub fn mean_seconds(&self) -> f64 {
        self.mean_ns as f64 / 1e9
    }
}

/// Runs `f` for `warmup + iterations` calls, timing the last
/// `iterations`, and prints one `name: mean … (min …, max …)` line.
pub fn bench(name: &str, warmup: u32, iterations: u32, mut f: impl FnMut()) -> BenchResult {
    for _ in 0..warmup {
        f();
    }
    let iterations = iterations.max(1);
    let mut min_ns = u128::MAX;
    let mut max_ns = 0u128;
    let mut total_ns = 0u128;
    for _ in 0..iterations {
        let start = Instant::now();
        f();
        let ns = start.elapsed().as_nanos();
        min_ns = min_ns.min(ns);
        max_ns = max_ns.max(ns);
        total_ns += ns;
    }
    let result =
        BenchResult { iterations, min_ns, mean_ns: total_ns / u128::from(iterations), max_ns };
    println!(
        "{name:<44} {:>12} mean  ({:>12} min, {:>12} max, {iterations} iters)",
        format_ns(result.mean_ns),
        format_ns(result.min_ns),
        format_ns(result.max_ns),
    );
    result
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_consistent_bounds() {
        let mut n = 0u64;
        let r = bench("noop", 1, 5, || n = n.wrapping_add(1));
        assert_eq!(r.iterations, 5);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
        assert_eq!(n, 6, "warmup + timed iterations all ran");
    }

    #[test]
    fn ns_formatting_picks_sensible_units() {
        assert_eq!(format_ns(12), "12 ns");
        assert_eq!(format_ns(1_500), "1.500 us");
        assert_eq!(format_ns(2_000_000), "2.000 ms");
        assert_eq!(format_ns(3_200_000_000), "3.200 s");
    }
}
