//! Regenerates the paper's **Figure 4**: the saw-tooth behaviour of the
//! contention delay γ(δ) under high load, from the analytic model and
//! from simulation side by side.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin fig4_sawtooth_model
//! ```

use rrb::report::render_sawtooth;
use rrb_analysis::GammaModel;
use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, Machine, MachineConfig};

fn main() {
    let cfg = MachineConfig::ngmp_ref();
    let ubd = cfg.ubd();
    let model = GammaModel::new(ubd);
    let len = 70usize;

    println!("Figure 4 — saw-tooth of gamma(delta), NGMP ref (ubd = {ubd})\n");

    let analytic = model.sweep(1, 1, len);
    println!("analytic gamma(1 + k), k = 0..{len}:");
    println!("{}", render_sawtooth(&analytic, 9));

    println!("simulated mode gamma of rsk-nop(load, k) against 3 rsk:");
    let simulated: Vec<u64> = (0..len).map(|k| measure(&cfg, k)).collect();
    println!("{}", render_sawtooth(&simulated, 9));

    let agree = analytic == simulated;
    println!("max gamma with delta > 0 : {} (= ubd - 1)", model.max_gamma_positive_delta());
    println!("saw-tooth period         : {} (= ubd)", model.period());
    println!("analytic == simulated    : {}", if agree { "yes" } else { "NO" });
}

fn measure(cfg: &MachineConfig, k: usize) -> u64 {
    let mut m = Machine::new(cfg.clone()).expect("valid config");
    m.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, k, cfg, CoreId::new(0), 150));
    for i in 1..cfg.num_cores {
        m.load_program(CoreId::new(i), rsk(AccessKind::Load, cfg, CoreId::new(i)));
    }
    m.run().expect("run");
    m.pmc().core(CoreId::new(0)).mode_gamma().expect("requests observed").0
}
