//! Manifest-driven source lint for paths with reliability or determinism
//! contracts, configured by `crates/bench/lint_manifest.json`.
//!
//! The manifest maps repo-relative paths to named rule sets:
//!
//! * `no-panic` — `unwrap()`, `expect(`, and `panic!` are denied in the
//!   modules every simulated cycle flows through and in the daemon's
//!   request path. A panic there aborts a whole campaign mid-run,
//!   poisons the shared thread pool, or kills a connection a
//!   long-running service cannot afford to lose.
//! * `no-wallclock` — `Instant::now`/`SystemTime::now` are denied in
//!   deterministic-output paths: results must be a pure function of the
//!   spec, never of when they were computed.
//! * `no-unordered-iter` — `HashMap`/`HashSet` are denied in render and
//!   router paths, where hash-ordered iteration would make the emitted
//!   bytes differ run to run.
//!
//! Rules apply outside `#[cfg(test)]` only. A deliberate exception —
//! e.g. a documented `# Panics` convenience wrapper — is exempted by
//! putting a `lint_sources: allow` marker on the line directly above
//! the hit.
//!
//! CI runs this after the build; a hit is exit code 1 with a
//! file:line diagnostic.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin lint_sources
//! ```

use rrb::json::Json;
use std::path::Path;
use std::process::ExitCode;

const MANIFEST: &str = "crates/bench/lint_manifest.json";

const ALLOW_MARKER: &str = "lint_sources: allow";

/// One named rule: the needles it denies and the fix it suggests.
#[derive(Debug)]
struct Rule {
    name: String,
    needles: Vec<String>,
    advice: String,
}

/// One manifest entry: a repo-relative path and its resolved rules.
#[derive(Debug)]
struct Entry {
    path: String,
    rules: Vec<usize>,
}

/// Parses the manifest into rules and path entries, validating that
/// every referenced rule exists.
fn parse_manifest(text: &str) -> Result<(Vec<Rule>, Vec<Entry>), String> {
    let doc = Json::parse(text).map_err(|e| format!("malformed manifest: {e}"))?;
    let mut rules = Vec::new();
    for (name, body) in doc.get("rules").and_then(Json::as_object).ok_or("missing `rules`")? {
        let needles: Vec<String> = body
            .get("needles")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("rule `{name}` has no `needles` array"))?
            .iter()
            .filter_map(|n| n.as_str().map(String::from))
            .collect();
        if needles.is_empty() {
            return Err(format!("rule `{name}` has no needles"));
        }
        let advice = body.get("advice").and_then(Json::as_str).unwrap_or_default().to_string();
        rules.push(Rule { name: name.clone(), needles, advice });
    }
    let mut entries = Vec::new();
    for (path, names) in doc.get("paths").and_then(Json::as_object).ok_or("missing `paths`")? {
        let names = names
            .as_array()
            .ok_or_else(|| format!("path `{path}` must map to an array of rule names"))?;
        let mut resolved = Vec::new();
        for name in names {
            let name = name.as_str().unwrap_or("");
            let idx = rules
                .iter()
                .position(|r| r.name == name)
                .ok_or_else(|| format!("path `{path}` references unknown rule `{name}`"))?;
            resolved.push(idx);
        }
        if resolved.is_empty() {
            return Err(format!("path `{path}` has an empty rule set"));
        }
        entries.push(Entry { path: path.clone(), rules: resolved });
    }
    if entries.is_empty() {
        return Err(String::from("manifest lists no paths"));
    }
    Ok((rules, entries))
}

/// Byte offset where the non-test portion of `source` ends: the start of
/// a top-level `#[cfg(test)]` module, or the whole file when there is
/// none. Linted modules keep their unit tests in one trailing
/// `mod tests`, which this locates without parsing Rust.
fn non_test_end(source: &str) -> usize {
    source.find("#[cfg(test)]").unwrap_or(source.len())
}

/// Lints one file against `active` rules; returns the diagnostics.
fn lint_file(path: &str, source: &str, active: &[&Rule]) -> Vec<String> {
    let mut hits = Vec::new();
    let scope = &source[..non_test_end(source)];
    let mut previous = "";
    for (i, line) in scope.lines().enumerate() {
        let code = line.split("//").next().unwrap_or(line);
        let allowed = previous.contains(ALLOW_MARKER);
        previous = line;
        if allowed {
            continue;
        }
        for rule in active {
            for needle in &rule.needles {
                if code.contains(needle.as_str()) {
                    hits.push(format!(
                        "{path}:{}: `{needle}` breaks the `{}` contract ({}; or mark \
                         the line above with `{ALLOW_MARKER}`)",
                        i + 1,
                        rule.name,
                        rule.advice,
                    ));
                }
            }
        }
    }
    hits
}

/// The repo root: the working directory when the manifest is reachable
/// from it (how CI invokes this bin), the workspace root otherwise (how
/// `cargo run` from a crate directory finds it).
fn repo_root() -> &'static str {
    if Path::new(MANIFEST).exists() {
        "."
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../..")
    }
}

fn main() -> ExitCode {
    let root = repo_root();
    let manifest = match std::fs::read_to_string(format!("{root}/{MANIFEST}")) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("lint_sources: cannot read {MANIFEST}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (rules, entries) = match parse_manifest(&manifest) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("lint_sources: {MANIFEST}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = 0usize;
    for entry in &entries {
        let source = match std::fs::read_to_string(format!("{root}/{}", entry.path)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lint_sources: cannot read {}: {e}", entry.path);
                failures += 1;
                continue;
            }
        };
        let active: Vec<&Rule> = entry.rules.iter().map(|&i| &rules[i]).collect();
        for hit in lint_file(&entry.path, &source, &active) {
            eprintln!("lint_sources: {hit}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("lint_sources: {failures} hit(s)");
        ExitCode::FAILURE
    } else {
        println!("lint_sources: clean ({} manifest path(s))", entries.len());
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_text() -> String {
        std::fs::read_to_string(format!("{}/{MANIFEST}", repo_root())).expect("manifest readable")
    }

    fn rule<'a>(rules: &'a [Rule], name: &str) -> &'a Rule {
        rules.iter().find(|r| r.name == name).expect("rule present")
    }

    #[test]
    fn denies_unwrap_outside_tests() {
        let (rules, _) = parse_manifest(&manifest_text()).expect("parse");
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }\n";
        let hits = lint_file("m.rs", src, &[rule(&rules, "no-panic")]);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].contains("m.rs:1"), "{hits:?}");
        assert!(hits[0].contains("no-panic"), "{hits:?}");
    }

    #[test]
    fn denies_wallclock_and_unordered_iteration() {
        let (rules, _) = parse_manifest(&manifest_text()).expect("parse");
        let src = "fn f() { let t = Instant::now(); }\nuse std::collections::HashMap;\n";
        let active = [rule(&rules, "no-wallclock"), rule(&rules, "no-unordered-iter")];
        let hits = lint_file("m.rs", src, &active);
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert!(hits[0].contains("no-wallclock"), "{hits:?}");
        assert!(hits[1].contains("no-unordered-iter"), "{hits:?}");
    }

    #[test]
    fn allow_marker_exempts_the_next_line() {
        let (rules, _) = parse_manifest(&manifest_text()).expect("parse");
        let src = "// lint_sources: allow (documented panic)\nfn f() { x.expect(\"boom\"); }\n";
        assert!(lint_file("m.rs", src, &[rule(&rules, "no-panic")]).is_empty());
    }

    #[test]
    fn comments_do_not_trip_the_lint() {
        let (rules, _) = parse_manifest(&manifest_text()).expect("parse");
        let src = "fn f() {} // never unwrap() here\n";
        assert!(lint_file("m.rs", src, &[rule(&rules, "no-panic")]).is_empty());
    }

    #[test]
    fn unknown_rule_references_are_rejected() {
        let text = r#"{"rules": {"no-panic": {"needles": ["unwrap()"], "advice": ""}},
                       "paths": {"a.rs": ["no-such-rule"]}}"#;
        let e = parse_manifest(text).expect_err("must fail");
        assert!(e.contains("no-such-rule"), "{e}");
    }

    #[test]
    fn the_workspace_manifest_paths_are_clean() {
        // Mirrors main() so `cargo test` catches a regression before CI.
        let root = repo_root();
        let (rules, entries) = parse_manifest(&manifest_text()).expect("parse");
        for entry in &entries {
            let source = std::fs::read_to_string(format!("{root}/{}", entry.path))
                .expect("manifest path readable");
            let active: Vec<&Rule> = entry.rules.iter().map(|&i| &rules[i]).collect();
            let hits = lint_file(&entry.path, &source, &active);
            assert!(hits.is_empty(), "{hits:#?}");
        }
    }
}
