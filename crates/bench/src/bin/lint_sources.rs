//! Source lint for the simulator's hot path: `unwrap()`, `expect(`, and
//! `panic!` are denied in the modules every simulated cycle flows through
//! (`machine.rs`, `resource.rs`, `core_model.rs`) and in the daemon's
//! request path (`serve`'s parser, router, and worker dispatch) outside
//! `#[cfg(test)]`.
//!
//! A panic in the hot path aborts a whole campaign mid-run and poisons
//! the shared thread pool; a panic in the daemon's request path kills a
//! connection or worker thread a long-running service cannot afford to
//! lose. Recoverable conditions must surface as `Option`/`Result`
//! (with `debug_assert!` pinning the invariant in debug builds). A
//! deliberately panicking API — e.g. a documented `# Panics`
//! convenience wrapper — is exempted by putting a
//! `lint_sources: allow` marker on the line directly above the hit.
//!
//! CI runs this after the build; a hit is exit code 1 with a
//! file:line diagnostic.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin lint_sources
//! ```

use std::process::ExitCode;

const HOT_PATH: &[&str] = &[
    "crates/sim/src/machine.rs",
    "crates/sim/src/resource.rs",
    "crates/sim/src/core_model.rs",
    "crates/serve/src/http.rs",
    "crates/serve/src/router.rs",
    "crates/serve/src/pool.rs",
];

const DENIED: &[&str] = &["unwrap()", "panic!", "expect("];

const ALLOW_MARKER: &str = "lint_sources: allow";

/// Byte offset where the non-test portion of `source` ends: the start of
/// a top-level `#[cfg(test)]` module, or the whole file when there is
/// none. Hot-path modules keep their unit tests in one trailing
/// `mod tests`, which this locates without parsing Rust.
fn non_test_end(source: &str) -> usize {
    source.find("#[cfg(test)]").unwrap_or(source.len())
}

/// Lints one file; returns the diagnostics for its hits.
fn lint_file(path: &str, source: &str) -> Vec<String> {
    let mut hits = Vec::new();
    let scope = &source[..non_test_end(source)];
    let mut previous = "";
    for (i, line) in scope.lines().enumerate() {
        let code = line.split("//").next().unwrap_or(line);
        let allowed = previous.contains(ALLOW_MARKER);
        previous = line;
        if allowed {
            continue;
        }
        for needle in DENIED {
            if code.contains(needle) {
                hits.push(format!(
                    "{path}:{}: `{needle}` on a lint-enforced no-panic path (return \
                     an Option/Result, debug_assert! the invariant, or mark the line \
                     above with `{ALLOW_MARKER}`)",
                    i + 1
                ));
            }
        }
    }
    hits
}

fn main() -> ExitCode {
    let mut failures = 0usize;
    for path in HOT_PATH {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lint_sources: cannot read {path}: {e}");
                failures += 1;
                continue;
            }
        };
        for hit in lint_file(path, &source) {
            eprintln!("lint_sources: {hit}");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("lint_sources: {failures} hit(s)");
        ExitCode::FAILURE
    } else {
        println!("lint_sources: clean ({} hot-path file(s))", HOT_PATH.len());
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denies_unwrap_outside_tests() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }\n";
        let hits = lint_file("m.rs", src);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].contains("m.rs:1"), "{hits:?}");
    }

    #[test]
    fn allow_marker_exempts_the_next_line() {
        let src = "// lint_sources: allow (documented panic)\nfn f() { x.expect(\"boom\"); }\n";
        assert!(lint_file("m.rs", src).is_empty());
    }

    #[test]
    fn comments_do_not_trip_the_lint() {
        let src = "fn f() {} // never unwrap() here\n";
        assert!(lint_file("m.rs", src).is_empty());
    }

    #[test]
    fn the_workspace_hot_path_is_clean() {
        // Mirrors main() so `cargo test` catches a regression before CI.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        for path in HOT_PATH {
            let full = format!("{root}/{path}");
            let source = std::fs::read_to_string(&full).expect("hot-path file readable");
            let hits = lint_file(path, &source);
            assert!(hits.is_empty(), "{hits:#?}");
        }
    }
}
