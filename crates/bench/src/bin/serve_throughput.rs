//! Daemon throughput benchmark: boots an in-process `rrb serve` on an
//! ephemeral port against a scratch store, replays the checked-in
//! `examples/experiments/ngmp_sweep.json` cold then warm, and times
//! point queries, writing the figures to `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin serve_throughput
//! ```
//!
//! Like `cache_throughput`, the bin doubles as an end-to-end smoke
//! test: it asserts the service contracts — a warm replay simulates
//! **nothing**, and every line of the campaign stream except the
//! `stats` trailer is byte-identical across cold and warm — and a
//! violated contract fails the benchmark outright.

use rrb::json::Json;
use rrb::store::ResultStore;
use rrb_serve::{client, ServeConfig, Server};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

const SPEC_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/experiments/ngmp_sweep.json");

/// Warm campaign replays to time (the best is reported: the daemon is
/// deterministic, so the minimum is the least-noisy estimate).
const WARM_PASSES: usize = 5;

fn campaign(addr: SocketAddr, spec: &str) -> (f64, client::Response) {
    let start = Instant::now();
    let resp = client::post(addr, "/v1/campaigns", spec).expect("campaign request");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(resp.status, 200, "campaign failed: {}", resp.body);
    (elapsed, resp)
}

/// The parsed `stats` trailer of a campaign stream.
fn stats_line(body: &str) -> Json {
    let line = body
        .lines()
        .find(|l| l.contains("\"type\":\"stats\""))
        .expect("campaign stream has a stats line");
    Json::parse(line).expect("stats line is JSON")
}

fn u64_field(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or_else(|| panic!("no u64 `{key}` in {v:?}"))
}

/// Everything except the non-deterministic `stats` trailer.
fn deterministic_lines(body: &str) -> Vec<&str> {
    body.lines().filter(|l| !l.is_empty() && !l.contains("\"type\":\"stats\"")).collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let spec = std::fs::read_to_string(SPEC_PATH).expect("read ngmp_sweep.json");
    let dir = std::env::temp_dir().join(format!("rrb-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(ResultStore::open(dir.join("cache")).expect("open scratch store"));
    let config = ServeConfig { addr: String::from("127.0.0.1:0"), ..ServeConfig::default() };
    let server = Server::bind(config, store).expect("bind daemon");
    let addr = server.local_addr().expect("daemon addr");
    let workers = server.workers();
    let handle = server.handle();
    let daemon = std::thread::spawn(move || server.run());

    // Warm up the connection path before timing anything.
    for _ in 0..10 {
        assert_eq!(client::get(addr, "/healthz").expect("healthz").status, 200);
    }

    let (cold_s, cold) = campaign(addr, &spec);
    let cold_stats = stats_line(&cold.body);
    let unique = u64_field(&cold_stats, "executed_runs") + u64_field(&cold_stats, "store_hits");

    let mut warm_s = f64::INFINITY;
    let mut warm_executed = u64::MAX;
    let mut byte_identical = true;
    for _ in 0..WARM_PASSES {
        let (t, warm) = campaign(addr, &spec);
        warm_s = warm_s.min(t);
        warm_executed = warm_executed.min(u64_field(&stats_line(&warm.body), "executed_runs"));
        byte_identical &= deterministic_lines(&cold.body) == deterministic_lines(&warm.body);
    }

    // Point-query latency over every content address the cold stream
    // reported (one GET each, measured individually).
    let hashes: Vec<&str> = cold
        .body
        .lines()
        .filter(|l| l.contains("\"type\":\"run\""))
        .filter_map(|l| {
            let tail = l.split("\"spec_hash\":\"").nth(1)?;
            tail.split('"').next()
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::with_capacity(hashes.len());
    for hash in &hashes {
        let start = Instant::now();
        let resp = client::get(addr, &format!("/v1/runs/{hash}")).expect("point query");
        latencies.push(start.elapsed().as_secs_f64());
        assert_eq!(resp.status, 200, "point query {hash} failed: {}", resp.body);
    }
    latencies.sort_by(f64::total_cmp);
    let point_p50_ms = percentile(&latencies, 0.50) * 1e3;
    let point_p99_ms = percentile(&latencies, 0.99) * 1e3;

    handle.shutdown();
    let final_stats = daemon.join().expect("join daemon").expect("daemon exit");
    let speedup = cold_s / warm_s;

    println!("serve throughput: {unique} unique run(s), {workers} worker(s), daemon at {addr}");
    println!("  cold campaign (simulate + record) : {cold_s:.3} s");
    println!("  warm campaign (best of {WARM_PASSES})         : {warm_s:.3} s ({speedup:.1}x)");
    println!("  warm runs simulated               : {warm_executed}");
    println!("  byte-identical stream             : {byte_identical}");
    println!("  point queries                     : {} (p50 {point_p50_ms:.2} ms, p99 {point_p99_ms:.2} ms)", latencies.len());
    println!("  daemon counters                   : {final_stats:?}");

    let artifact = Json::obj(vec![
        ("bench", Json::str("serve_throughput")),
        ("workers", Json::U64(workers as u64)),
        ("unique_runs", Json::U64(unique)),
        ("cold_seconds", Json::F64(cold_s)),
        ("warm_seconds", Json::F64(warm_s)),
        ("warm_speedup", Json::F64(speedup)),
        ("warm_executed_runs", Json::U64(warm_executed)),
        ("byte_identical_stream", Json::Bool(byte_identical)),
        ("point_queries", Json::U64(latencies.len() as u64)),
        ("point_p50_ms", Json::F64(point_p50_ms)),
        ("point_p99_ms", Json::F64(point_p99_ms)),
        ("campaigns_served", Json::U64(final_stats.campaigns)),
        ("runs_streamed", Json::U64(final_stats.runs_streamed)),
        ("runs_executed", Json::U64(final_stats.runs_executed)),
    ]);
    let path = "BENCH_serve.json";
    match rrb::store::write_file_atomic(path, &artifact.render_pretty()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(warm_executed, 0, "a warm daemon must answer every run from the store");
    assert!(byte_identical, "the deterministic stream must not depend on cache state");
    assert_eq!(final_stats.campaigns, 1 + WARM_PASSES as u64);
    assert_eq!(final_stats.runs_executed, unique, "only the cold pass simulates");
}
