//! CI benchmark-regression gate: evaluates every baseline in
//! `crates/bench/baselines/` against the fresh `BENCH_*.json` artifacts
//! in the working directory and fails (exit 1) on any regression.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin bench_gate                # gate what exists
//! cargo run --release -p rrb-bench --bin bench_gate -- --require-all
//! ```
//!
//! With `--require-all`, a baseline whose artifact file is missing is a
//! failure — CI passes it so a bench that silently stops producing its
//! artifact cannot sneak past the gate. Baselines whose `applies_when`
//! guard mismatches (e.g. strict full-run speedup floors against a
//! `--quick` artifact) are skipped either way.
//!
//! To *accept* a perf change, edit the corresponding baseline under
//! `crates/bench/baselines/` in the same PR — the gate never rewrites
//! files. The check format is documented in [`rrb_bench::gate`].

use rrb::json::Json;
use rrb_bench::gate::{evaluate, parse_baseline};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn baseline_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|read| {
            read.flatten()
                .map(|f| f.path())
                .filter(|p| p.extension().is_some_and(|e| e == "json"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baselines_dir = String::from("crates/bench/baselines");
    let mut artifacts_dir = String::from(".");
    let mut require_all = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baselines" => baselines_dir = it.next().expect("--baselines needs a dir").clone(),
            "--artifacts" => artifacts_dir = it.next().expect("--artifacts needs a dir").clone(),
            "--require-all" => require_all = true,
            other => {
                eprintln!("bench_gate: unknown argument `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let files = baseline_files(Path::new(&baselines_dir));
    if files.is_empty() {
        eprintln!("bench_gate: no baselines under `{baselines_dir}`");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut checks = 0usize;
    for file in files {
        let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("<baseline>").to_string();
        let baseline = match std::fs::read_to_string(&file).map_err(|e| e.to_string()) {
            Ok(text) => match parse_baseline(&text) {
                Ok(b) => b,
                Err(e) => {
                    println!("FAIL {name}: malformed baseline: {e}");
                    failures += 1;
                    continue;
                }
            },
            Err(e) => {
                println!("FAIL {name}: unreadable baseline: {e}");
                failures += 1;
                continue;
            }
        };
        let artifact_path = Path::new(&artifacts_dir).join(&baseline.artifact);
        let artifact = match std::fs::read_to_string(&artifact_path) {
            Ok(text) => match Json::parse(&text) {
                Ok(v) => v,
                Err(e) => {
                    println!("FAIL {name}: {} is not valid JSON: {e}", baseline.artifact);
                    failures += 1;
                    continue;
                }
            },
            Err(_) if require_all => {
                println!(
                    "FAIL {name}: artifact {} is missing (--require-all)",
                    artifact_path.display()
                );
                failures += 1;
                continue;
            }
            Err(_) => {
                println!("SKIP {name}: artifact {} not present", artifact_path.display());
                continue;
            }
        };
        let eval = evaluate(&baseline, &artifact);
        if let Some(reason) = eval.skipped {
            println!("SKIP {name}: {reason}");
            continue;
        }
        for outcome in &eval.outcomes {
            checks += 1;
            if !outcome.is_pass() {
                failures += 1;
            }
            println!("{outcome}  [{name}]");
        }
    }

    println!("\nbench_gate: {checks} check(s), {failures} failure(s)");
    if failures > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
