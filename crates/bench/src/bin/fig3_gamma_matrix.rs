//! Regenerates the γ(δ) matrix of the paper's **Figure 3** (and the
//! single scenario of **Figure 2**) on the toy bus: 4 cores, `l_bus = 2`,
//! `ubd = 6`.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin fig3_gamma_matrix
//! ```
//!
//! For each injection time δ the table reports the analytic γ of Eq. 2
//! and the γ measured on the cycle-accurate machine with `rsk-nop`
//! kernels; the two columns must agree everywhere.

use rrb_analysis::GammaModel;
use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, Machine, MachineConfig};

fn main() {
    let cfg = MachineConfig::toy(4, 2);
    let model = GammaModel::new(cfg.ubd());
    println!("Figure 3 — contention delay gamma as a function of delta");
    println!("toy bus: Nc = 4, l_bus = 2, ubd = {}\n", cfg.ubd());
    println!("delta  gamma(Eq.2)  gamma(simulated)  agree");

    // δ = δ_rsk + k = 1 + k on this machine; δ = 0 is unreachable from
    // software (the paper makes the same observation) and is reported
    // from the model only.
    println!("    0            {}           (unreachable from software)", model.gamma(0));
    let mut all_agree = true;
    for k in 0..=13usize {
        let delta = 1 + k as u64;
        let expected = model.gamma(delta);
        let measured = measure_mode_gamma(&cfg, k);
        let agree = expected == measured;
        all_agree &= agree;
        println!(
            "{delta:>5}  {expected:>11}  {measured:>16}  {}",
            if agree { "yes" } else { "NO" }
        );
    }
    println!(
        "\nverdict: {}",
        if all_agree { "simulated gamma matches Eq. 2 at every delta" } else { "MISMATCH" }
    );
}

fn measure_mode_gamma(cfg: &MachineConfig, k: usize) -> u64 {
    let mut m = Machine::new(cfg.clone()).expect("valid config");
    m.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, k, cfg, CoreId::new(0), 400));
    for i in 1..cfg.num_cores {
        m.load_program(CoreId::new(i), rsk(AccessKind::Load, cfg, CoreId::new(i)));
    }
    m.run().expect("run");
    m.pmc().core(CoreId::new(0)).mode_gamma().expect("requests observed").0
}
