//! Regenerates the paper's **Figure 7(b)**: slowdown of
//! `rsk-nop(store, k)` against 3 load rsk, as a function of `k`.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin fig7b_store_sawtooth
//! ```
//!
//! Expected shape (paper §5.3): because the store buffer absorbs stores
//! and drains them back to back, the slowdown shows a saw-tooth over
//! roughly the *first* period only (k up to ~ubd, with a small shift due
//! to buffer depth and processing time) and is (near) zero afterwards —
//! the buffer then always has a free slot and hides the bus latency.

use rrb::experiment::measure_slowdown;
use rrb::report::render_sawtooth;
use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, MachineConfig};

fn main() {
    let cfg = MachineConfig::ngmp_ref();
    let max_k = 80usize;
    let iterations = 400u64;

    let mut slowdowns = Vec::with_capacity(max_k + 1);
    for k in 0..=max_k {
        let scua = rsk_nop(AccessKind::Store, k, &cfg, CoreId::new(0), iterations);
        let m =
            measure_slowdown(&cfg, scua, |c| rsk(AccessKind::Load, &cfg, c)).expect("measurement");
        slowdowns.push(m.det());
    }

    println!("d_bus(store, k) for k = 0..={max_k} (true ubd = {}):", cfg.ubd());
    println!("{}", render_sawtooth(&slowdowns, 10));

    let ubd = cfg.ubd() as usize;
    let first_period_peak = *slowdowns[..=ubd].iter().max().expect("non-empty");
    let tail_peak = *slowdowns[ubd + 5..].iter().max().expect("non-empty");
    let last_nonzero = slowdowns.iter().rposition(|&d| d > first_period_peak / 100);
    println!("  peak slowdown, k in [0, ubd]   : {first_period_peak}");
    println!("  peak slowdown, k > ubd + 4     : {tail_peak}");
    println!("  last k with non-trivial slowdown: {last_nonzero:?}");
    println!(
        "  verdict: {}",
        if tail_peak * 10 < first_period_peak.max(1) {
            format!(
                "one saw-tooth period then ~zero — the first period spans k in [0, ~{}], as in Fig. 7(b)",
                last_nonzero.unwrap_or(ubd)
            )
        } else {
            String::from("UNEXPECTED: slowdown persists beyond one period")
        }
    );
}
