//! Ablation: δ_nop > 1 (§4.2's "unlikely case"). Varying k then *samples*
//! the δ-space saw-tooth; the calibrated δ_nop plus the candidate
//! disambiguation must still recover the exact `ubd`.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin ablation_slow_nop
//! ```

use rrb::methodology::{derive_ubd, MethodologyConfig};
use rrb_sim::MachineConfig;

fn main() {
    println!("NGMP ref (true ubd = 27); sweeping the nop latency\n");
    println!("delta_nop  k-period  candidates           derived ubd_m");
    for nop_latency in [1u64, 2, 3] {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.nop_latency = nop_latency;
        let mut mcfg = MethodologyConfig::paper();
        mcfg.iterations = 200;
        mcfg.max_k = 70;
        match derive_ubd(&cfg, &mcfg) {
            Ok(d) => println!(
                "{:>9}  {:>8}  {:<20} {:>12}",
                d.delta_nop,
                d.k_period,
                format!("{:?}", d.candidates),
                d.ubd_m
            ),
            Err(e) => println!("{nop_latency:>9}  refused: {e}"),
        }
    }
    println!(
        "\nexpected: delta_nop = 2 keeps an apparent period of 27 (coprime);\n\
         delta_nop = 3 collapses it to 9 with candidates {{9, 27}}; both derive 27."
    );
}
