//! Ablation: δ_nop > 1 (§4.2's "unlikely case"). Varying k then *samples*
//! the δ-space saw-tooth; the calibrated δ_nop plus the candidate
//! disambiguation must still recover the exact `ubd`.
//!
//! A thin wrapper over the `Campaign` runner: one `Derive` scenario per
//! nop latency, batched into a single parallel plan.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin ablation_slow_nop
//! ```

use rrb::campaign::Campaign;
use rrb::methodology::{MethodologyConfig, UbdScenario};
use rrb::scenario::MetricValue;
use rrb_sim::MachineConfig;

fn main() {
    println!("NGMP ref (true ubd = 27); sweeping the nop latency\n");
    let mut builder = Campaign::builder().jobs(rrb_bench::default_jobs());
    for nop_latency in [1u64, 2, 3] {
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.nop_latency = nop_latency;
        let mut mcfg = MethodologyConfig::paper();
        mcfg.iterations = 200;
        mcfg.max_k = 70;
        builder =
            builder.scenario(UbdScenario::new(cfg, mcfg).named(format!("delta_nop={nop_latency}")));
    }
    let result = builder.build().run();
    println!("delta_nop  k-period  candidates           derived ubd_m");
    for report in &result.reports {
        let candidates = match report.metric("candidates") {
            Some(MetricValue::Series(c)) => format!("{c:?}"),
            _ => String::from("-"),
        };
        match (
            report.metric_u64("delta_nop"),
            report.metric_u64("k_period"),
            report.metric_u64("ubd_m"),
        ) {
            (Some(delta_nop), Some(period), Some(ubd_m)) => {
                println!("{delta_nop:>9}  {period:>8}  {candidates:<20} {ubd_m:>12}");
            }
            _ => println!("{}  {}", report.scenario, report.summary),
        }
    }
    println!(
        "\nexpected: delta_nop = 2 keeps an apparent period of 27 (coprime);\n\
         delta_nop = 3 collapses it to 9 with candidates {{9, 27}}; both derive 27."
    );
}
