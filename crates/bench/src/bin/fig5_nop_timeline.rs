//! Regenerates the paper's **Figure 5**: bus timing diagrams of
//! `rsk-nop(load, k)` against three rsk as `k` grows, showing how the
//! added nops walk the request across the round-robin window.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin fig5_nop_timeline
//! ```
//!
//! Rendered as ASCII Gantt charts on the toy bus of Figs. 2–3
//! (`l_bus = 2`, `ubd = 6`): `#` = core occupies the bus, `.` = core has
//! a request waiting. Core 0 is the rsk-nop scua.

use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, Machine, MachineConfig};

fn main() {
    let mut cfg = MachineConfig::toy(4, 2);
    cfg.record_trace = true;

    for k in [1usize, 2, 5, 6] {
        let mut m = Machine::new(cfg.clone()).expect("valid config");
        m.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, k, &cfg, CoreId::new(0), 60));
        for i in 1..cfg.num_cores {
            m.load_program(CoreId::new(i), rsk(AccessKind::Load, &cfg, CoreId::new(i)));
        }
        m.run().expect("run");
        let pmc = m.pmc().core(CoreId::new(0));
        let (gamma, _) = pmc.mode_gamma().expect("requests observed");
        println!("--- rsk-nop(load, k = {k}) : steady-state gamma = {gamma} ---");
        // A steady-state window late in the run, one RR rotation wide.
        let now = m.now();
        println!(
            "{}",
            m.trace().gantt(cfg.num_cores, now.saturating_sub(60), now.saturating_sub(10))
        );
    }
    println!("(compare: k = 1..5 walks gamma down from 4 to 0; k = 6 wraps back up — Fig. 5 a-d)");
}
