//! Characterisation of the synthetic EEMBC-Autobench profiles: per-kernel
//! bus demand, cache behaviour and solo bus utilisation — the evidence
//! that the Fig. 6(a) substitution preserves the property it needs
//! (realistic, non-saturating bus pressure with diverse footprints).
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin eembc_characterization
//! ```

use rrb_kernels::AutobenchKernel;
use rrb_sim::{CoreId, Machine, MachineConfig};

fn main() {
    let cfg = MachineConfig::ngmp_ref();
    println!("per-kernel solo run, 400 body iterations, NGMP ref\n");
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "kernel", "cycles", "bus reqs", "dl1 hit%", "l2 miss", "dram", "bus util"
    );
    for kernel in AutobenchKernel::all() {
        let mut m = Machine::new(cfg.clone()).expect("config");
        let p = kernel.profile().program(&cfg, CoreId::new(0), 42, Some(400));
        m.load_program(CoreId::new(0), p);
        let s = m.run().expect("run");
        let pmc = m.pmc().core(CoreId::new(0));
        let dl1 = m.dl1_stats(CoreId::new(0));
        println!(
            "{:<8} {:>8} {:>10} {:>9.1}% {:>10} {:>9} {:>9.3}",
            kernel.to_string(),
            s.cycles,
            pmc.bus_requests(),
            dl1.hit_rate() * 100.0,
            pmc.l2_misses,
            m.dram().stats().requests,
            s.bus_utilization,
        );
    }
    println!(
        "\nexpected: utilisations well below 1.0 (no kernel saturates the bus on\n\
         its own), with cacheb/matrix the most memory-hungry and basefp/canrdr\n\
         the least — the diversity Fig. 6(a)'s random workloads rely on."
    );
}
