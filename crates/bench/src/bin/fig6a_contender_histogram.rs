//! Regenerates the paper's **Figure 6(a)**: histogram of the number of
//! contenders ready to send a request when the observed task in core c0
//! tries to access the bus — for 8 random 4-task EEMBC workloads versus
//! a workload of 4 saturating rsk.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin fig6a_contender_histogram
//! ```
//!
//! Expected shape (as in the paper): the EEMBC scua finds the bus empty
//! or with one contender most of the time; the rsk workload pins the
//! count at `Nc - 1 = 3` on almost every request.

use rrb::report::render_histogram;
use rrb_analysis::Histogram;
use rrb_kernels::{random_eembc_workload, rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, Machine, MachineConfig};

fn main() {
    let cfg = MachineConfig::ngmp_ref();

    // Dark bars: 8 randomly generated 4-task EEMBC workloads.
    let mut eembc = Histogram::new();
    for seed in 0..8u64 {
        let w = random_eembc_workload(&cfg, seed, 200);
        let scua = w.scua;
        let mut m = w.into_machine(&cfg).expect("machine");
        m.run().expect("run");
        let h = Histogram::from_bins(
            m.pmc().core(scua).contender_histogram.iter().map(|(&c, &n)| (u64::from(c), n)),
        );
        println!(
            "workload {seed}: mode {} contenders, 0-or-1 fraction {:.2}",
            h.mode().unwrap_or(0),
            (h.count(0) + h.count(1)) as f64 / h.total().max(1) as f64
        );
        eembc.merge(&h);
    }
    println!();
    println!(
        "{}",
        render_histogram("EEMBC scua vs 3 EEMBC (contenders ready at each request):", &eembc)
    );

    // Light bars: 4 rsk.
    let mut m = Machine::new(cfg.clone()).expect("machine");
    m.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 2000));
    for i in 1..cfg.num_cores {
        m.load_program(CoreId::new(i), rsk(AccessKind::Load, &cfg, CoreId::new(i)));
    }
    m.run().expect("run");
    let rsk_hist = Histogram::from_bins(
        m.pmc().core(CoreId::new(0)).contender_histogram.iter().map(|(&c, &n)| (u64::from(c), n)),
    );
    println!("{}", render_histogram("rsk scua vs 3 rsk:", &rsk_hist));

    println!(
        "paper's reading: EEMBC mostly 0-1 contenders (here {:.0}%), rsk pinned at 3 (here {:.0}%).",
        (eembc.count(0) + eembc.count(1)) as f64 / eembc.total() as f64 * 100.0,
        rsk_hist.fraction(3) * 100.0
    );
}
