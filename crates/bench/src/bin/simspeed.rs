//! Simulator-core throughput benchmark: event-driven quiescence
//! skipping vs naive per-cycle stepping, written to `BENCH_simspeed.json`
//! so the perf trajectory of the hot loop is tracked like the campaign
//! runner's.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin simspeed            # full run
//! cargo run --release -p rrb-bench --bin simspeed -- --quick # CI smoke
//! ```
//!
//! Three workloads bracket the skip's leverage:
//!
//! * **dram-bound** — four cores streaming L2-missing loads through the
//!   two-level topology: almost every cycle is a DRAM/queue wait, the
//!   best case for skipping (and the acceptance gate: ≥ 3× simulated
//!   cycles/sec over per-cycle stepping).
//! * **bus-saturated** — four saturating rsk kernels: the bus is busy
//!   every cycle, so the skip can only jump grant-to-completion gaps.
//! * **campaign** — the toy derivation grid of `campaign_throughput`,
//!   run serially, reporting end-to-end methodology runs/sec (which
//!   inherit the skip through the default configuration).

use rrb::campaign::{Campaign, CampaignGrid, GridScenario};
use rrb::json::Json;
use rrb_kernels::{rsk, rsk_l2_miss, AccessKind};
use rrb_sim::{CoreId, Cycle, Machine, MachineConfig, Program};
use std::time::Instant;

/// The two-level reference machine with DDR2-667 timed against a 1 GHz
/// core instead of the NGMP's 200 MHz — every DRAM parameter scales by
/// the 5x clock ratio, so each miss stalls its core for hundreds of
/// cycles. This is the stall-heavy regime quiescence skipping targets:
/// the queue-serialised misses leave long provably-idle stretches.
fn stall_heavy_config() -> MachineConfig {
    let mut cfg = MachineConfig::ngmp_two_level();
    cfg.dram.t_rcd *= 5;
    cfg.dram.t_rp *= 5;
    cfg.dram.t_cl *= 5;
    cfg.dram.burst *= 5;
    cfg.dram.controller_overhead *= 5;
    cfg
}

/// Simulates `cycles` of `cfg` with every core running `prog_of(core)`,
/// returning (wall seconds, steps actually executed).
fn simulate(
    cfg: &MachineConfig,
    cycles: Cycle,
    prog_of: impl Fn(&MachineConfig, CoreId) -> Program,
) -> (f64, u64) {
    let mut m = Machine::new(cfg.clone()).expect("config");
    for i in 0..cfg.num_cores {
        let id = CoreId::new(i);
        m.load_program(id, prog_of(cfg, id));
    }
    let start = Instant::now();
    let s = m.run_for(cycles);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(s.cycles, cycles);
    (elapsed, m.steps_executed())
}

/// One skip-vs-step comparison: returns (skip cps, step cps, speedup,
/// json record).
fn compare(
    name: &'static str,
    base: MachineConfig,
    cycles: Cycle,
    prog_of: impl Fn(&MachineConfig, CoreId) -> Program + Copy,
) -> (f64, Json) {
    let mut skip_cfg = base.clone();
    skip_cfg.quiescence_skip = true;
    // Measure the simulation loop, not the PMC request log (identical
    // in both modes; campaigns that need histograms pay it knowingly).
    skip_cfg.record_requests = false;
    let mut step_cfg = skip_cfg.clone();
    step_cfg.quiescence_skip = false;
    // Warm up (allocator, caches), then measure.
    let _ = simulate(&skip_cfg, cycles / 4, prog_of);
    let _ = simulate(&step_cfg, cycles / 4, prog_of);
    let (skip_s, steps) = simulate(&skip_cfg, cycles, prog_of);
    let (step_s, _) = simulate(&step_cfg, cycles, prog_of);
    let skip_cps = cycles as f64 / skip_s;
    let step_cps = cycles as f64 / step_s;
    let speedup = skip_cps / step_cps;
    let stepped_share = steps as f64 / cycles as f64;
    println!(
        "{name:<14} skip: {skip_cps:>12.0} cycles/s   step: {step_cps:>12.0} cycles/s   \
         speedup: {speedup:.2}x   (stepped {:.1}% of cycles)",
        stepped_share * 100.0
    );
    let record = Json::obj(vec![
        ("workload", Json::str(name)),
        ("simulated_cycles", Json::U64(cycles)),
        ("stepped_cycles", Json::U64(steps)),
        ("skip_seconds", Json::F64(skip_s)),
        ("step_seconds", Json::F64(step_s)),
        ("cycles_per_second_skip", Json::F64(skip_cps)),
        ("cycles_per_second_step", Json::F64(step_cps)),
        ("speedup", Json::F64(speedup)),
    ]);
    (speedup, record)
}

/// The campaign grid of `campaign_throughput`, timed serially.
fn campaign_runs_per_second() -> (f64, u64) {
    let grid = CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2))
        .contender_accesses(vec![AccessKind::Load, AccessKind::Store])
        .iterations(vec![150, 200])
        .max_k(18);
    let campaign = Campaign::builder().grid(&grid).jobs(1).build();
    let start = Instant::now();
    let result = campaign.run();
    let elapsed = start.elapsed().as_secs_f64();
    let runs = result.stats.executed_runs as u64;
    (runs as f64 / elapsed, runs)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cycles: Cycle = if quick { 200_000 } else { 4_000_000 };

    let (dram_speedup, dram_record) =
        compare("dram-bound", stall_heavy_config(), cycles, rsk_l2_miss);
    let (bus_speedup, bus_record) =
        compare("bus-saturated", MachineConfig::ngmp_ref(), cycles, |cfg, core| {
            rsk(AccessKind::Load, cfg, core)
        });
    let (campaign_rps, campaign_runs) = campaign_runs_per_second();
    println!("{:<14} {campaign_rps:>12.1} runs/s serial ({campaign_runs} runs)", "campaign");

    let artifact = Json::obj(vec![
        ("bench", Json::str("simspeed")),
        ("quick", Json::Bool(quick)),
        ("workloads", Json::Arr(vec![dram_record, bus_record])),
        ("campaign_runs", Json::U64(campaign_runs)),
        ("campaign_runs_per_second_serial", Json::F64(campaign_rps)),
    ]);
    let path = "BENCH_simspeed.json";
    match std::fs::write(path, artifact.render_pretty()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    // Wall-clock gates only outside --quick: the CI smoke run simulates
    // too few cycles for timing assertions to be scheduler-noise-proof.
    if !quick {
        assert!(
            bus_speedup > 0.5,
            "skipping must not slow the saturated-bus case down materially (got {bus_speedup:.2}x)"
        );
        assert!(
            dram_speedup >= 3.0,
            "quiescence skipping must be >= 3x on the DRAM-bound workload (got {dram_speedup:.2}x)"
        );
    }
}
