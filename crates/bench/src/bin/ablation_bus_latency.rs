//! Ablation: the saw-tooth period tracks `l_bus` (Eq. 1) across bus
//! speeds, from the toy 2-cycle bus to a slow 12-cycle one.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin ablation_bus_latency
//! ```

use rrb::methodology::{derive_ubd, MethodologyConfig};
use rrb_sim::MachineConfig;

fn main() {
    println!("Nc = 4; sweeping the bus occupancy l_bus\n");
    println!("l_bus  true ubd  derived ubd_m  k-period");
    for l_bus in [2u64, 5, 9, 12] {
        let cfg = MachineConfig::toy(4, l_bus);
        let expected = cfg.ubd();
        let mut mcfg = MethodologyConfig::fast();
        mcfg.max_k = (expected as usize) * 3;
        match derive_ubd(&cfg, &mcfg) {
            Ok(d) => println!("{l_bus:>5}  {expected:>8}  {:>13}  {:>8}", d.ubd_m, d.k_period),
            Err(e) => println!("{l_bus:>5}  {expected:>8}  refused: {e}"),
        }
    }
    println!("\nexpected: ubd_m = 3 * l_bus at every latency (the NGMP's l_bus = 9 gives 27).");
}
