//! Ablation: the saw-tooth period tracks `l_bus` (Eq. 1) across bus
//! speeds, from the toy 2-cycle bus to a slow 12-cycle one.
//!
//! A thin wrapper over the `Campaign` runner: one `Derive` scenario per
//! bus speed, batched into a single parallel plan.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin ablation_bus_latency
//! ```

use rrb::campaign::Campaign;
use rrb::methodology::{MethodologyConfig, UbdScenario};
use rrb_sim::MachineConfig;

fn main() {
    println!("Nc = 4; sweeping the bus occupancy l_bus\n");
    let mut builder = Campaign::builder().jobs(rrb_bench::default_jobs());
    for l_bus in [2u64, 5, 9, 12] {
        let cfg = MachineConfig::toy(4, l_bus);
        let mut mcfg = MethodologyConfig::fast();
        mcfg.max_k = (cfg.ubd() as usize) * 3;
        builder = builder.scenario(UbdScenario::new(cfg, mcfg).named(format!("l_bus={l_bus}")));
    }
    let result = builder.build().run();
    println!("l_bus  true ubd  derived ubd_m  k-period");
    for (l_bus, report) in [2u64, 5, 9, 12].into_iter().zip(&result.reports) {
        let expected = MachineConfig::toy(4, l_bus).ubd();
        match (report.metric_u64("ubd_m"), report.metric_u64("k_period")) {
            (Some(ubd_m), Some(period)) => {
                println!("{l_bus:>5}  {expected:>8}  {ubd_m:>13}  {period:>8}");
            }
            _ => println!("{l_bus:>5}  {expected:>8}  {}", report.summary),
        }
    }
    println!("\nexpected: ubd_m = 3 * l_bus at every latency (the NGMP's l_bus = 9 gives 27).");
}
