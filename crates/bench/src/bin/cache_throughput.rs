//! Result-store throughput benchmark: cold (simulate + record) vs warm
//! (answer every run from the store) campaign execution, written to
//! `BENCH_cache.json` so the cache's perf trajectory is tracked like
//! the simulator's and the campaign runner's.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin cache_throughput
//! ```
//!
//! The grid is the fixed 4-cell derivation grid of
//! `campaign_throughput` (115 unique runs), against a scratch store, so
//! the artifact's run counts are machine-independent while the
//! runs/sec figures track the hardware. The bin also asserts the
//! store's two contracts — a warm re-run simulates **nothing**, and
//! output is byte-identical to the cold run — so the benchmark doubles
//! as an end-to-end smoke test.

use rrb::campaign::{Campaign, CampaignGrid, CampaignResult, GridScenario};
use rrb::json::Json;
use rrb::store::ResultStore;
use rrb_kernels::AccessKind;
use rrb_sim::MachineConfig;
use std::sync::Arc;
use std::time::Instant;

/// The same fixed grid as `campaign_throughput`, so run counts match
/// across the two artifacts.
fn grid() -> CampaignGrid {
    CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2))
        .contender_accesses(vec![AccessKind::Load, AccessKind::Store])
        .iterations(vec![150, 200])
        .max_k(18)
}

fn timed_run(store: &Arc<ResultStore>) -> (f64, CampaignResult) {
    let campaign = Campaign::builder().grid(&grid()).jobs(1).store(store.clone()).build();
    let start = Instant::now();
    let result = campaign.run();
    (start.elapsed().as_secs_f64(), result)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("rrb-cache-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Warm-up pass (allocator, code pages) against a throwaway store.
    let warmup = Arc::new(ResultStore::open(dir.join("warmup")).expect("open warmup store"));
    let _ = timed_run(&warmup);

    let store = Arc::new(ResultStore::open(dir.join("store")).expect("open store"));
    let (cold_s, cold) = timed_run(&store);
    let (warm_s, warm) = timed_run(&store);

    let unique = cold.stats.executed_runs + cold.stats.store_hits;
    let byte_identical = cold.to_json() == warm.to_json()
        && cold.to_csv() == warm.to_csv()
        && cold.render_text() == warm.render_text();
    let entries = store.stats();
    let speedup = cold_s / warm_s;

    println!("cache throughput: {} unique run(s), store at {}", unique, dir.display());
    println!(
        "  cold (simulate + record)       : {cold_s:.3} s ({:.1} runs/s)",
        unique as f64 / cold_s
    );
    println!(
        "  warm (store hits only)         : {warm_s:.3} s ({:.1} runs/s)",
        unique as f64 / warm_s
    );
    println!("  warm speedup                   : {speedup:.2}x");
    println!("  warm runs simulated            : {}", warm.stats.executed_runs);
    println!("  byte-identical output          : {byte_identical}");
    println!("  entries on disk                : {} ({} bytes)", entries.entries, entries.bytes);

    let artifact = Json::obj(vec![
        ("bench", Json::str("cache_throughput")),
        ("unique_runs", Json::U64(unique as u64)),
        ("cold_executed_runs", Json::U64(cold.stats.executed_runs as u64)),
        ("cold_store_writes", Json::U64(cold.stats.store_writes as u64)),
        ("warm_executed_runs", Json::U64(warm.stats.executed_runs as u64)),
        ("warm_store_hits", Json::U64(warm.stats.store_hits as u64)),
        ("store_entries", Json::U64(entries.entries)),
        ("store_bytes", Json::U64(entries.bytes)),
        ("cold_seconds", Json::F64(cold_s)),
        ("warm_seconds", Json::F64(warm_s)),
        ("runs_per_second_cold", Json::F64(unique as f64 / cold_s)),
        ("runs_per_second_warm", Json::F64(unique as f64 / warm_s)),
        ("warm_speedup", Json::F64(speedup)),
        ("byte_identical_output", Json::Bool(byte_identical)),
    ]);
    let path = "BENCH_cache.json";
    match rrb::store::write_file_atomic(path, &artifact.render_pretty()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(warm.stats.executed_runs, 0, "a warm store must answer every run");
    assert_eq!(warm.stats.store_hits, unique);
    assert!(byte_identical, "warm output must be byte-identical to cold");
}
