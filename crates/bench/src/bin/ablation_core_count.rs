//! Ablation: Eq. 1 scaling — `ubd = (Nc - 1) · l_bus` recovered blind
//! across core counts.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin ablation_core_count
//! ```

use rrb::methodology::{derive_ubd, MethodologyConfig};
use rrb_kernels::AccessKind;
use rrb_sim::MachineConfig;

fn main() {
    let l_bus = 3u64;
    println!("l_bus = {l_bus}; sweeping core count\n");
    println!("Nc  true ubd  derived ubd_m  contenders");
    for nc in 2..=4usize {
        let cfg = MachineConfig::toy(nc, l_bus);
        let expected = cfg.ubd();
        let mut mcfg = MethodologyConfig::fast();
        mcfg.max_k = (expected as usize) * 3;
        // One load contender cannot saturate a 2-core bus; use store
        // contenders there (they inject back to back, §5.3).
        let contenders = if nc == 2 {
            mcfg.contender_access = AccessKind::Store;
            "store rsk"
        } else {
            "load rsk"
        };
        match derive_ubd(&cfg, &mcfg) {
            Ok(d) => println!("{nc:>2}  {expected:>8}  {:>13}  {contenders}", d.ubd_m),
            Err(e) => println!("{nc:>2}  {expected:>8}  {:>13}  {contenders} ({e})", "refused"),
        }
    }
    println!("\nexpected: derived ubd_m equals (Nc-1)*{l_bus} for every Nc.");
}
