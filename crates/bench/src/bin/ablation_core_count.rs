//! Ablation: Eq. 1 scaling — `ubd = (Nc - 1) · l_bus` recovered blind
//! across core counts.
//!
//! A thin wrapper over the `Campaign` runner: one `Derive` scenario per
//! core count, batched into a single parallel plan.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin ablation_core_count
//! ```

use rrb::campaign::Campaign;
use rrb::methodology::{MethodologyConfig, UbdScenario};
use rrb_kernels::AccessKind;
use rrb_sim::MachineConfig;

const L_BUS: u64 = 3;

fn main() {
    println!("l_bus = {L_BUS}; sweeping core count\n");
    let mut builder = Campaign::builder().jobs(rrb_bench::default_jobs());
    for nc in 2..=4usize {
        let cfg = MachineConfig::toy(nc, L_BUS);
        let mut mcfg = MethodologyConfig::fast();
        mcfg.max_k = (cfg.ubd() as usize) * 3;
        // One load contender cannot saturate a 2-core bus; use store
        // contenders there (they inject back to back, §5.3).
        if nc == 2 {
            mcfg.contender_access = AccessKind::Store;
        }
        builder = builder.scenario(UbdScenario::new(cfg, mcfg).named(format!("Nc={nc}")));
    }
    let result = builder.build().run();
    println!("Nc  true ubd  derived ubd_m  contenders");
    for (nc, report) in (2..=4usize).zip(&result.reports) {
        let expected = MachineConfig::toy(nc, L_BUS).ubd();
        let contenders = if nc == 2 { "store rsk" } else { "load rsk" };
        match report.metric_u64("ubd_m") {
            Some(ubd_m) => println!("{nc:>2}  {expected:>8}  {ubd_m:>13}  {contenders}"),
            None => println!(
                "{nc:>2}  {expected:>8}  {:>13}  {contenders} ({})",
                "refused", report.summary
            ),
        }
    }
    println!("\nexpected: derived ubd_m equals (Nc-1)*{L_BUS} for every Nc.");
}
