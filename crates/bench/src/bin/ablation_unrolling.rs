//! Ablation: the loop-unrolling guidance of §5.2. Sweeps the unroll
//! factor of a branch-terminated rsk and reports (a) the loop-control
//! execution-time overhead and (b) the fraction of boundary loads whose
//! γ deviates from the interior mode.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin ablation_unrolling
//! ```

use rrb_analysis::Histogram;
use rrb_kernels::{rsk, AccessKind, RskBuilder};
use rrb_sim::{CoreId, Machine, MachineConfig};

fn main() {
    let cfg = MachineConfig::ngmp_ref();
    println!("branch-terminated load rsk vs 3 rsk, NGMP ref (interior gamma = 26)\n");
    println!("unroll  et overhead vs ideal  boundary-gamma fraction");
    for unroll in [1usize, 2, 4, 8, 16] {
        let iterations = (1600 / unroll) as u64; // constant dynamic loads
        let ideal = execution_time(&cfg, unroll, false, iterations);
        let with_branch = execution_time(&cfg, unroll, true, iterations);
        let overhead = (with_branch as f64 - ideal as f64) / ideal as f64;

        let h = gamma_hist(&cfg, unroll, iterations);
        let mode = h.mode().expect("requests");
        let off_mode = 1.0 - h.fraction(mode);
        println!("{unroll:>6}  {:>19.2}%  {:>22.3}", overhead * 100.0, off_mode);
    }
    println!(
        "\nexpected: overhead and boundary fraction shrink ~1/unroll; at unroll 16\n\
         the paper's <2% loop-control overhead holds."
    );
}

fn execution_time(cfg: &MachineConfig, unroll: usize, branch: bool, iterations: u64) -> u64 {
    let p = RskBuilder::new(AccessKind::Load)
        .unroll(unroll)
        .with_branch(branch)
        .iterations(iterations)
        .build(cfg, CoreId::new(0));
    let mut m = Machine::new(cfg.clone()).expect("config");
    m.load_program(CoreId::new(0), p);
    m.run().expect("run").core(CoreId::new(0)).execution_time().expect("done")
}

fn gamma_hist(cfg: &MachineConfig, unroll: usize, iterations: u64) -> Histogram {
    let p = RskBuilder::new(AccessKind::Load)
        .unroll(unroll)
        .with_branch(true)
        .iterations(iterations)
        .build(cfg, CoreId::new(0));
    let mut m = Machine::new(cfg.clone()).expect("config");
    m.load_program(CoreId::new(0), p);
    for i in 1..cfg.num_cores {
        m.load_program(CoreId::new(i), rsk(AccessKind::Load, cfg, CoreId::new(i)));
    }
    m.run().expect("run");
    Histogram::from_bins(m.pmc().core(CoreId::new(0)).gamma_histogram.iter().map(|(&g, &n)| (g, n)))
}
