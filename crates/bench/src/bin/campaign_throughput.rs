//! Campaign-runner throughput benchmark on a 4-way derivation grid,
//! written to `BENCH_campaign.json` so future PRs have a perf
//! trajectory to beat.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin campaign_throughput
//! ```
//!
//! The grid is fixed (4 `Derive` cells on the toy bus, mixed contender
//! accesses and iteration counts), so the run count and the simulated
//! work are stable across machines; wall-clock is of course
//! hardware-dependent, which is why the artifact also records the
//! host's available parallelism.
//!
//! The gated metric is `runs_per_second_serial` — the cold-path
//! throughput of one thread driving one warm [`MachineArena`] through
//! the whole plan. The parallel pass exists for the byte-identity
//! check and an informational speedup number: jobs are resolved via
//! [`clamped_jobs`], so on a 1-CPU container the parallel timing is
//! skipped entirely instead of reporting a meaningless speedup.
//!
//! [`MachineArena`]: rrb::executor::MachineArena
//! [`clamped_jobs`]: rrb::campaign::clamped_jobs

use rrb::campaign::{clamped_jobs, Campaign, CampaignGrid, GridScenario};
use rrb::json::Json;
use rrb_kernels::AccessKind;
use rrb_sim::MachineConfig;
use std::time::Instant;

/// The benchmark grid: 4 cells, shared isolated baselines across the
/// contender-access dimension.
fn grid() -> CampaignGrid {
    CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2))
        .contender_accesses(vec![AccessKind::Load, AccessKind::Store])
        .iterations(vec![150, 200])
        .max_k(18)
}

fn timed_run(jobs: usize, arena: bool) -> (f64, rrb::campaign::CampaignResult) {
    let campaign = Campaign::builder().grid(&grid()).jobs(jobs).arena(arena).build();
    let start = Instant::now();
    let result = campaign.run();
    (start.elapsed().as_secs_f64(), result)
}

fn main() {
    // Resolve the parallel width against the actual host: on a 1-CPU
    // container this clamps to 1 and the parallel timing is skipped.
    let (parallel_jobs, clamp_note) = clamped_jobs(None);
    if let Some(note) = &clamp_note {
        println!("note: {note}");
    }

    // Warm-up (page in code and allocator state), then timed runs.
    let _ = timed_run(1, true);
    let (serial_s, serial) = timed_run(1, true);
    let (arena_off_s, arena_off) = timed_run(1, false);
    let parallel = (parallel_jobs > 1).then(|| timed_run(parallel_jobs, true));

    let arena_identical = serial.to_json() == arena_off.to_json();
    let byte_identical =
        arena_identical && parallel.as_ref().is_none_or(|(_, p)| p.to_json() == serial.to_json());
    let total_runs = serial.stats.planned_runs;
    let executed_runs = serial.stats.executed_runs;
    let runs_per_second_serial = executed_runs as f64 / serial_s;
    let all_derived = serial.reports.iter().all(|r| r.metric_u64("ubd_m") == Some(6));

    println!(
        "campaign throughput: {} grid cells, {total_runs} planned runs, {executed_runs} executed",
        grid().cell_count()
    );
    println!(
        "  serial    (jobs=1, arena on)   : {serial_s:.3} s ({runs_per_second_serial:.1} runs/s)"
    );
    println!(
        "  arena off (jobs=1)             : {arena_off_s:.3} s ({:.1} runs/s)",
        executed_runs as f64 / arena_off_s
    );
    if let Some((parallel_s, _)) = &parallel {
        println!(
            "  parallel  (jobs={parallel_jobs})             : {parallel_s:.3} s ({:.1} runs/s, {:.2}x)",
            executed_runs as f64 / parallel_s,
            serial_s / parallel_s
        );
    } else {
        println!("  parallel                       : skipped (1 CPU available)");
    }
    println!("  arena on == arena off          : {arena_identical}");
    println!("  byte-identical output          : {byte_identical}");
    println!("  all cells derived ubd_m = 6    : {all_derived}");

    let mut fields = vec![
        ("bench", Json::str("campaign_throughput")),
        ("grid_cells", Json::U64(grid().cell_count() as u64)),
        ("planned_runs", Json::U64(total_runs as u64)),
        ("executed_runs", Json::U64(executed_runs as u64)),
        ("cache_hits", Json::U64(serial.stats.cache_hits as u64)),
        ("serial_seconds", Json::F64(serial_s)),
        ("arena_off_seconds", Json::F64(arena_off_s)),
        ("parallel_jobs", Json::U64(parallel_jobs as u64)),
        ("available_parallelism", Json::U64(rrb_bench::default_jobs() as u64)),
        ("runs_per_second_serial", Json::F64(runs_per_second_serial)),
        ("arena_identical_output", Json::Bool(arena_identical)),
        ("byte_identical_output", Json::Bool(byte_identical)),
        ("all_cells_correct", Json::Bool(all_derived)),
    ];
    if let Some((parallel_s, _)) = &parallel {
        fields.push(("parallel_seconds", Json::F64(*parallel_s)));
        fields.push(("runs_per_second_parallel", Json::F64(executed_runs as f64 / parallel_s)));
        fields.push(("speedup", Json::F64(serial_s / parallel_s)));
    }
    let artifact = Json::obj(fields);
    let path = "BENCH_campaign.json";
    match std::fs::write(path, artifact.render_pretty()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    assert!(arena_identical, "arena reuse must not change campaign output");
    assert!(byte_identical, "parallel output must be byte-identical to serial");
    assert!(all_derived, "every cell must recover ubd = 6");
}
