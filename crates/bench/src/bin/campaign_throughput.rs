//! Campaign-runner throughput benchmark: serial vs parallel wall-clock
//! on a 4-way derivation grid, written to `BENCH_campaign.json` so
//! future PRs have a perf trajectory to beat.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin campaign_throughput
//! ```
//!
//! The grid is fixed (4 `Derive` cells on the toy bus, mixed contender
//! accesses and iteration counts), so the run count and the simulated
//! work are stable across machines; wall-clock and speedup are of
//! course hardware-dependent, which is why the artifact also records
//! the host's available parallelism.

use rrb::campaign::{Campaign, CampaignGrid, GridScenario};
use rrb::json::Json;
use rrb_kernels::AccessKind;
use rrb_sim::MachineConfig;
use std::time::Instant;

/// The benchmark grid: 4 cells, shared isolated baselines across the
/// contender-access dimension.
fn grid() -> CampaignGrid {
    CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2))
        .contender_accesses(vec![AccessKind::Load, AccessKind::Store])
        .iterations(vec![150, 200])
        .max_k(18)
}

fn timed_run(jobs: usize) -> (f64, rrb::campaign::CampaignResult) {
    let campaign = Campaign::builder().grid(&grid()).jobs(jobs).build();
    let start = Instant::now();
    let result = campaign.run();
    (start.elapsed().as_secs_f64(), result)
}

fn main() {
    let parallel_jobs = rrb_bench::default_jobs().max(2);

    // Warm-up (page in code and allocator state), then timed runs.
    let _ = timed_run(1);
    let (serial_s, serial) = timed_run(1);
    let (parallel_s, parallel) = timed_run(parallel_jobs);

    let byte_identical = serial.to_json() == parallel.to_json();
    let total_runs = serial.stats.planned_runs;
    let executed_runs = serial.stats.executed_runs;
    let speedup = serial_s / parallel_s;
    let all_derived = serial.reports.iter().all(|r| r.metric_u64("ubd_m") == Some(6));

    println!(
        "campaign throughput: {} grid cells, {total_runs} planned runs, {executed_runs} executed",
        grid().cell_count()
    );
    println!(
        "  serial   (jobs=1)              : {serial_s:.3} s ({:.1} runs/s)",
        executed_runs as f64 / serial_s
    );
    println!(
        "  parallel (jobs={parallel_jobs})              : {parallel_s:.3} s ({:.1} runs/s)",
        executed_runs as f64 / parallel_s
    );
    println!("  speedup                        : {speedup:.2}x");
    println!("  byte-identical output          : {byte_identical}");
    println!("  all cells derived ubd_m = 6    : {all_derived}");

    let artifact = Json::obj(vec![
        ("bench", Json::str("campaign_throughput")),
        ("grid_cells", Json::U64(grid().cell_count() as u64)),
        ("planned_runs", Json::U64(total_runs as u64)),
        ("executed_runs", Json::U64(executed_runs as u64)),
        ("cache_hits", Json::U64(serial.stats.cache_hits as u64)),
        ("serial_seconds", Json::F64(serial_s)),
        ("parallel_seconds", Json::F64(parallel_s)),
        ("parallel_jobs", Json::U64(parallel_jobs as u64)),
        ("available_parallelism", Json::U64(rrb_bench::default_jobs() as u64)),
        ("runs_per_second_serial", Json::F64(executed_runs as f64 / serial_s)),
        ("runs_per_second_parallel", Json::F64(executed_runs as f64 / parallel_s)),
        ("speedup", Json::F64(speedup)),
        ("byte_identical_output", Json::Bool(byte_identical)),
        ("all_cells_correct", Json::Bool(all_derived)),
    ]);
    let path = "BENCH_campaign.json";
    match std::fs::write(path, artifact.render_pretty()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    assert!(byte_identical, "parallel output must be byte-identical to serial");
    assert!(all_derived, "every cell must recover ubd = 6");
}
