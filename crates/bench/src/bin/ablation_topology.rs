//! Ablation: single-bus vs two-level contention topology — how tight is
//! the derived bound against the Eq. 1 truth once the memory-controller
//! queue is modelled, and under which bus arbiters?
//!
//! For each bus arbiter, the rsk-nop methodology runs on the same toy
//! machine twice: once with the classic single-bus topology, once with
//! the FIFO controller queue chained behind the bus. The saw-tooth
//! recovers the bus share exactly (rsk traffic hits in L2 at steady
//! state); the controller share is read off that resource's own γ
//! counters, so the two-level bound is `ubd_bus + ubd_mc` — and the gap
//! to the topology's Eq. 1 total measures how much of the queue's
//! worst case the workload actually exposed.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin ablation_topology
//! ```

use rrb::campaign::{Campaign, CampaignGrid, GridScenario};
use rrb::json::Json;
use rrb_sim::{ArbiterKind, MachineConfig, McQueueConfig};

const MC_OCCUPANCY: u64 = 2;

fn base(two_level: bool) -> MachineConfig {
    let mut cfg = MachineConfig::toy(4, 2);
    if two_level {
        cfg.topology.mc =
            Some(McQueueConfig { service_occupancy: MC_OCCUPANCY, arbiter: ArbiterKind::Fifo });
    }
    cfg
}

fn main() {
    let arbiters = vec![ArbiterKind::RoundRobin, ArbiterKind::FixedPriority, ArbiterKind::Fifo];
    println!(
        "topology ablation on the toy machine (Nc = 4, l_bus = 2, l_mc = {MC_OCCUPANCY}):\n\
         single-bus truth ubd = {}, two-level truth ubd = {}\n",
        base(false).ubd(),
        base(true).ubd()
    );

    let mut rows = Vec::new();
    for two_level in [false, true] {
        let grid = CampaignGrid::new(GridScenario::Derive, base(two_level))
            .arbiters(arbiters.clone())
            .iterations(vec![80])
            .max_k(16);
        let result = Campaign::builder().grid(&grid).jobs(rrb_bench::default_jobs()).build().run();
        let truth = base(two_level).ubd();
        for report in &result.reports {
            let derived = report.metric_u64("ubd_total");
            let tightness = derived.map(|d| d as f64 / truth as f64);
            println!(
                "{:<36} ubd_total = {:<12} tightness = {}",
                report.scenario,
                derived.map_or_else(|| String::from("refused"), |d| d.to_string()),
                tightness.map_or_else(|| String::from("-"), |t| format!("{t:.2}")),
            );
            rows.push(Json::obj(vec![
                ("scenario", Json::str(report.scenario.clone())),
                ("two_level", Json::Bool(two_level)),
                ("truth_ubd", Json::U64(truth)),
                ("ubd_bus", Json::option(report.metric_u64("ubd_bus"), Json::U64)),
                ("ubd_mc", Json::option(report.metric_u64("ubd_mc"), Json::U64)),
                ("ubd_total", Json::option(derived, Json::U64)),
                ("tightness", Json::option(tightness, Json::F64)),
                ("refused", Json::Bool(report.error.is_some())),
            ]));
        }
    }
    println!(
        "\nexpected: only round-robin derives a bound (the saw-tooth is RR-specific);\n\
         on bus+mc its per-resource contributions sum to ubd_total, and the gap to\n\
         the truth is the queue contention the L2-hitting sweep cannot provoke."
    );

    let artifact = Json::obj(vec![
        ("bench", Json::str("ablation_topology")),
        ("mc_service_occupancy", Json::U64(MC_OCCUPANCY)),
        ("rows", Json::Arr(rows)),
    ]);
    let path = "BENCH_topology.json";
    match std::fs::write(path, artifact.render_pretty()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
