//! Ablation: single-bus vs two-level contention topology — how tight is
//! the derived bound against the Eq. 1 truth once the memory-controller
//! queue is modelled, and under which bus arbiters?
//!
//! For each bus arbiter, the rsk-nop methodology runs on the same toy
//! machine twice: once with the classic single-bus topology, once with
//! the FIFO controller queue chained behind the bus. The saw-tooth
//! recovers the bus share exactly (rsk traffic hits in L2 at steady
//! state); the controller share is read off that resource's own γ
//! counters — which is why a measured `ubd_mc` of 0 does **not** mean
//! the queue is contention-free, only that the L2-hitting sweep never
//! exposed it. Every row therefore also records the per-resource
//! analytic truth (`truth_bus`, `truth_mc`) and the static analyzer's
//! per-resource bounds, which stay finite for every arbiter — including
//! the `fp`/`fifo` cells the measurement methodology refuses.
//!
//! The cells the methodology refuses are no longer holes: the bounded
//! model checker derives each cell's *exact* worst-case delay and an
//! adversarial witness, and this bench replays that witness on the full
//! simulator — so fp and fifo rows carry a measured delay too
//! (`witness_measured_*`), and no row is left with `refused: true`.
//!
//! The two-level cells also exercise the interference-flow composition:
//! the bus grant rate caps the controller queue's arrival rate, so the
//! flow-composed bound drops the mc term entirely (service fits inside a
//! bus rotation) where the saturating sum pays it in full. Each `bus+mc`
//! cell's `two_level_tightness` — witness-measured composed γ over the
//! flow bound — lands at 1.0 where the old measured-over-sum ratio sat
//! near 0.5.
//!
//! Artifacts: `BENCH_topology.json` (per-row measurement vs truth vs
//! exact), `BENCH_static.json` (static-bound coverage: zero refused
//! cells, all sound vs truth), and `BENCH_flow.json` (flow composition
//! vs saturating sum on the `bus+mc` cells), all gated by `bench_gate`.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin ablation_topology
//! ```

use rrb::analyze::{analyze_grid, CellStaticBound};
use rrb::campaign::{Campaign, CampaignGrid, GridScenario};
use rrb::json::Json;
use rrb::statics::VerifyOptions;
use rrb::verify::{replay_cell_witnesses, verify_grid};
use rrb_sim::{ArbiterKind, MachineConfig, McQueueConfig, ResourceKind};

const MC_OCCUPANCY: u64 = 2;

fn base(two_level: bool) -> MachineConfig {
    let mut cfg = MachineConfig::toy(4, 2);
    if two_level {
        cfg.topology.mc =
            Some(McQueueConfig { service_occupancy: MC_OCCUPANCY, arbiter: ArbiterKind::Fifo });
    }
    cfg
}

/// Per-resource truth of a cell's machine, as (bus, mc).
fn truth_terms(cfg: &MachineConfig) -> (u64, u64) {
    let mut bus = 0;
    let mut mc = 0;
    for term in cfg.ubd_breakdown() {
        match term.resource {
            ResourceKind::Bus => bus = term.ubd,
            ResourceKind::MemoryController => mc = term.ubd,
        }
    }
    (bus, mc)
}

fn main() {
    let arbiters = vec![ArbiterKind::RoundRobin, ArbiterKind::FixedPriority, ArbiterKind::Fifo];
    println!(
        "topology ablation on the toy machine (Nc = 4, l_bus = 2, l_mc = {MC_OCCUPANCY}):\n\
         single-bus truth ubd = {}, two-level truth ubd = {}\n",
        base(false).ubd(),
        base(true).ubd()
    );

    let mut rows = Vec::new();
    let mut flow_rows = Vec::new();
    let mut static_rows: Vec<CellStaticBound> = Vec::new();
    let mut derived = 0usize;
    let mut refused_measurement = 0usize;
    for two_level in [false, true] {
        let grid = CampaignGrid::new(GridScenario::Derive, base(two_level))
            .arbiters(arbiters.clone())
            .iterations(vec![80])
            .max_k(16);
        let statics = analyze_grid(&grid);
        let verified = verify_grid(&grid, &VerifyOptions::default());
        let result = Campaign::builder().grid(&grid).jobs(rrb_bench::default_jobs()).build().run();
        let (truth_bus, truth_mc) = truth_terms(&base(two_level));
        let truth = truth_bus + truth_mc;
        for report in &result.reports {
            let cell = statics
                .iter()
                .find(|c| c.cell == report.scenario)
                .unwrap_or_else(|| panic!("no static row for `{}`", report.scenario));
            let exact = verified
                .iter()
                .find(|v| v.statics.cell == report.scenario)
                .unwrap_or_else(|| panic!("no verified row for `{}`", report.scenario));
            let measured = report.metric_u64("ubd_total");
            let tightness = measured.map(|d| d as f64 / truth as f64);
            let static_tightness = cell.static_total().map(|s| s as f64 / truth as f64);

            // Replay the checker's adversarial witnesses on the full
            // simulator: the measured delay these runs produce covers the
            // fp/fifo cells the saw-tooth methodology refuses.
            let replays = replay_cell_witnesses(exact, 80);
            let replay_for = |kind: ResourceKind| replays.iter().find(|r| r.resource == kind);
            let witness_bus = replay_for(ResourceKind::Bus).and_then(|r| r.measured);
            let witness_mc = replay_for(ResourceKind::MemoryController).and_then(|r| r.measured);
            // Bus-only ratio: mc witnesses arrive bus-serialised on the
            // real machine, so their measured γ_mc sits near the queue's
            // structural floor and would understate the certificate.
            let witness_tightness = match (witness_bus, exact.exact_bus()) {
                (Some(m), Some(e)) if e > 0 => Some(m as f64 / e as f64),
                (Some(_), Some(_)) => Some(1.0),
                _ => None,
            };
            let refused = report.error.is_some() && witness_bus.is_none();
            if measured.is_some() || witness_bus.is_some() {
                derived += 1;
            }
            if refused {
                refused_measurement += 1;
            }
            println!(
                "{:<36} measured = {:<8} witness = {:<8} exact = {:<8} static = {:<8} truth = {truth}",
                report.scenario,
                measured.map_or_else(|| String::from("refused"), |d| d.to_string()),
                witness_bus.map_or_else(|| String::from("none"), |d| d.to_string()),
                exact.exact_total().map_or_else(|| String::from("open"), |e| e.to_string()),
                cell.static_total().map_or_else(|| String::from("unbounded"), |s| s.to_string()),
            );
            rows.push(Json::obj(vec![
                ("scenario", Json::str(report.scenario.clone())),
                ("two_level", Json::Bool(two_level)),
                ("truth_bus", Json::U64(truth_bus)),
                ("truth_mc", Json::U64(truth_mc)),
                ("truth_ubd", Json::U64(truth)),
                ("ubd_bus", Json::option(report.metric_u64("ubd_bus"), Json::U64)),
                ("ubd_mc", Json::option(report.metric_u64("ubd_mc"), Json::U64)),
                ("ubd_total", Json::option(measured, Json::U64)),
                ("static_bus", Json::option(cell.static_bus(), Json::U64)),
                ("static_mc", Json::option(cell.static_mc(), Json::U64)),
                ("static_total", Json::option(cell.static_total(), Json::U64)),
                ("static_sound", Json::Bool(cell.violation().is_none())),
                ("exact_bus", Json::option(exact.exact_bus(), Json::U64)),
                ("exact_mc", Json::option(exact.exact_mc(), Json::U64)),
                ("exact_total", Json::option(exact.exact_total(), Json::U64)),
                ("exact_tightness", Json::option(exact.tightness(), Json::F64)),
                ("witness_measured_bus", Json::option(witness_bus, Json::U64)),
                ("witness_measured_mc", Json::option(witness_mc, Json::U64)),
                ("witness_tightness", Json::option(witness_tightness, Json::F64)),
                ("tightness", Json::option(tightness, Json::F64)),
                ("static_tightness", Json::option(static_tightness, Json::F64)),
                ("refused", Json::Bool(refused)),
            ]));

            if two_level {
                // Flow composition on the bus+mc cells: the witness
                // replay is the measured composed γ (bus γ plus mc γ of
                // the same adversarial schedule), and the flow bound
                // must dominate it while undercutting the saturating
                // sum. The exact mc term is deliberately not compared —
                // it assumes unconstrained arrivals, exactly the
                // pessimism the flow composition removes.
                let witness_composed = witness_bus.unwrap_or(0) + witness_mc.unwrap_or(0);
                let flow_total = cell.flow_total();
                let two_level_tightness =
                    flow_total.map(
                        |f| {
                            if f == 0 {
                                1.0
                            } else {
                                witness_composed as f64 / f as f64
                            }
                        },
                    );
                let sound_vs_measured = flow_total.is_some_and(|f| f >= witness_composed);
                let sound_vs_exact_bus = match (cell.flow_bus(), exact.exact_bus()) {
                    (Some(f), Some(e)) => f >= e,
                    _ => false,
                };
                let sound_vs_sum = match (flow_total, cell.static_total()) {
                    (Some(f), Some(s)) => f <= s,
                    _ => false,
                };
                flow_rows.push(Json::obj(vec![
                    ("scenario", Json::str(report.scenario.clone())),
                    ("sum_total", Json::option(cell.static_total(), Json::U64)),
                    ("flow_bus", Json::option(cell.flow_bus(), Json::U64)),
                    ("flow_mc", Json::option(cell.flow_mc(), Json::U64)),
                    ("flow_total", Json::option(flow_total, Json::U64)),
                    ("flow_slack", Json::option(cell.flow_slack(), Json::U64)),
                    ("exact_bus", Json::option(exact.exact_bus(), Json::U64)),
                    ("witness_composed", Json::U64(witness_composed)),
                    ("two_level_tightness", Json::option(two_level_tightness, Json::F64)),
                    ("sound_vs_measured", Json::Bool(sound_vs_measured)),
                    ("sound_vs_exact_bus", Json::Bool(sound_vs_exact_bus)),
                    ("sound_vs_sum", Json::Bool(sound_vs_sum)),
                ]));
            }
        }
        static_rows.extend(statics);
    }
    println!(
        "\nexpected: only round-robin derives a *saw-tooth* bound (the methodology\n\
         is RR-specific), but no cell is refused outright any more: the model\n\
         checker's witness replay measures every fp and fifo cell too, and the\n\
         measured bus delay meets the exact bound. The measured mc share stays\n\
         near zero either way — witness arrivals reach the queue bus-serialised,\n\
         which is what truth_mc/static_mc record. The static analyzer bounds\n\
         every cell, fp and fifo included."
    );

    let refused_static = static_rows.iter().filter(|c| !c.bound.is_finite()).count();
    let unsound_static = static_rows.iter().filter(|c| c.violation().is_some()).count();

    let artifact = Json::obj(vec![
        ("bench", Json::str("ablation_topology")),
        ("mc_service_occupancy", Json::U64(MC_OCCUPANCY)),
        ("cells", Json::U64(rows.len() as u64)),
        ("derived", Json::U64(derived as u64)),
        ("refused_measurement", Json::U64(refused_measurement as u64)),
        ("rows", Json::Arr(rows)),
    ]);
    let path = "BENCH_topology.json";
    match std::fs::write(path, artifact.render_pretty()) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }

    let static_artifact = Json::obj(vec![
        ("bench", Json::str("ablation_topology_static")),
        ("cells", Json::U64(static_rows.len() as u64)),
        ("refused_static", Json::U64(refused_static as u64)),
        ("unsound_static", Json::U64(unsound_static as u64)),
        ("all_finite", Json::Bool(refused_static == 0)),
        ("all_sound", Json::Bool(unsound_static == 0)),
        ("rows", Json::Arr(static_rows.iter().map(CellStaticBound::to_json).collect())),
    ]);
    let path = "BENCH_static.json";
    match std::fs::write(path, static_artifact.render_pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }

    let all_sound = flow_rows.iter().all(|r| {
        ["sound_vs_measured", "sound_vs_exact_bus", "sound_vs_sum"]
            .iter()
            .all(|k| matches!(r.get(k), Some(Json::Bool(true))))
    });
    let flow_artifact = Json::obj(vec![
        ("bench", Json::str("ablation_topology_flow")),
        ("cells", Json::U64(flow_rows.len() as u64)),
        ("all_sound", Json::Bool(all_sound)),
        ("rows", Json::Arr(flow_rows)),
    ]);
    let path = "BENCH_flow.json";
    match std::fs::write(path, flow_artifact.render_pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
