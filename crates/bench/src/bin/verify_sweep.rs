//! Bounded model-checking sweep: exact worst-case delays and tightness
//! certificates for every arbiter the workspace implements, on both the
//! single-bus and the two-level topology.
//!
//! For each cell the checker enumerates request-arrival alignments
//! (with per-arbiter symmetry pruning) against the real arbiter
//! implementations and reports the *exact* worst-case per-request
//! delay, the tightness certificate `exact / static`, and the
//! exploration statistics. The gate pins the invariants that make the
//! static analyzer trustworthy: every cell is explored, every exact
//! bound is finite, and no exact bound ever exceeds its static bound.
//!
//! Artifact: `BENCH_verify.json`, gated by `bench_gate` via
//! `baselines/verify.json`.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin verify_sweep
//! ```

use rrb::campaign::{CampaignGrid, GridScenario};
use rrb::json::Json;
use rrb::statics::VerifyOptions;
use rrb::verify::{render_verified, verify_grid};
use rrb_sim::{ArbiterKind, MachineConfig, McQueueConfig};

const MC_OCCUPANCY: u64 = 2;

fn base(two_level: bool) -> MachineConfig {
    let mut cfg = MachineConfig::toy(4, 2);
    if two_level {
        cfg.topology.mc =
            Some(McQueueConfig { service_occupancy: MC_OCCUPANCY, arbiter: ArbiterKind::Fifo });
    }
    cfg
}

fn main() {
    let arbiters = vec![
        ArbiterKind::RoundRobin,
        ArbiterKind::FixedPriority,
        ArbiterKind::Fifo,
        ArbiterKind::Tdma { slot_cycles: 6 },
        ArbiterKind::GroupedRoundRobin { group_size: 2 },
    ];
    println!(
        "bounded model-checking sweep on the toy machine (Nc = 4, l_bus = 2, l_mc = {MC_OCCUPANCY}):\n"
    );

    let mut rows = Vec::new();
    let mut violations = 0usize;
    let mut unbounded = 0usize;
    let mut unexplored = 0usize;
    let mut explored = 0u64;
    let mut pruned = 0u64;
    for two_level in [false, true] {
        let grid = CampaignGrid::new(GridScenario::Derive, base(two_level))
            .arbiters(arbiters.clone())
            .iterations(vec![80])
            .max_k(16);
        let verified = verify_grid(&grid, &VerifyOptions::default());
        print!("{}", render_verified(&verified));
        println!();
        for cell in verified {
            violations += usize::from(!cell.violations().is_empty());
            unbounded += usize::from(cell.exact_total().is_none());
            unexplored += usize::from(cell.explored() == 0);
            explored += cell.explored();
            pruned += cell.pruned();
            rows.push(cell.to_json());
        }
    }

    let artifact = Json::obj(vec![
        ("bench", Json::str("verify_sweep")),
        ("mc_service_occupancy", Json::U64(MC_OCCUPANCY)),
        ("cells", Json::U64(rows.len() as u64)),
        ("unbounded", Json::U64(unbounded as u64)),
        ("unexplored", Json::U64(unexplored as u64)),
        ("soundness_violations", Json::U64(violations as u64)),
        ("all_explored", Json::Bool(unexplored == 0)),
        ("all_sound", Json::Bool(violations == 0)),
        ("alignments_explored", Json::U64(explored)),
        ("alignments_pruned", Json::U64(pruned)),
        ("rows", Json::Arr(rows)),
    ]);
    let path = "BENCH_verify.json";
    match std::fs::write(path, artifact.render_pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
