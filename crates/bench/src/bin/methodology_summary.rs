//! The headline table of the reproduction (§4.2 / §5.3): for each
//! architecture, the true `ubd`, what the naive estimators measure, and
//! what the rsk-nop methodology derives.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin methodology_summary
//! ```

use rrb::methodology::{derive_ubd, MethodologyConfig};
use rrb::naive::naive_rsk_vs_rsk;
use rrb::report;
use rrb_kernels::AccessKind;
use rrb_sim::MachineConfig;

fn main() {
    println!("architecture | true ubd | naive det/nr | naive max-gamma | rsk-nop methodology");
    println!("-------------+----------+--------------+-----------------+--------------------");
    let mut rows = Vec::new();
    for (name, cfg) in [("ref", MachineConfig::ngmp_ref()), ("var", MachineConfig::ngmp_var())] {
        let naive = naive_rsk_vs_rsk(&cfg, AccessKind::Load, 500).expect("naive estimate");
        let mut mcfg = MethodologyConfig::paper();
        mcfg.iterations = 400;
        let derived = derive_ubd(&cfg, &mcfg).expect("derivation");
        println!(
            "{name:>12} | {:>8} | {:>12} | {:>15} | {:>19}",
            cfg.ubd(),
            naive.ubd_m_det_over_nr,
            naive.ubd_m_max_gamma,
            derived.ubd_m
        );
        rows.push((name, cfg, naive, derived));
    }
    println!();
    for (name, cfg, naive, derived) in rows {
        println!("=== {name} ===");
        println!("{}", report::render_comparison(&naive, &derived, cfg.bus_ubd()));
    }
}
