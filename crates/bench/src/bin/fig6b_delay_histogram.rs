//! Regenerates the paper's **Figure 6(b)**: histogram of the contention
//! delay suffered by every request of an rsk running against 3 rsk, on
//! the reference and variant architectures.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin fig6b_delay_histogram
//! ```
//!
//! Expected numbers (paper §5.2): the synchrony effect concentrates ~98 %
//! of requests on a single delay — 26 on `ref`, 23 on `var` — while the
//! true `ubd` is 27, so the naive `ubd_m` is unsound on both setups and
//! its error *varies across architectures*.

use rrb::report::render_histogram;
use rrb_analysis::Histogram;
use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, Machine, MachineConfig};

fn main() {
    for (name, cfg, expected_mode) in
        [("ref", MachineConfig::ngmp_ref(), 26u64), ("var", MachineConfig::ngmp_var(), 23u64)]
    {
        let mut m = Machine::new(cfg.clone()).expect("machine");
        m.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 3000));
        for i in 1..cfg.num_cores {
            m.load_program(CoreId::new(i), rsk(AccessKind::Load, &cfg, CoreId::new(i)));
        }
        m.run().expect("run");
        let h = Histogram::from_bins(
            m.pmc().core(CoreId::new(0)).gamma_histogram.iter().map(|(&g, &n)| (g, n)),
        );
        println!(
            "{}",
            render_histogram(&format!("architecture {name} (true ubd = {}):", cfg.ubd()), &h)
        );
        let mode = h.mode().expect("requests observed");
        println!("  mode gamma (ubd_m a naive analysis reads) : {mode} (paper: {expected_mode})");
        println!(
            "  fraction at mode                           : {:.3} (paper: ~0.98)",
            h.fraction(mode)
        );
        println!(
            "  verdict: ubd_m {} < ubd {} -> naive estimate unsound on {name}\n",
            h.max().expect("non-empty").max(mode),
            cfg.ubd()
        );
    }
}
