//! Ablation: does the saw-tooth methodology survive under non-RR
//! arbiters? (It must not — the synchrony effect is round-robin
//! specific, and the methodology's confidence checks must refuse.)
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin ablation_arbiters
//! ```

use rrb::methodology::{derive_ubd, MethodologyConfig};
use rrb_sim::{ArbiterKind, MachineConfig};

fn main() {
    let arbiters = [
        ("round-robin", ArbiterKind::RoundRobin),
        ("fixed-priority", ArbiterKind::FixedPriority),
        ("fifo", ArbiterKind::Fifo),
        ("tdma(slot=4)", ArbiterKind::Tdma { slot_cycles: 4 }),
    ];
    println!("toy bus (Nc = 4, l_bus = 2, RR-ubd would be 6)\n");
    println!("{:<16} outcome", "arbiter");
    for (name, kind) in arbiters {
        let mut cfg = MachineConfig::toy(4, 2);
        cfg.bus.arbiter = kind;
        let outcome = match derive_ubd(&cfg, &MethodologyConfig::fast()) {
            Ok(d) => format!(
                "derived ubd_m = {} (period {}, min util {:.2})",
                d.ubd_m, d.k_period, d.min_bus_utilization
            ),
            Err(e) => format!("refused: {e}"),
        };
        println!("{name:<16} {outcome}");
    }
    println!(
        "\nexpected: only round-robin yields ubd_m = 6; every other policy is refused\n\
         (no saw-tooth, failed utilisation check, or starvation) — the methodology's\n\
         applicability condition (§4.3: the bus must be RR) is self-checking."
    );
}
