//! Ablation: does the saw-tooth methodology survive under non-RR
//! arbiters? (It must not — the synchrony effect is round-robin
//! specific, and the methodology's confidence checks must refuse.)
//!
//! The experiment itself is **data**: `specs/ablation_arbiters.json`
//! declares the machine, the arbiter axis, and the methodology; this bin
//! only loads and executes it. Edit the JSON to change the ablation — no
//! recompile — or run it directly with
//! `rrb run crates/bench/specs/ablation_arbiters.json`.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin ablation_arbiters
//! ```

use rrb::spec::ExperimentSpec;

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/ablation_arbiters.json");
    let spec = ExperimentSpec::from_file(path).expect("load the checked-in experiment file");
    let text = std::fs::read_to_string(path).expect("re-read for the canonical-form check");
    assert_eq!(spec.to_text(), text, "the spec file must stay in canonical form");
    println!(
        "toy bus (Nc = 4, l_bus = 2, RR-ubd would be 6) — spec `{}`, hash {:016x}\n",
        spec.name,
        spec.spec_hash()
    );
    let result = spec.to_campaign(rrb_bench::default_jobs()).run();
    print!("{}", result.render_text());
    println!(
        "\nexpected: only round-robin yields ubd_m = 6; every other policy is refused\n\
         (no saw-tooth, failed utilisation check, or starvation) — the methodology's\n\
         applicability condition (§4.3: the bus must be RR) is self-checking."
    );
}
