//! Ablation: does the saw-tooth methodology survive under non-RR
//! arbiters? (It must not — the synchrony effect is round-robin
//! specific, and the methodology's confidence checks must refuse.)
//!
//! A ~20-line wrapper over the `Campaign` runner: one grid dimension
//! (the arbiter), executed as a single deduplicated parallel plan.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin ablation_arbiters
//! ```

use rrb::campaign::{Campaign, CampaignGrid, GridScenario};
use rrb_sim::{ArbiterKind, MachineConfig};

fn main() {
    let grid = CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2)).arbiters(vec![
        ArbiterKind::RoundRobin,
        ArbiterKind::FixedPriority,
        ArbiterKind::Fifo,
        ArbiterKind::Tdma { slot_cycles: 4 },
    ]);
    println!("toy bus (Nc = 4, l_bus = 2, RR-ubd would be 6)\n");
    let result = Campaign::builder().grid(&grid).jobs(rrb_bench::default_jobs()).build().run();
    print!("{}", result.render_text());
    println!(
        "\nexpected: only round-robin yields ubd_m = 6; every other policy is refused\n\
         (no saw-tooth, failed utilisation check, or starvation) — the methodology's\n\
         applicability condition (§4.3: the bus must be RR) is self-checking."
    );
}
