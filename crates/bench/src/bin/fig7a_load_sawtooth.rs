//! Regenerates the paper's **Figure 7(a)**: slowdown of
//! `rsk-nop(load, k)` against 3 load rsk, as a function of `k`, on the
//! reference and variant architectures.
//!
//! A thin wrapper over the `Campaign` runner: two `SweepScenario`s (ref
//! and var) batched into one deduplicated parallel plan.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin fig7a_load_sawtooth
//! ```
//!
//! Expected shape (paper §5.3): a saw-tooth whose period is 27 on *both*
//! architectures — `27 = 54 − 27` on ref (peaks at k = 27·i) and
//! `27 = 51 − 24` on var (peaks at k = 24 + 27·i) — demonstrating that
//! the period, unlike the naive estimate, is robust to the platform's
//! injection time.

use rrb::campaign::Campaign;
use rrb::report::render_sawtooth;
use rrb::scenario::{MetricValue, SweepScenario};
use rrb_analysis::sawtooth::{peak_positions, peak_spacing};
use rrb_sim::MachineConfig;

const MAX_K: usize = 80;
const ITERATIONS: u64 = 400;

fn main() {
    let result = Campaign::builder()
        .scenario(SweepScenario::new(MachineConfig::ngmp_ref(), MAX_K, ITERATIONS).named("ref"))
        .scenario(SweepScenario::new(MachineConfig::ngmp_var(), MAX_K, ITERATIONS).named("var"))
        .jobs(rrb_bench::default_jobs())
        .build()
        .run();

    for report in &result.reports {
        let Some(MetricValue::Series(slowdowns)) = report.metric("slowdowns") else {
            println!("architecture {}: {}", report.scenario, report.summary);
            continue;
        };
        println!("architecture {}: d_bus(load, k) for k = 0..={MAX_K}", report.scenario);
        println!("{}", render_sawtooth(slowdowns, 10));
        let peaks = peak_positions(slowdowns, 0.02);
        println!("  peak positions (k) : {peaks:?}");
        if let Some(spacing) = peak_spacing(slowdowns, 0.02) {
            println!("  peak spacing       : {spacing} (Eq. 3 reading)");
        }
        match report.metric_u64("period") {
            Some(period) => println!("  saw-tooth period   : {period} -> ubd = {period}\n"),
            None => println!("  saw-tooth period   : NOT FOUND\n"),
        }
    }
}
