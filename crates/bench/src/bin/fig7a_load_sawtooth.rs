//! Regenerates the paper's **Figure 7(a)**: slowdown of
//! `rsk-nop(load, k)` against 3 load rsk, as a function of `k`, on the
//! reference and variant architectures.
//!
//! ```sh
//! cargo run --release -p rrb-bench --bin fig7a_load_sawtooth
//! ```
//!
//! Expected shape (paper §5.3): a saw-tooth whose period is 27 on *both*
//! architectures — `27 = 54 − 27` on ref (peaks at k = 27·i) and
//! `27 = 51 − 24` on var (peaks at k = 24 + 27·i) — demonstrating that
//! the period, unlike the naive estimate, is robust to the platform's
//! injection time.

use rrb::experiment::measure_slowdown;
use rrb::report::render_sawtooth;
use rrb_analysis::sawtooth::{detect_period, peak_positions, peak_spacing};
use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, MachineConfig};

fn main() {
    let max_k = 80usize;
    let iterations = 400u64;

    for (name, cfg) in [("ref", MachineConfig::ngmp_ref()), ("var", MachineConfig::ngmp_var())] {
        let mut slowdowns = Vec::with_capacity(max_k + 1);
        for k in 0..=max_k {
            let scua = rsk_nop(AccessKind::Load, k, &cfg, CoreId::new(0), iterations);
            let m = measure_slowdown(&cfg, scua, |c| rsk(AccessKind::Load, &cfg, c))
                .expect("measurement");
            slowdowns.push(m.det());
        }
        println!("architecture {name}: d_bus(load, k) for k = 0..={max_k}");
        println!("{}", render_sawtooth(&slowdowns, 10));
        let peaks = peak_positions(&slowdowns, 0.02);
        println!("  peak positions (k) : {peaks:?}");
        if let Some(spacing) = peak_spacing(&slowdowns, 0.02) {
            println!("  peak spacing       : {spacing} (Eq. 3 reading)");
        }
        match detect_period(&slowdowns, 2) {
            Some(est) => println!(
                "  saw-tooth period   : {} ({} match) -> ubd = {}\n",
                est.period, est.method, est.period
            ),
            None => println!("  saw-tooth period   : NOT FOUND\n"),
        }
    }
}
