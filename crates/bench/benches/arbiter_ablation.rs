//! Criterion benchmark comparing arbitration policies under saturation:
//! the simulation cost of each arbiter on an otherwise identical machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrb_kernels::{rsk, AccessKind};
use rrb_sim::{ArbiterKind, CoreId, Machine, MachineConfig};

fn bench_arbiters(c: &mut Criterion) {
    let mut g = c.benchmark_group("arbiter_saturated_20k_cycles");
    for (name, kind) in [
        ("round_robin", ArbiterKind::RoundRobin),
        ("fixed_priority", ArbiterKind::FixedPriority),
        ("fifo", ArbiterKind::Fifo),
        ("tdma", ArbiterKind::Tdma { slot_cycles: 16 }),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            b.iter(|| {
                let mut cfg = MachineConfig::ngmp_ref();
                cfg.bus.arbiter = kind;
                let mut m = Machine::new(cfg.clone()).expect("config");
                for i in 0..cfg.num_cores {
                    m.load_program(CoreId::new(i), rsk(AccessKind::Load, &cfg, CoreId::new(i)));
                }
                m.run_for(20_000)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_arbiters);
criterion_main!(benches);
