//! Benchmark comparing arbitration policies under saturation: the
//! simulation cost of each arbiter on an otherwise identical machine
//! (std-only harness; `harness = false`).

use rrb_bench::bench;
use rrb_kernels::{rsk, AccessKind};
use rrb_sim::{ArbiterKind, CoreId, Machine, MachineConfig};

fn main() {
    println!("arbiter_saturated_20k_cycles");
    for (name, kind) in [
        ("round_robin", ArbiterKind::RoundRobin),
        ("fixed_priority", ArbiterKind::FixedPriority),
        ("fifo", ArbiterKind::Fifo),
        ("tdma", ArbiterKind::Tdma { slot_cycles: 16 }),
    ] {
        bench(&format!("arbiter/{name}"), 2, 10, || {
            let mut cfg = MachineConfig::ngmp_ref();
            cfg.topology.bus.arbiter = kind;
            let mut m = Machine::new(cfg.clone()).expect("config");
            for i in 0..cfg.num_cores {
                m.load_program(CoreId::new(i), rsk(AccessKind::Load, &cfg, CoreId::new(i)));
            }
            std::hint::black_box(m.run_for(20_000));
        });
    }
}
