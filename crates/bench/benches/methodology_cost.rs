//! Benchmark of the full methodology: what a complete blind `ubd`
//! derivation costs, per platform size — serial vs campaign-parallel
//! (std-only harness; `harness = false`).

use rrb::methodology::{derive_ubd, derive_ubd_repeated_jobs, MethodologyConfig};
use rrb_bench::bench;
use rrb_sim::MachineConfig;

fn main() {
    println!("derive_ubd");
    for l_bus in [2u64, 5] {
        let cfg = MachineConfig::toy(4, l_bus);
        let mut mcfg = MethodologyConfig::fast();
        mcfg.max_k = (cfg.ubd() as usize) * 3;
        bench(&format!("derive_ubd/toy_lbus{l_bus}"), 1, 10, || {
            std::hint::black_box(derive_ubd(&cfg, &mcfg).expect("derivation"));
        });
    }

    let cfg = MachineConfig::toy(4, 2);
    let mcfg = MethodologyConfig::fast();
    let jobs = rrb_bench::default_jobs();
    bench("derive_ubd_repeated/3x_serial", 1, 5, || {
        std::hint::black_box(derive_ubd_repeated_jobs(&cfg, &mcfg, 3, 1).expect("runs"));
    });
    bench(&format!("derive_ubd_repeated/3x_jobs{jobs}"), 1, 5, || {
        std::hint::black_box(derive_ubd_repeated_jobs(&cfg, &mcfg, 3, jobs).expect("runs"));
    });

    bench("calibrate_delta_nop", 1, 10, || {
        let cfg = MachineConfig::ngmp_ref();
        std::hint::black_box(rrb::methodology::calibrate_delta_nop(&cfg, 10).expect("calibration"));
    });
}
