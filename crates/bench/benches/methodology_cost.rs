//! Criterion benchmark of the full methodology: what a complete blind
//! `ubd` derivation costs, per platform size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rrb::methodology::{derive_ubd, MethodologyConfig};
use rrb_sim::MachineConfig;

fn bench_derive_ubd(c: &mut Criterion) {
    let mut g = c.benchmark_group("derive_ubd");
    g.sample_size(10);
    for l_bus in [2u64, 5] {
        let cfg = MachineConfig::toy(4, l_bus);
        let mut mcfg = MethodologyConfig::fast();
        mcfg.max_k = (cfg.ubd() as usize) * 3;
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("toy_lbus{l_bus}")),
            &(cfg, mcfg),
            |b, (cfg, mcfg)| {
                b.iter(|| derive_ubd(cfg, mcfg).expect("derivation"));
            },
        );
    }
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    c.bench_function("calibrate_delta_nop", |b| {
        let cfg = MachineConfig::ngmp_ref();
        b.iter(|| rrb::methodology::calibrate_delta_nop(&cfg, 10).expect("calibration"));
    });
}

criterion_group!(benches, bench_derive_ubd, bench_calibration);
criterion_main!(benches);
