//! Criterion benchmarks of the simulator substrate: cycles simulated per
//! second for the workload shapes the experiments rely on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rrb_kernels::{random_eembc_workload, rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, Machine, MachineConfig};

fn bench_saturated_rsk(c: &mut Criterion) {
    let mut g = c.benchmark_group("saturated_rsk");
    for cycles in [10_000u64, 50_000] {
        g.throughput(Throughput::Elements(cycles));
        g.bench_with_input(BenchmarkId::from_parameter(cycles), &cycles, |b, &cycles| {
            b.iter(|| {
                let cfg = MachineConfig::ngmp_ref();
                let mut m = Machine::new(cfg.clone()).expect("config");
                for i in 0..cfg.num_cores {
                    m.load_program(CoreId::new(i), rsk(AccessKind::Load, &cfg, CoreId::new(i)));
                }
                m.run_for(cycles)
            });
        });
    }
    g.finish();
}

fn bench_scua_measurement(c: &mut Criterion) {
    // One (isolated, contended) measurement pair — the methodology's
    // inner loop.
    c.bench_function("measure_slowdown_k2", |b| {
        b.iter(|| {
            let cfg = MachineConfig::ngmp_ref();
            let scua = rsk_nop(AccessKind::Load, 2, &cfg, CoreId::new(0), 100);
            rrb::experiment::measure_slowdown(&cfg, scua, |core| {
                rsk(AccessKind::Load, &cfg, core)
            })
            .expect("measurement")
        });
    });
}

fn bench_eembc_workload(c: &mut Criterion) {
    c.bench_function("eembc_workload_100_iters", |b| {
        b.iter(|| {
            let cfg = MachineConfig::ngmp_ref();
            let w = random_eembc_workload(&cfg, 7, 100);
            let mut m = w.into_machine(&cfg).expect("machine");
            m.run().expect("run")
        });
    });
}

criterion_group!(benches, bench_saturated_rsk, bench_scua_measurement, bench_eembc_workload);
criterion_main!(benches);
