//! Benchmarks of the simulator substrate: cycles simulated per second
//! for the workload shapes the experiments rely on (std-only harness;
//! `harness = false`).

use rrb_bench::bench;
use rrb_kernels::{random_eembc_workload, rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, Machine, MachineConfig};

fn main() {
    println!("saturated_rsk");
    for cycles in [10_000u64, 50_000] {
        let r = bench(&format!("saturated_rsk/{cycles}_cycles"), 2, 10, || {
            let cfg = MachineConfig::ngmp_ref();
            let mut m = Machine::new(cfg.clone()).expect("config");
            for i in 0..cfg.num_cores {
                m.load_program(CoreId::new(i), rsk(AccessKind::Load, &cfg, CoreId::new(i)));
            }
            std::hint::black_box(m.run_for(cycles));
        });
        let cps = cycles as f64 / r.mean_seconds();
        println!("    -> {cps:.0} simulated cycles/s");
    }

    // One (isolated, contended) measurement pair — the methodology's
    // inner loop.
    bench("measure_slowdown_k2", 2, 10, || {
        let cfg = MachineConfig::ngmp_ref();
        let scua = rsk_nop(AccessKind::Load, 2, &cfg, CoreId::new(0), 100);
        std::hint::black_box(
            rrb::experiment::measure_slowdown(&cfg, scua, |core| rsk(AccessKind::Load, &cfg, core))
                .expect("measurement"),
        );
    });

    bench("eembc_workload_100_iters", 2, 10, || {
        let cfg = MachineConfig::ngmp_ref();
        let w = random_eembc_workload(&cfg, 7, 100);
        let mut m = w.into_machine(&cfg).expect("machine");
        std::hint::black_box(m.run().expect("run"));
    });
}
