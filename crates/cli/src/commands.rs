//! Subcommand implementations. Each command returns its output as a
//! `String` so the whole surface is unit-testable without capturing
//! stdout.

use crate::args::{ParseArgsError, Parsed};
use rrb::campaign::{clamped_jobs, Campaign, CampaignGrid, GridScenario, ParseGridScenarioError};
use rrb::methodology::{derive_ubd, derive_ubd_repeated, store_tooth_check, MethodologyConfig};
use rrb::naive::naive_rsk_vs_rsk;
use rrb::report;
use rrb::spec::ExperimentSpec;
use rrb::store::{sim_fingerprint, write_file_atomic, ResultStore};
use rrb::{MbtaAnalysis, TaskSpec};
use rrb_analysis::GammaModel;
use rrb_kernels::{random_eembc_workload, AccessKind, AutobenchKernel};
use rrb_sim::{ArbiterKind, CoreId, MachineConfig, McQueueConfig};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// A top-level CLI failure.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ParseArgsError),
    /// Unknown subcommand.
    UnknownCommand(String),
    /// An unknown value for an enumerated flag.
    UnknownChoice {
        /// Flag name.
        flag: &'static str,
        /// Offending value.
        value: String,
        /// Allowed values.
        allowed: &'static str,
    },
    /// A usage mistake that is not a single bad flag value (conflicting
    /// switches, a missing subcommand, …).
    Usage(String),
    /// A toolkit operation failed.
    Tool(Box<dyn Error>),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command `{c}` (try `rrb help`)")
            }
            CliError::UnknownChoice { flag, value, allowed } => {
                write!(f, "--{flag}: unknown value `{value}` (expected one of: {allowed})")
            }
            CliError::Usage(msg) => write!(f, "{msg}"),
            CliError::Tool(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CliError {}

impl From<ParseArgsError> for CliError {
    fn from(e: ParseArgsError) -> Self {
        CliError::Args(e)
    }
}

/// Parses and runs a command line, returning the textual output.
///
/// # Errors
///
/// Returns [`CliError`] for malformed input or failed derivations.
pub fn dispatch(argv: &[String]) -> Result<String, CliError> {
    let parsed = Parsed::parse(argv)?;
    // Only the spec-file commands (`run`, `analyze`, `verify`, `lint`)
    // and `cache` (the action) take a positional; everywhere else a
    // stray argument is a mistake.
    if !matches!(parsed.command.as_str(), "run" | "analyze" | "verify" | "lint" | "cache") {
        parsed.require_no_positionals()?;
    }
    match parsed.command.as_str() {
        "derive" => cmd_derive(&parsed),
        "naive" => cmd_naive(&parsed),
        "gamma" => cmd_gamma(&parsed),
        "audit" => cmd_audit(&parsed),
        "simulate" => cmd_simulate(&parsed),
        "campaign" => cmd_campaign(&parsed),
        "run" => cmd_run(&parsed),
        "analyze" => cmd_analyze(&parsed),
        "verify" => cmd_verify(&parsed),
        "lint" => cmd_lint(&parsed),
        "export-spec" => cmd_export_spec(&parsed),
        "cache" => cmd_cache(&parsed),
        "serve" => cmd_serve(&parsed),
        "help" | "--help" | "-h" => Ok(help_text()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// Resolves the `--arch` / `--cores` / `--l-bus` / `--topology` flags
/// into a machine.
fn machine_from(parsed: &Parsed) -> Result<MachineConfig, CliError> {
    let mut cfg = match parsed.get("arch").unwrap_or("ref") {
        "ref" => MachineConfig::ngmp_ref(),
        "var" => MachineConfig::ngmp_var(),
        "toy" => {
            MachineConfig::toy(parsed.get_u64("cores", 4)? as usize, parsed.get_u64("l-bus", 2)?)
        }
        other => {
            return Err(CliError::UnknownChoice {
                flag: "arch",
                value: other.to_string(),
                allowed: "ref, var, toy",
            })
        }
    };
    let has_mc_flags = parsed.get("mc-arbiter").is_some() || parsed.get("mc-occupancy").is_some();
    // The mc flags only make sense on the two-level topology, so giving
    // one implies it; an explicit --topology single-bus alongside them
    // is a contradiction, not something to ignore silently.
    let topology = match parsed.get("topology") {
        None if has_mc_flags => "bus+mc",
        None => "single-bus",
        Some(t) => t,
    };
    match topology {
        "single-bus" if has_mc_flags => {
            return Err(CliError::UnknownChoice {
                flag: "topology",
                value: String::from("single-bus (with --mc-arbiter/--mc-occupancy)"),
                allowed: "bus+mc when the mc flags are given",
            })
        }
        "single-bus" => {}
        "bus+mc" => {
            let mut mc = McQueueConfig::ngmp();
            if let Some(token) = parsed.get("mc-arbiter") {
                mc.arbiter = parse_arbiter_for(token, "mc-arbiter")?;
            }
            mc.service_occupancy = parsed.get_u64("mc-occupancy", mc.service_occupancy)?;
            cfg.topology.mc = Some(mc);
        }
        other => {
            return Err(CliError::UnknownChoice {
                flag: "topology",
                value: other.to_string(),
                allowed: "single-bus, bus+mc",
            })
        }
    }
    if let Ok(n) = parsed.get_u64("nop-latency", cfg.nop_latency) {
        cfg.nop_latency = n.max(1);
    }
    Ok(cfg)
}

fn methodology_from(parsed: &Parsed, cfg: &MachineConfig) -> Result<MethodologyConfig, CliError> {
    let mut m = MethodologyConfig::paper();
    // The saw-tooth is bus-only, so the default sweep length scales
    // with the bus share of the bound (the mc term adds no period).
    m.max_k = parsed.get_u64("max-k", (cfg.bus_ubd() * 3).max(20))? as usize;
    // `--iterations` accepts a comma list for `campaign` grids; the
    // single-run commands use the first value.
    m.iterations = parsed.get_u64_list("iterations", &[300])?.first().copied().unwrap_or(300);
    // Short command-line sweeps include the cold-start transient in the
    // utilisation average, so the floor defaults a touch below the
    // paper preset; `--min-utilization` (percent) overrides it.
    m.min_bus_utilization = parsed.get_u64("min-utilization", 90)? as f64 / 100.0;
    if parsed.get_switch("store-contenders") {
        m.contender_access = AccessKind::Store;
    }
    Ok(m)
}

fn cmd_derive(parsed: &Parsed) -> Result<String, CliError> {
    let cfg = machine_from(parsed)?;
    let mcfg = methodology_from(parsed, &cfg)?;
    let repeats = parsed.get_u64("repeats", 1)? as u32;
    let mut out = String::new();
    if repeats <= 1 {
        let d = derive_ubd(&cfg, &mcfg).map_err(|e| CliError::Tool(Box::new(e)))?;
        out.push_str(&report::render_derivation(&d));
        out.push_str("\nslowdown saw-tooth:\n");
        out.push_str(&report::render_sawtooth(&d.slowdowns, 9));
        if parsed.get_switch("store-scua") {
            // Stores have no periodic tooth (the buffer hides the bus
            // beyond one period), so they serve as a Fig. 7(b)-style
            // cross-check of the load-derived bound.
            let check =
                store_tooth_check(&cfg, &mcfg, d.ubd_m).map_err(|e| CliError::Tool(Box::new(e)))?;
            out.push_str(&format!(
                "\nstore-tooth cross-check: tooth length {} vs ubd_m {} -> {}\n",
                check.tooth_length,
                check.ubd_m,
                if check.corroborates(cfg.bus().store_occupancy + 2) {
                    "corroborated"
                } else {
                    "NOT corroborated"
                }
            ));
        }
    } else {
        let r =
            derive_ubd_repeated(&cfg, &mcfg, repeats).map_err(|e| CliError::Tool(Box::new(e)))?;
        out.push_str(&format!("consensus: {}\n", r.consensus));
        match r.ubd_m() {
            Some(u) => out.push_str(&format!("ubd_m    : {u} cycles\n")),
            None => out.push_str("ubd_m    : no agreement — do not use these measurements\n"),
        }
        for (i, run) in r.runs.iter().enumerate() {
            out.push_str(&format!(
                "run {i}: period {} ({}), ubd_m {}\n",
                run.k_period, run.period_estimate.method, run.ubd_m
            ));
        }
    }
    Ok(out)
}

fn cmd_naive(parsed: &Parsed) -> Result<String, CliError> {
    let cfg = machine_from(parsed)?;
    let iterations = parsed.get_u64("iterations", 500)?;
    let e = naive_rsk_vs_rsk(&cfg, AccessKind::Load, iterations)
        .map_err(|e| CliError::Tool(Box::new(e)))?;
    Ok(format!(
        "naive rsk-vs-rsk on this platform:\n\
         ubd_m (det/nr)    : {}\n\
         ubd_m (max gamma) : {}\n\
         (the rsk-nop methodology exists because these under-estimate the\n\
          true bound whenever the kernel's injection time is non-zero)\n",
        e.ubd_m_det_over_nr, e.ubd_m_max_gamma
    ))
}

fn cmd_gamma(parsed: &Parsed) -> Result<String, CliError> {
    let ubd = parsed.get_u64("ubd", 27)?.max(1);
    let max_delta = parsed.get_u64("max-delta", 2 * ubd + 1)?;
    let model = GammaModel::new(ubd);
    let mut out = format!("gamma(delta) for ubd = {ubd} (Eq. 2):\ndelta  gamma\n");
    for delta in 0..=max_delta {
        out.push_str(&format!("{delta:>5}  {:>5}\n", model.gamma(delta)));
    }
    Ok(out)
}

fn cmd_audit(parsed: &Parsed) -> Result<String, CliError> {
    let cfg = machine_from(parsed)?;
    let mcfg = methodology_from(parsed, &cfg)?;
    let kernel_name = parsed.get("kernel").unwrap_or("canrdr");
    let kernel = AutobenchKernel::all()
        .into_iter()
        .find(|k| k.to_string() == kernel_name)
        .ok_or(CliError::UnknownChoice {
            flag: "kernel",
            value: kernel_name.to_string(),
            allowed: "a2time, aifftr, aifirf, aiifft, basefp, bitmnp, cacheb, canrdr, idctrn, iirflt, matrix, pntrch, puwmod, rspeed, tblook, ttsprk",
        })?;
    let iterations = parsed.get_u64("iterations", 200)?;

    let analysis =
        MbtaAnalysis::characterise(&cfg, &mcfg).map_err(|e| CliError::Tool(Box::new(e)))?;
    let task = TaskSpec::new(
        kernel.to_string(),
        kernel.profile().program(
            &cfg,
            CoreId::new(0),
            parsed.get_u64("seed", 1)?,
            Some(iterations),
        ),
    );
    let bound = analysis.bound_task(&task).map_err(|e| CliError::Tool(Box::new(e)))?;
    let validation = analysis
        .validate_bound(&task, &bound, parsed.get_u64("trials", 2)? as u32)
        .map_err(|e| CliError::Tool(Box::new(e)))?;
    Ok(format!(
        "platform ubd_m = {}\n{bound}\nvalidation: worst observed {} cycles, slack {} — bound {}\n",
        analysis.ubd_m(),
        validation.worst_observed,
        validation.slack,
        if validation.holds() { "holds" } else { "VIOLATED" }
    ))
}

fn cmd_simulate(parsed: &Parsed) -> Result<String, CliError> {
    let cfg = machine_from(parsed)?;
    let seed = parsed.get_u64("seed", 0)?;
    let iterations = parsed.get_u64("scua-iterations", 200)?;
    let workload = random_eembc_workload(&cfg, seed, iterations);
    let scua = workload.scua;
    let mut machine = workload.into_machine(&cfg).map_err(|e| CliError::Tool(Box::new(e)))?;
    let summary = machine.run().map_err(|e| CliError::Tool(Box::new(e)))?;
    let pmc = machine.pmc().core(scua);
    let mut out = format!(
        "random EEMBC workload, seed {seed}:\n\
         scua execution time : {} cycles\n\
         scua bus requests   : {}\n\
         bus utilisation     : {:.3}\n\
         max gamma observed  : {}\n\
         contender histogram (other cores with a request when the scua posts):\n",
        summary.core(scua).execution_time().unwrap_or(0),
        pmc.bus_requests(),
        summary.bus_utilization,
        pmc.max_gamma().unwrap_or(0),
    );
    for (c, n) in &pmc.contender_histogram {
        out.push_str(&format!("  {c} contender(s): {n}\n"));
    }
    Ok(out)
}

/// Parses an arbiter token through `rrb-sim`'s canonical
/// `ArbiterKind::from_str` (the single source of truth for the
/// `rr/fp/fifo/tdma:<slot>/grr:<group>` grammar), naming `flag` in the
/// error.
fn parse_arbiter_for(token: &str, flag: &'static str) -> Result<ArbiterKind, CliError> {
    token.parse().map_err(|_| CliError::UnknownChoice {
        flag,
        value: token.to_string(),
        allowed: rrb_sim::ParseArbiterError::ALLOWED,
    })
}

fn parse_arbiter(token: &str) -> Result<ArbiterKind, CliError> {
    parse_arbiter_for(token, "arbiters")
}

fn parse_access(token: &str) -> Result<AccessKind, CliError> {
    match token {
        "load" => Ok(AccessKind::Load),
        "store" => Ok(AccessKind::Store),
        other => Err(CliError::UnknownChoice {
            flag: "accesses",
            value: other.to_string(),
            allowed: "load, store",
        }),
    }
}

/// Resolves the grid flags (`--scenario`, `--arbiters`, `--grid-cores`,
/// `--accesses`, `--contenders`, `--iterations`, `--max-k`, …) into a
/// [`CampaignGrid`] over the `machine_from` base — shared by
/// `rrb campaign` (which runs it) and `rrb export-spec` (which
/// serialises it), so the two can never disagree about what a flag set
/// means.
fn grid_from(parsed: &Parsed) -> Result<CampaignGrid, CliError> {
    let base = machine_from(parsed)?;
    let scenario_token = parsed.get("scenario").unwrap_or("derive");
    let scenario: GridScenario = scenario_token.parse().map_err(|_| CliError::UnknownChoice {
        flag: "scenario",
        value: scenario_token.to_string(),
        allowed: ParseGridScenarioError::ALLOWED,
    })?;

    let arbiters = parsed
        .get_list("arbiters", &[])
        .iter()
        .map(|t| parse_arbiter(t))
        .collect::<Result<Vec<_>, _>>()?;
    let accesses = parsed
        .get_list("accesses", &["load"])
        .iter()
        .map(|t| parse_access(t))
        .collect::<Result<Vec<_>, _>>()?;
    let contender_accesses = parsed
        .get_list("contenders", &["load"])
        .iter()
        .map(|t| parse_access(t))
        .collect::<Result<Vec<_>, _>>()?;
    let core_counts = parsed.get_u64_list("grid-cores", &[base.num_cores as u64])?;
    // The same flag handling `rrb derive` uses (max-k, iterations,
    // min-utilization, store-contenders), so the two commands share
    // defaults; the grid dimensions then fan out per cell.
    let methodology = methodology_from(parsed, &base)?;
    let iterations = parsed.get_u64_list("iterations", &[methodology.iterations])?;
    let max_k = methodology.max_k;

    let mut grid = CampaignGrid::new(scenario, base)
        .accesses(accesses)
        .contender_accesses(contender_accesses)
        .cores(core_counts.iter().map(|&c| c as usize).collect())
        .iterations(iterations)
        .max_k(max_k)
        .methodology(methodology);
    if !arbiters.is_empty() {
        grid = grid.arbiters(arbiters);
    }
    Ok(grid)
}

/// Renders a campaign result per `--format` and writes it to `--out`
/// (or returns it for stdout).
fn render_result(
    parsed: &Parsed,
    result: &rrb::campaign::CampaignResult,
) -> Result<String, CliError> {
    let rendered = match parsed.get("format").unwrap_or("text") {
        "text" => result.render_text(),
        "json" => result.to_json(),
        "csv" => result.to_csv(),
        other => {
            return Err(CliError::UnknownChoice {
                flag: "format",
                value: other.to_string(),
                allowed: "text, json, csv",
            })
        }
    };
    write_or_return(parsed, rendered)
}

fn write_or_return(parsed: &Parsed, rendered: String) -> Result<String, CliError> {
    if let Some(path) = parsed.get("out") {
        // Atomic (temp file + rename), so an interrupted run never
        // leaves a half-written results file at the requested path.
        write_file_atomic(path, &rendered).map_err(|e| CliError::Tool(Box::new(e)))?;
        return Ok(format!("wrote {} bytes to {path}\n", rendered.len()));
    }
    Ok(rendered)
}

/// Resolves `--jobs` through [`clamped_jobs`]: absent means every
/// available CPU, and over-requests are clamped (with a stderr warning)
/// rather than oversubscribing a pure-CPU simulator pool.
fn jobs_from(parsed: &Parsed) -> Result<usize, CliError> {
    let requested = match parsed.get("jobs") {
        None => None,
        Some(_) => Some(parsed.get_u64("jobs", 0)?.max(1) as usize),
    };
    let (jobs, warning) = clamped_jobs(requested);
    if let Some(warning) = warning {
        eprintln!("rrb: warning: {warning}");
    }
    Ok(jobs)
}

/// Resolves the persistent result store from `--cache-dir` /
/// `RRB_CACHE_DIR` / `.rrb-cache`. Caching is on by default for the
/// campaign-shaped commands — results are pure functions of their
/// specs, so reuse is always sound and the output stays byte-identical.
/// `--no-cache` opts out; `--resume` makes an unopenable store a hard
/// error instead of a degraded cold run.
fn store_from(parsed: &Parsed) -> Result<Option<Arc<ResultStore>>, CliError> {
    let resume = parsed.get_switch("resume");
    if parsed.get_switch("no-cache") {
        if resume {
            return Err(CliError::Usage(String::from(
                "--resume and --no-cache contradict each other",
            )));
        }
        return Ok(None);
    }
    let dir = ResultStore::resolve_dir(parsed.get("cache-dir"));
    match ResultStore::open(&dir) {
        Ok(store) => Ok(Some(Arc::new(store))),
        Err(e) if resume => Err(CliError::Tool(Box::new(e))),
        Err(e) => {
            eprintln!("rrb: warning: result cache disabled: {e}");
            Ok(None)
        }
    }
}

/// Reports store activity on stderr (never stdout: the rendered result
/// must stay byte-identical across cold and warm runs).
fn report_store_use(result: &rrb::campaign::CampaignResult, store: &ResultStore) {
    for warning in &result.warnings {
        eprintln!("rrb: warning: {warning}");
    }
    let s = &result.stats;
    eprintln!(
        "rrb: cache {}: {} of {} unique run(s) resumed, {} simulated, {} recorded",
        store.dir().display(),
        s.store_hits,
        s.store_hits + s.executed_runs,
        s.executed_runs,
        s.store_writes,
    );
}

/// `rrb campaign`: expand a parameter grid into scenarios, execute the
/// deduplicated run plan across `--jobs` worker threads, and print the
/// results as text, JSON, or CSV. Output is byte-identical for every
/// `--jobs` value and every cache state.
fn cmd_campaign(parsed: &Parsed) -> Result<String, CliError> {
    let grid = grid_from(parsed)?;
    let store = store_from(parsed)?;
    let mut builder = Campaign::builder().grid(&grid).jobs(jobs_from(parsed)?);
    if let Some(store) = &store {
        builder = builder.store(store.clone());
    }
    let result = builder.build().run();
    if let Some(store) = &store {
        report_store_use(&result, store);
    }
    render_result(parsed, &result)
}

/// `rrb export-spec`: serialise the campaign a flag set describes into a
/// declarative experiment file, so `rrb run <file>` reproduces
/// `rrb campaign <same flags>` byte for byte.
fn cmd_export_spec(parsed: &Parsed) -> Result<String, CliError> {
    let grid = grid_from(parsed)?;
    let spec = ExperimentSpec::from_grid(parsed.get("name").unwrap_or("campaign"), &grid);
    write_or_return(parsed, spec.to_text())
}

/// `rrb run <spec.json>`: parse, validate, and execute a declarative
/// experiment file through the same campaign runner the flag-driven
/// commands use. `--jobs`, `--format`, and `--out` stay runtime
/// choices — `--jobs` never changes the serialised json/csv bytes (the
/// text format's trailing stats line does report the job count).
fn cmd_run(parsed: &Parsed) -> Result<String, CliError> {
    let path = spec_path_from(parsed, "rrb run <spec.json>")?;
    let spec = ExperimentSpec::from_file(path).map_err(|e| CliError::Tool(Box::new(e)))?;
    let store = store_from(parsed)?;
    let mut builder = spec.to_campaign_builder(jobs_from(parsed)?);
    if let Some(store) = &store {
        builder = builder.store(store.clone());
    }
    let result = builder.build().run();
    if let Some(store) = &store {
        report_store_use(&result, store);
    }
    render_result(parsed, &result)
}

/// Extracts the single spec-file positional shared by `run`, `analyze`,
/// and `lint`.
fn spec_path_from<'a>(parsed: &'a Parsed, usage: &'static str) -> Result<&'a str, CliError> {
    match parsed.positionals() {
        [path] => Ok(path),
        [] => {
            Err(CliError::Args(ParseArgsError::MissingValue(format!("spec file (usage: {usage})"))))
        }
        [_, extra, ..] => Err(CliError::Args(ParseArgsError::UnexpectedPositional(extra.clone()))),
    }
}

/// `rrb analyze <spec.json>`: compute the static contention bound for
/// every cell the spec would run — one finite analytic bound per
/// arbiter × topology cell, no simulation, no refusals — and flag
/// soundness violations (a static bound below the analytic truth, or,
/// with `--check-runs`, a measured per-request delay above the static
/// bound). `--composed` switches the text table to the interference-flow
/// columns: the flow-composed bound next to the saturating sum, with the
/// per-resource slack the topology proves unreachable.
fn cmd_analyze(parsed: &Parsed) -> Result<String, CliError> {
    let path = spec_path_from(parsed, "rrb analyze <spec.json>")?;
    let spec = ExperimentSpec::from_file(path).map_err(|e| CliError::Tool(Box::new(e)))?;
    let rows = rrb::analyze::analyze_spec(&spec);
    let json = match parsed.get("format").unwrap_or("text") {
        "text" => false,
        "json" => true,
        other => {
            return Err(CliError::UnknownChoice {
                flag: "format",
                value: other.to_string(),
                allowed: "text, json",
            })
        }
    };
    let mut out = if json {
        ndjson(rows.iter().map(rrb::CellStaticBound::to_json))
    } else if parsed.get_switch("composed") {
        rrb::analyze::render_rows_composed(&rows)
    } else {
        rrb::analyze::render_rows(&rows)
    };
    let mut violations: Vec<String> = rows.iter().filter_map(|r| r.violation()).collect();
    if parsed.get_switch("check-runs") {
        // Execute the spec's campaign (store-cached like `rrb run`) and
        // cross-check every observed per-request delay against the
        // static bound for its cell.
        let store = store_from(parsed)?;
        let mut builder = spec.to_campaign_builder(jobs_from(parsed)?);
        if let Some(store) = &store {
            builder = builder.store(store.clone());
        }
        let result = builder.build().run();
        if let Some(store) = &store {
            report_store_use(&result, store);
        }
        let measured = rrb::analyze::check_measured(&rows, &result);
        let tightness = rrb::analyze::measured_tightness(&rows, &result);
        if json {
            out.push_str(&ndjson(tightness.iter().map(|t| {
                rrb::Json::obj(vec![
                    ("cell", rrb::Json::str(t.cell.clone())),
                    ("measured", rrb::Json::U64(t.measured)),
                    ("static_total", rrb::Json::U64(t.static_total)),
                    ("tightness", rrb::Json::F64(t.tightness)),
                ])
            })));
        } else {
            out.push_str(&format!(
                "measured cross-check: {} run record(s), {} violation(s)\n",
                result.records.len(),
                measured.len()
            ));
            // How much of each static bound the runs actually realised:
            // the per-cell pessimism, not just pass/fail.
            for t in &tightness {
                out.push_str(&format!(
                    "  tightness {}: measured {} / static {} = {:.3}\n",
                    t.cell, t.measured, t.static_total, t.tightness
                ));
            }
        }
        violations.extend(measured);
    }
    if !violations.is_empty() {
        let mut msg = String::from("static soundness violated:\n");
        for v in &violations {
            msg.push_str(&format!("  {v}\n"));
        }
        return Err(CliError::Tool(msg.into()));
    }
    write_or_return(parsed, out)
}

/// Renders an iterator of JSON values as NDJSON: one compact object per
/// line, the format the serve daemon already streams and the easiest one
/// to `grep`/`jq` incrementally.
fn ndjson(values: impl Iterator<Item = rrb::Json>) -> String {
    let mut out = String::new();
    for v in values {
        out.push_str(&v.render_compact());
        out.push('\n');
    }
    out
}

/// `rrb verify <spec.json>`: bounded model checking of every cell the
/// spec would run — the *exact* worst-case per-request delay per
/// resource (enumerating request alignments against the real arbiter
/// implementations), the tightness certificate `exact / static`, and a
/// replayable adversarial witness. Fails on any `exact > static`
/// violation; with `--check-runs`, also replays each witness on the full
/// simulator and fails if a measured delay exceeds the exact bound.
fn cmd_verify(parsed: &Parsed) -> Result<String, CliError> {
    let path = spec_path_from(parsed, "rrb verify <spec.json>")?;
    let spec = ExperimentSpec::from_file(path).map_err(|e| CliError::Tool(Box::new(e)))?;
    let opts = rrb::statics::VerifyOptions::with_horizon(parsed.get_u64("horizon", 0)?);
    let rows = rrb::verify::verify_spec(&spec, &opts);
    let json = match parsed.get("format").unwrap_or("text") {
        "text" => false,
        "json" => true,
        other => {
            return Err(CliError::UnknownChoice {
                flag: "format",
                value: other.to_string(),
                allowed: "text, json",
            })
        }
    };
    let mut out = if json {
        ndjson(rows.iter().map(rrb::VerifiedCell::to_json))
    } else {
        rrb::verify::render_verified(&rows)
    };
    let mut violations: Vec<String> = rows.iter().flat_map(|r| r.violations()).collect();
    if parsed.get_switch("check-runs") {
        let iterations = parsed.get_u64("iterations", 60)?;
        for row in &rows {
            for replay in rrb::verify::replay_cell_witnesses(row, iterations) {
                if json {
                    out.push_str(&replay.to_json().render_compact());
                    out.push('\n');
                } else {
                    let measured =
                        replay.measured.map_or_else(|| String::from("none"), |m| m.to_string());
                    out.push_str(&format!(
                        "witness replay {} [{}]: measured {measured} / exact {} ({} runs)\n",
                        replay.cell, replay.resource, replay.exact, replay.runs
                    ));
                }
                violations.extend(replay.violation());
            }
        }
    }
    if !violations.is_empty() {
        let mut msg = String::from("exact-bound soundness violated:\n");
        for v in &violations {
            msg.push_str(&format!("  {v}\n"));
        }
        return Err(CliError::Tool(msg.into()));
    }
    write_or_return(parsed, out)
}

/// `rrb lint <spec.json>`: static semantic checks on an experiment file —
/// starving TDMA slots, dangling grid axes, sweeps too short for the
/// period matcher, finite contenders, … Errors fail the command; CI runs
/// this over every checked-in spec.
fn cmd_lint(parsed: &Parsed) -> Result<String, CliError> {
    let path = spec_path_from(parsed, "rrb lint <spec.json>")?;
    let spec = ExperimentSpec::from_file(path).map_err(|e| CliError::Tool(Box::new(e)))?;
    let findings = rrb::lint::lint_spec(&spec);
    let rendered = match parsed.get("format").unwrap_or("text") {
        "text" => rrb::lint::render_findings(&findings),
        "json" => ndjson(findings.iter().map(rrb::LintFinding::to_json)),
        other => {
            return Err(CliError::UnknownChoice {
                flag: "format",
                value: other.to_string(),
                allowed: "text, json",
            })
        }
    };
    if rrb::lint::has_errors(&findings) {
        return Err(CliError::Tool(rendered.into()));
    }
    write_or_return(parsed, rendered)
}

/// `rrb cache <stats|verify|gc|fingerprint>`: inspect and maintain the
/// persistent result store.
fn cmd_cache(parsed: &Parsed) -> Result<String, CliError> {
    const ACTIONS: &str = "stats, verify, gc, fingerprint";
    let action = match parsed.positionals() {
        [action] => action.as_str(),
        [] => {
            return Err(CliError::Usage(format!("usage: rrb cache <action> (one of: {ACTIONS})")))
        }
        [_, extra, ..] => {
            return Err(CliError::Args(ParseArgsError::UnexpectedPositional(extra.clone())))
        }
    };
    if action == "fingerprint" {
        // The CI cache key: no store is opened or created.
        return Ok(format!("{:016x}\n", sim_fingerprint()));
    }
    if !matches!(action, "stats" | "verify" | "gc") {
        // Reject before opening: an unknown action must not create a
        // store directory as a side effect.
        return Err(CliError::Usage(format!(
            "unknown cache action `{action}` (expected one of: {ACTIONS})"
        )));
    }
    let dir = ResultStore::resolve_dir(parsed.get("cache-dir"));
    let store = ResultStore::open(&dir).map_err(|e| CliError::Tool(Box::new(e)))?;
    match action {
        "stats" => {
            let s = store.stats();
            Ok(format!(
                "result store     : {}\n\
                 format version   : {}\n\
                 sim fingerprint  : {:016x}\n\
                 entries          : {}\n\
                 entry bytes      : {}\n\
                 temp files       : {}\n",
                s.dir.display(),
                s.format,
                s.fingerprint,
                s.entries,
                s.bytes,
                s.temp_files,
            ))
        }
        "verify" => {
            let report = store.verify();
            if report.problems.is_empty() {
                Ok(format!("verified {} entr(y/ies): all valid\n", report.ok))
            } else {
                let mut msg = format!(
                    "cache verification failed: {} valid, {} problem(s):\n",
                    report.ok,
                    report.problems.len()
                );
                for (file, problem) in &report.problems {
                    msg.push_str(&format!("  {file}: {problem}\n"));
                }
                Err(CliError::Tool(msg.into()))
            }
        }
        "gc" => {
            let max_age = opt_u64_flag(parsed, "max-age")?;
            let max_size = opt_u64_flag(parsed, "max-size")?;
            let report = store.gc(max_age, max_size);
            Ok(format!(
                "examined {} entr(y/ies): removed {} ({} bytes), kept {} ({} bytes)\n",
                report.examined,
                report.removed,
                report.removed_bytes,
                report.kept,
                report.kept_bytes,
            ))
        }
        _ => unreachable!("action validated before the store was opened"),
    }
}

/// `rrb serve`: run the derivation daemon — a sharded scheduler over
/// the persistent result store. Blocks until SIGTERM/SIGINT or
/// `POST /v1/shutdown`, then drains gracefully and reports its
/// counters. The store is mandatory here (the service *is* the store);
/// `--cache-dir` / `RRB_CACHE_DIR` resolve it exactly like the batch
/// commands.
fn cmd_serve(parsed: &Parsed) -> Result<String, CliError> {
    let dir = ResultStore::resolve_dir(parsed.get("cache-dir"));
    let store = Arc::new(ResultStore::open(&dir).map_err(|e| CliError::Tool(Box::new(e)))?);
    let config = rrb_serve::ServeConfig {
        addr: parsed.get("addr").unwrap_or("127.0.0.1:7077").to_string(),
        workers: parsed.get_u64("workers", 0)? as usize,
        ..rrb_serve::ServeConfig::default()
    };
    let server = rrb_serve::Server::bind(config, store).map_err(|e| CliError::Tool(Box::new(e)))?;
    rrb_serve::trap_termination_signals();
    let addr = server.local_addr().map_err(|e| CliError::Tool(Box::new(e)))?;
    eprintln!(
        "rrb: serving {} on http://{addr} with {} worker(s) (SIGTERM or POST /v1/shutdown to drain)",
        dir.display(),
        server.workers(),
    );
    let stats = server.run().map_err(|e| CliError::Tool(Box::new(e)))?;
    Ok(format!(
        "served {} campaign(s), {} point quer(y/ies); streamed {} run record(s), simulated {}\n",
        stats.campaigns, stats.point_queries, stats.runs_streamed, stats.runs_executed,
    ))
}

/// An optional integer flag: `None` when absent, parsed when present.
fn opt_u64_flag(parsed: &Parsed, flag: &'static str) -> Result<Option<u64>, CliError> {
    match parsed.get(flag) {
        None => Ok(None),
        Some(_) => Ok(Some(parsed.get_u64(flag, 0)?)),
    }
}

fn help_text() -> String {
    String::from(
        "rrb — measurement-based contention bounds for round-robin buses\n\
         (reproduction of Fernandez et al., DAC 2015)\n\n\
         common machine flags (derive, naive, audit, simulate, campaign):\n\
           --arch ref|var|toy  [--cores N --l-bus N]  [--nop-latency N]\n\
           --topology single-bus|bus+mc   chain the memory-controller queue\n\
           --mc-arbiter TOKEN --mc-occupancy N   configure the mc queue\n\
           (arbiter TOKENs everywhere: rr, fp, fifo, tdma:<slot>, grr:<group>)\n\n\
         commands:\n\
           derive    run the rsk-nop methodology and derive ubd_m, with a\n\
                     per-resource breakdown on multi-resource topologies\n\
                     [--max-k N] [--iterations N] [--store-scua]\n\
                     [--store-contenders] [--repeats N]\n\
           naive     the prior-practice estimate (rsk vs rsk, det/nr)\n\
                     [--arch ...] [--iterations N]\n\
           gamma     print the Eq. 2 contention model\n\
                     [--ubd N] [--max-delta N]\n\
           audit     derive ubd_m, bound an EEMBC-profile task, validate\n\
                     [--arch ...] [--kernel NAME] [--iterations N] [--trials N]\n\
           simulate  run a random EEMBC workload and print its PMC digest\n\
                     [--arch ...] [--seed N] [--scua-iterations N]\n\
           campaign  run a scenario grid through the parallel batch runner\n\
                     [--scenario derive|naive|sweep|validate] [--arch ...]\n\
                     [--arbiters rr,fifo,...] [--topology bus+mc]\n\
                     [--grid-cores 2,3,4] [--accesses load,store]\n\
                     [--contenders load,store] [--iterations 100,200]\n\
                     [--max-k N] [--jobs N] [--format text|json|csv]\n\
                     [--out FILE]\n\
           export-spec  serialise the campaign the given flags describe\n\
                     into a declarative experiment file (same flags as\n\
                     campaign) [--name NAME] [--out FILE]\n\
           run       execute an experiment file: rrb run <spec.json>\n\
                     [--jobs N] [--format text|json|csv] [--out FILE]\n\
                     (json/csv output is byte-identical to the\n\
                     flag-driven campaign the spec was exported from)\n\
           analyze   static contention bounds for every cell of an\n\
                     experiment file — finite for every arbiter, no\n\
                     simulation: rrb analyze <spec.json>\n\
                     [--format text|json] [--out FILE] [--composed]\n\
                     [--check-runs]  (--composed shows the interference-\n\
                     flow bound and its slack vs the saturating sum;\n\
                     --check-runs also executes the campaign and fails\n\
                     if any measured delay exceeds its static bound)\n\
           verify    bounded exhaustive model check of every cell of an\n\
                     experiment file: exact worst-case delays, tightness\n\
                     certificates vs the static bounds, and replayable\n\
                     adversarial witnesses: rrb verify <spec.json>\n\
                     [--horizon N] [--format text|json] [--out FILE]\n\
                     [--check-runs [--iterations N]]  (--check-runs\n\
                     replays each witness on the cycle-accurate\n\
                     simulator and fails if measured exceeds exact)\n\
           lint      static semantic checks on an experiment file:\n\
                     rrb lint <spec.json> [--format text|json]\n\
                     (errors fail the command)\n\
           cache     inspect/maintain the persistent result store:\n\
                     rrb cache stats | verify | fingerprint\n\
                     rrb cache gc [--max-age SECS] [--max-size BYTES]\n\
           serve     run the derivation daemon over the result store:\n\
                     rrb serve [--addr HOST:PORT] [--workers N]\n\
                     [--cache-dir DIR]  (POST /v1/campaigns streams\n\
                     NDJSON run records; GET /v1/runs/<hash> answers\n\
                     point queries; SIGTERM drains gracefully)\n\
           help      this text\n\n\
         result cache (campaign, run):\n\
           runs are deterministic, so campaign/run results persist in a\n\
           content-addressed store and warm re-runs simulate nothing;\n\
           output is byte-identical either way. Default dir .rrb-cache\n\
           (override: --cache-dir DIR or RRB_CACHE_DIR). --no-cache\n\
           disables it; --resume makes an unusable cache a hard error\n\
           instead of a silent cold run. Resume statistics and any\n\
           corrupt-entry warnings go to stderr, never into results.\n",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &str) -> Result<String, CliError> {
        let argv: Vec<String> = line.split_whitespace().map(String::from).collect();
        dispatch(&argv)
    }

    #[test]
    fn help_lists_all_commands() {
        let h = run("help").expect("help");
        for cmd in [
            "derive", "naive", "gamma", "audit", "simulate", "campaign", "cache", "serve", "verify",
        ] {
            assert!(h.contains(cmd), "help must mention {cmd}");
        }
    }

    #[test]
    fn campaign_text_summarises_grid_cells() {
        let out = run("campaign --arch toy --cores 4 --l-bus 2 --scenario derive \
             --arbiters rr,fifo --iterations 60 --max-k 14 --jobs 2 --no-cache")
        .expect("campaign");
        assert!(out.contains("derive/rr/c4/load-vs-load/i60"), "{out}");
        assert!(out.contains("derive/fifo/c4/load-vs-load/i60"), "{out}");
        assert!(out.contains("ubd_m = 6"), "{out}");
        assert!(out.contains("campaign: 2 scenario(s)"), "{out}");
    }

    #[test]
    fn campaign_json_is_identical_across_jobs() {
        let line = "campaign --arch toy --cores 4 --l-bus 2 --scenario naive \
                    --contenders load,store --iterations 80 --format json --no-cache";
        let serial = run(&format!("{line} --jobs 1")).expect("serial");
        let parallel = run(&format!("{line} --jobs 8")).expect("parallel");
        assert_eq!(serial, parallel, "campaign output must not depend on --jobs");
        assert!(serial.contains("\"runs\""));
        assert!(serial.contains("\"ubd_m_max_gamma\": 5"));
    }

    #[test]
    fn campaign_csv_has_run_rows() {
        let out = run("campaign --arch toy --cores 4 --l-bus 2 --scenario sweep \
             --max-k 13 --iterations 60 --format csv --no-cache")
        .expect("campaign");
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("scenario,label,status"));
        assert_eq!(lines.len(), 1 + 2 * 14, "header + iso/contended pair per k");
    }

    #[test]
    fn campaign_rejects_bad_scenario_format_and_arbiter() {
        for (line, needle) in [
            ("campaign --scenario warp --no-cache", "derive, naive, sweep, validate"),
            (
                "campaign --arch toy --format yaml --max-k 12 --iterations 50 --no-cache",
                "text, json, csv",
            ),
            ("campaign --arbiters cdma --no-cache", "tdma:<slot>"),
            ("campaign --accesses rmw --no-cache", "load, store"),
        ] {
            let e = run(line).expect_err("must fail");
            assert!(e.to_string().contains(needle), "{line}: {e}");
        }
    }

    #[test]
    fn unknown_command_is_reported() {
        let e = run("frobnicate").expect_err("must fail");
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn stray_positionals_are_rejected_outside_run() {
        let e = run("derive extra").expect_err("must fail");
        assert!(e.to_string().contains("extra"), "{e}");
    }

    /// A scratch path in the target-adjacent temp dir, removed on drop.
    struct TempFile(std::path::PathBuf);

    impl TempFile {
        fn new(name: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("rrb-cli-test-{}-{name}", std::process::id()));
            TempFile(path)
        }

        fn as_str(&self) -> &str {
            self.0.to_str().expect("utf-8 temp path")
        }
    }

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    /// A scratch directory for cache tests, removed on drop.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(name: &str) -> Self {
            let path =
                std::env::temp_dir().join(format!("rrb-cli-test-{}-{name}", std::process::id()));
            let _ = std::fs::remove_dir_all(&path);
            TempDir(path)
        }

        fn as_str(&self) -> &str {
            self.0.to_str().expect("utf-8 temp path")
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn warm_cached_campaign_output_is_byte_identical_to_cold() {
        let cache = TempDir::new("warm-campaign");
        let line = format!(
            "campaign --arch toy --cores 4 --l-bus 2 --scenario naive --iterations 60 \
             --format json --cache-dir {}",
            cache.as_str()
        );
        let cold = run(&line).expect("cold run");
        let warm = run(&line).expect("warm run");
        assert_eq!(cold, warm, "cache state must never change the rendered output");
        let stats = run(&format!("cache stats --cache-dir {}", cache.as_str())).expect("stats");
        assert!(!stats.contains("entries          : 0"), "{stats}");
    }

    #[test]
    fn cache_stats_verify_gc_and_fingerprint() {
        let cache = TempDir::new("verbs");
        run(&format!(
            "campaign --arch toy --cores 4 --l-bus 2 --scenario naive --iterations 60 \
             --cache-dir {}",
            cache.as_str()
        ))
        .expect("populate");

        let fp = run("cache fingerprint").expect("fingerprint");
        assert_eq!(fp.trim().len(), 16, "{fp}");
        assert!(u64::from_str_radix(fp.trim(), 16).is_ok(), "{fp}");

        let verify = run(&format!("cache verify --cache-dir {}", cache.as_str())).expect("verify");
        assert!(verify.contains("all valid"), "{verify}");

        // Corrupt one entry: verify must fail and name the file.
        let entries = cache.0.join("entries");
        let entry = std::fs::read_dir(&entries)
            .expect("entries dir")
            .flatten()
            .next()
            .expect("an entry")
            .path();
        std::fs::write(&entry, "{ truncated").expect("corrupt");
        let e =
            run(&format!("cache verify --cache-dir {}", cache.as_str())).expect_err("must fail");
        assert!(e.to_string().contains("problem(s)"), "{e}");

        // gc with no limits removes only the corrupt entry…
        let gc = run(&format!("cache gc --cache-dir {}", cache.as_str())).expect("gc");
        assert!(gc.contains("removed 1"), "{gc}");
        // …and --max-age 0 expires the rest.
        let gc = run(&format!("cache gc --max-age 0 --cache-dir {}", cache.as_str())).expect("gc");
        assert!(gc.contains("kept 0 (0 bytes)"), "{gc}");
    }

    #[test]
    fn cache_usage_errors_are_reported() {
        let e = run("campaign --resume --no-cache").expect_err("must fail");
        assert!(e.to_string().contains("contradict"), "{e}");
        let e = run("cache").expect_err("must fail");
        assert!(e.to_string().contains("stats, verify, gc, fingerprint"), "{e}");
        let e = run("cache defrag").expect_err("must fail");
        assert!(e.to_string().contains("defrag"), "{e}");
        let e = run("cache stats extra").expect_err("must fail");
        assert!(e.to_string().contains("extra"), "{e}");
    }

    #[test]
    fn cache_gc_max_size_prunes_to_budget_and_the_store_stays_valid() {
        let cache = TempDir::new("gc-size");
        run(&format!(
            "campaign --arch toy --cores 4 --l-bus 2 --scenario sweep --max-k 10 \
             --iterations 60 --cache-dir {}",
            cache.as_str()
        ))
        .expect("populate");
        let stats = run(&format!("cache stats --cache-dir {}", cache.as_str())).expect("stats");
        let bytes: u64 = stats
            .lines()
            .find(|l| l.starts_with("entry bytes"))
            .and_then(|l| l.split(':').nth(1))
            .and_then(|v| v.trim().parse().ok())
            .expect("entry bytes in stats");
        assert!(bytes > 0, "{stats}");

        // A budget of half the store forces a partial prune…
        let gc = run(&format!("cache gc --max-size {} --cache-dir {}", bytes / 2, cache.as_str()))
            .expect("gc");
        // "examined E: removed R (RB bytes), kept K (KB bytes)"
        let nums: Vec<u64> =
            gc.split(|c: char| !c.is_ascii_digit()).filter_map(|t| t.parse().ok()).collect();
        assert_eq!(nums.len(), 5, "{gc}");
        let (removed, kept, kept_bytes) = (nums[1], nums[3], nums[4]);
        assert!(removed >= 1, "{gc}");
        assert!(kept >= 1, "{gc}");
        assert!(kept_bytes <= bytes / 2, "{gc}");
        // …and what survives is still a fully valid store.
        let verify = run(&format!("cache verify --cache-dir {}", cache.as_str())).expect("verify");
        assert!(verify.contains("all valid"), "{verify}");
    }

    #[test]
    fn cache_gc_max_age_zero_empties_the_store_and_it_verifies_clean() {
        let cache = TempDir::new("gc-age");
        let campaign = format!(
            "campaign --arch toy --cores 4 --l-bus 2 --scenario naive --iterations 60 \
             --cache-dir {}",
            cache.as_str()
        );
        run(&campaign).expect("populate");
        let gc = run(&format!("cache gc --max-age 0 --cache-dir {}", cache.as_str())).expect("gc");
        assert!(gc.contains("kept 0 (0 bytes)"), "{gc}");
        let verify = run(&format!("cache verify --cache-dir {}", cache.as_str())).expect("verify");
        assert!(verify.contains("verified 0"), "{verify}");
        let stats = run(&format!("cache stats --cache-dir {}", cache.as_str())).expect("stats");
        assert!(stats.contains("entries          : 0"), "{stats}");
        // An emptied store repopulates transparently on the next run.
        run(&campaign).expect("repopulate");
        let stats = run(&format!("cache stats --cache-dir {}", cache.as_str())).expect("stats");
        assert!(!stats.contains("entries          : 0"), "{stats}");
    }

    #[test]
    fn serve_boots_answers_and_drains_via_the_cli() {
        let cache = TempDir::new("serve-cli");
        // Probe for a free port; serve needs a literal --addr up front.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe");
            probe.local_addr().expect("probe addr").port()
        };
        let addr = format!("127.0.0.1:{port}");
        let line = format!("serve --addr {addr} --workers 1 --cache-dir {}", cache.as_str());
        let daemon = std::thread::spawn(move || run(&line).map_err(|e| e.to_string()));
        let sock: std::net::SocketAddr = addr.parse().expect("socket addr");
        let mut ready = false;
        for _ in 0..500 {
            if rrb_serve::client::get(sock, "/healthz").map(|r| r.status == 200).unwrap_or(false) {
                ready = true;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(ready, "daemon did not come up on {sock}");
        let resp = rrb_serve::client::post(sock, "/v1/shutdown", "").expect("shutdown");
        assert_eq!(resp.status, 200);
        let out = daemon.join().expect("join").expect("serve");
        assert!(out.contains("served 0 campaign(s)"), "{out}");
    }

    #[test]
    fn serve_rejects_bad_addresses_and_stray_arguments() {
        let cache = TempDir::new("serve-errors");
        run(&format!("serve not-a-flag --cache-dir {}", cache.as_str()))
            .expect_err("stray positionals must fail");
        let e = run(&format!("serve --addr not-an-address --cache-dir {}", cache.as_str()))
            .expect_err("must fail");
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn run_resumes_a_spec_from_the_cache() {
        let cache = TempDir::new("resume-spec");
        let spec_file = TempFile::new("resume.json");
        run(&format!(
            "export-spec --arch toy --cores 4 --l-bus 2 --scenario sweep --max-k 8 \
             --iterations 50 --out {}",
            spec_file.as_str()
        ))
        .expect("export");
        let line = |extra: &str| {
            format!(
                "run {} --format csv --cache-dir {} {extra}",
                spec_file.as_str(),
                cache.as_str()
            )
        };
        let cold = run(&line("")).expect("cold");
        let resumed = run(&line("--resume")).expect("resumed");
        assert_eq!(cold, resumed);
    }

    #[test]
    fn export_spec_then_run_reproduces_the_flag_driven_campaign() {
        let flags = "--arch toy --cores 4 --l-bus 2 --scenario derive \
                     --arbiters rr,fifo --iterations 60 --max-k 14";
        let cache = "--no-cache";
        let spec_file = TempFile::new("roundtrip.json");
        let exported =
            run(&format!("export-spec {flags} --out {}", spec_file.as_str())).expect("export");
        assert!(exported.contains("wrote"), "{exported}");

        // Every rendered format must match across differing --jobs —
        // including text, whose trailing stats line only reports
        // plan-determined numbers (execution stats go to stderr).
        for format in ["json", "csv", "text"] {
            let direct = run(&format!("campaign {flags} {cache} --format {format} --jobs 2"))
                .expect("flag campaign");
            let via_spec =
                run(&format!("run {} {cache} --format {format} --jobs 1", spec_file.as_str()))
                    .expect("spec campaign");
            assert_eq!(via_spec, direct, "--format {format} must match byte for byte");
        }
    }

    #[test]
    fn exported_spec_is_a_lossless_spec_file() {
        let spec_file = TempFile::new("lossless.json");
        run(&format!(
            "export-spec --arch ref --topology bus+mc --mc-occupancy 4 --scenario sweep \
             --grid-cores 2,4 --iterations 80 --max-k 10 --name ngmp --out {}",
            spec_file.as_str()
        ))
        .expect("export");
        let text = std::fs::read_to_string(spec_file.as_str()).expect("read");
        let spec = ExperimentSpec::parse(&text).expect("parse");
        assert_eq!(spec.name, "ngmp");
        assert_eq!(spec.machine.num_cores, 4);
        assert!(spec.machine.mc().is_some(), "mc flags must survive export");
        assert_eq!(spec.to_text(), text, "the file is the canonical rendering");
    }

    #[test]
    fn run_reports_missing_file_bad_spec_and_missing_argument() {
        let e = run("run").expect_err("must fail");
        assert!(e.to_string().contains("rrb run <spec.json>"), "{e}");
        let e = run("run /nonexistent/spec.json").expect_err("must fail");
        assert!(e.to_string().contains("No such file"), "{e}");
        let bad = TempFile::new("bad.json");
        std::fs::write(&bad.0, "{\"version\": 1}").expect("write");
        let e = run(&format!("run {}", bad.as_str())).expect_err("must fail");
        assert!(e.to_string().contains("name"), "{e}");
        let e = run("run a.json b.json").expect_err("must fail");
        assert!(e.to_string().contains("b.json"), "{e}");
    }

    #[test]
    fn run_rejects_invalid_machine_specs_with_a_clear_error() {
        // A structurally valid file whose machine cannot exist (0 cores):
        // validation must catch it before any run is attempted.
        let grid = CampaignGrid::new(GridScenario::Naive, {
            let mut cfg = rrb_sim::MachineConfig::toy(4, 2);
            cfg.num_cores = 0;
            cfg
        });
        let file = TempFile::new("invalid-machine.json");
        std::fs::write(&file.0, ExperimentSpec::from_grid("bad", &grid).to_text()).expect("write");
        let e = run(&format!("run {}", file.as_str())).expect_err("must fail");
        assert!(e.to_string().contains("num_cores"), "{e}");
    }

    /// The checked-in example experiment file, resolved from the crate
    /// root so the test passes regardless of the runner's cwd.
    const NGMP_SPEC: &str =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/experiments/ngmp_sweep.json");

    #[test]
    fn analyze_bounds_every_cell_of_the_example_spec() {
        let out = run(&format!("analyze {NGMP_SPEC}")).expect("analyze");
        // Three grid cells (cores 2, 3, 4) plus two workload cases, every
        // one with a finite static bound and none below the analytic truth.
        for cell in ["/rr/c2/", "/rr/c3/", "/rr/c4/", "canrdr-vs-rsk", "pntrch-vs-mixed"] {
            assert!(out.contains(cell), "missing {cell}:\n{out}");
        }
        assert!(out.contains("5 cells: 5 sound, 0 unbounded, 0 UNSOUND"), "{out}");
    }

    #[test]
    fn analyze_json_format_carries_the_soundness_fields() {
        let out = run(&format!("analyze {NGMP_SPEC} --format json")).expect("analyze");
        for key in ["\"static_total\"", "\"truth_total\"", "\"sound_vs_truth\":true"] {
            assert!(out.contains(key), "missing {key}:\n{out}");
        }
        // NDJSON: one compact object per line, one line per cell.
        assert_eq!(out.trim().lines().count(), 5, "{out}");
        assert!(out.trim().lines().all(|l| l.starts_with('{') && l.ends_with('}')), "{out}");
        let e = run(&format!("analyze {NGMP_SPEC} --format yaml")).expect_err("must fail");
        assert!(e.to_string().contains("text, json"), "{e}");
        let e = run("analyze").expect_err("must fail");
        assert!(e.to_string().contains("rrb analyze <spec.json>"), "{e}");
    }

    #[test]
    fn analyze_composed_renders_the_flow_columns() {
        let out = run(&format!("analyze {NGMP_SPEC} --composed")).expect("analyze");
        assert!(out.contains("flow(tot)"), "{out}");
        assert!(out.contains("slack"), "{out}");
        assert!(out.contains("provable slack"), "{out}");
        // The flow keys also ride along in the JSON rows.
        let json = run(&format!("analyze {NGMP_SPEC} --format json")).expect("analyze");
        for key in ["\"flow_total\"", "\"flow_bus\"", "\"flow_mc\"", "\"flow_slack\""] {
            assert!(json.contains(key), "missing {key}:\n{json}");
        }
    }

    #[test]
    fn analyze_check_runs_cross_checks_measured_delays() {
        let spec_file = TempFile::new("check-runs.json");
        run(&format!(
            "export-spec --arch toy --cores 4 --l-bus 2 --scenario sweep --max-k 8 \
             --iterations 50 --out {}",
            spec_file.as_str()
        ))
        .expect("export");
        let out = run(&format!("analyze {} --check-runs --no-cache", spec_file.as_str()))
            .expect("a sound analyzer must survive its own cross-check");
        assert!(out.contains("measured cross-check:"), "{out}");
        assert!(out.contains("0 violation(s)"), "{out}");
    }

    #[test]
    fn lint_accepts_the_example_spec() {
        let out = run(&format!("lint {NGMP_SPEC}")).expect("lint");
        assert!(out.contains("0 errors"), "{out}");
    }

    #[test]
    fn lint_rejects_a_broken_spec_with_a_dotted_path() {
        let grid = CampaignGrid::new(GridScenario::Derive, rrb_sim::MachineConfig::toy(4, 2));
        let mut spec = ExperimentSpec::from_grid("broken", &grid);
        let g = spec.grid.as_mut().expect("grid spec");
        g.cores.clear(); // dangling axis: the grid expands to nothing
        g.arbiters[0] = ArbiterKind::Tdma { slot_cycles: 1 }; // slot < worst occupancy
        let file = TempFile::new("broken-spec.json");
        std::fs::write(&file.0, spec.to_text()).expect("write");
        let e = run(&format!("lint {}", file.as_str())).expect_err("must fail");
        let msg = e.to_string();
        assert!(msg.contains("spec field `grid.cores`"), "{msg}");
        assert!(msg.contains("spec field `grid.arbiters[0]`"), "{msg}");
        assert!(msg.contains("starve"), "{msg}");
        // The same file is refused by analyze's spec loading? No — analyze
        // bounds what the spec *would* run (nothing), so lint is the gate.
        let out = run(&format!("analyze {}", file.as_str())).expect("analyze");
        assert!(out.contains("0 cells"), "{out}");
    }

    #[test]
    fn lint_json_format_is_ndjson_with_dotted_paths() {
        let grid = CampaignGrid::new(GridScenario::Derive, rrb_sim::MachineConfig::toy(4, 2));
        let mut spec = ExperimentSpec::from_grid("broken", &grid);
        spec.grid.as_mut().expect("grid spec").cores.clear();
        let file = TempFile::new("broken-json-spec.json");
        std::fs::write(&file.0, spec.to_text()).expect("write");
        let e = run(&format!("lint {} --format json", file.as_str())).expect_err("must fail");
        let msg = e.to_string();
        assert!(msg.contains("\"severity\":\"error\""), "{msg}");
        assert!(msg.contains("\"path\":\"grid.cores\""), "{msg}");
        assert!(msg.trim().lines().all(|l| l.starts_with('{') && l.ends_with('}')), "{msg}");
        let e = run(&format!("lint {} --format yaml", file.as_str())).expect_err("must fail");
        assert!(e.to_string().contains("text, json"), "{e}");
    }

    #[test]
    fn verify_certifies_the_toy_grid_and_replays_witnesses() {
        let spec_file = TempFile::new("verify-spec.json");
        run(&format!(
            "export-spec --arch toy --cores 4 --l-bus 2 --scenario derive \
             --arbiters rr,fp,fifo --grid-cores 2,4 --max-k 8 --iterations 40 --out {}",
            spec_file.as_str()
        ))
        .expect("export");
        let out = run(&format!("verify {}", spec_file.as_str())).expect("verify");
        assert!(out.contains("6 cells: 6 exact, 0 unbounded, 0 UNSOUND"), "{out}");
        let json =
            run(&format!("verify {} --format json", spec_file.as_str())).expect("verify json");
        assert!(json.contains("\"tightness\""), "{json}");
        assert!(json.contains("\"sound\":true"), "{json}");
        assert_eq!(json.trim().lines().count(), 6, "{json}");
    }

    #[test]
    fn verify_check_runs_replays_witnesses_within_the_exact_bound() {
        let spec_file = TempFile::new("verify-replay.json");
        run(&format!(
            "export-spec --arch toy --cores 4 --l-bus 2 --scenario derive \
             --arbiters rr,fifo --grid-cores 4 --max-k 8 --iterations 40 --out {}",
            spec_file.as_str()
        ))
        .expect("export");
        let out = run(&format!("verify {} --check-runs --iterations 40", spec_file.as_str()))
            .expect("witness replay must stay within the exact bound");
        assert!(out.contains("witness replay"), "{out}");
    }

    #[test]
    fn gamma_table_matches_model() {
        let out = run("gamma --ubd 6 --max-delta 7").expect("gamma");
        assert!(out.contains("    0      6"));
        assert!(out.contains("    6      0"));
        assert!(out.contains("    7      5"));
    }

    #[test]
    fn derive_on_toy_bus_reports_six() {
        let out = run("derive --arch toy --cores 4 --l-bus 2 --max-k 20 --iterations 100")
            .expect("derive");
        assert!(out.contains("ubd_m               : 6"), "{out}");
    }

    #[test]
    fn derive_on_two_level_topology_reports_breakdown_that_sums() {
        let out = run("derive --arch toy --cores 4 --l-bus 2 --topology bus+mc \
             --mc-occupancy 2 --max-k 20 --iterations 100")
        .expect("derive");
        assert!(out.contains("ubd_m               : 6"), "{out}");
        let line = out
            .lines()
            .find(|l| l.starts_with("per-resource ubd_m"))
            .unwrap_or_else(|| panic!("breakdown line missing:\n{out}"));
        // "per-resource ubd_m  : bus 6 + mc N = M cycles" — the shares
        // must sum to the reported total.
        let nums: Vec<u64> =
            line.split(|c: char| !c.is_ascii_digit()).filter_map(|t| t.parse().ok()).collect();
        assert_eq!(nums.len(), 3, "{line}");
        assert_eq!(nums[0] + nums[1], nums[2], "{line}");
        assert_eq!(nums[0], 6, "the bus share is the saw-tooth bound: {line}");
    }

    #[test]
    fn mc_flags_imply_two_level_topology() {
        // --mc-occupancy without --topology must not be silently ignored:
        // it implies bus+mc, so the breakdown line appears.
        let out = run("derive --arch toy --cores 4 --l-bus 2 --mc-occupancy 2 \
             --max-k 20 --iterations 100")
        .expect("derive");
        assert!(out.contains("per-resource ubd_m"), "{out}");
        // ...and contradicting them with an explicit single-bus errors.
        let e =
            run("derive --arch toy --topology single-bus --mc-occupancy 2").expect_err("must fail");
        assert!(e.to_string().contains("bus+mc when the mc flags are given"), "{e}");
    }

    #[test]
    fn derive_rejects_bad_topology_and_mc_arbiter() {
        let e = run("derive --arch toy --topology mesh").expect_err("must fail");
        assert!(e.to_string().contains("single-bus, bus+mc"), "{e}");
        let e =
            run("derive --arch toy --topology bus+mc --mc-arbiter cdma").expect_err("must fail");
        assert!(e.to_string().contains("tdma:<slot>"), "{e}");
    }

    #[test]
    fn campaign_on_two_level_topology_emits_per_resource_metrics() {
        let out = run("campaign --arch toy --cores 4 --l-bus 2 --topology bus+mc \
             --mc-occupancy 2 --scenario derive --iterations 60 --max-k 14 --jobs 2 --no-cache")
        .expect("campaign");
        assert!(out.contains("/bus+mc"), "scenario names carry the topology: {out}");
        assert!(out.contains("ubd_bus"), "{out}");
        assert!(out.contains("ubd_mc"), "{out}");
        assert!(out.contains("ubd_total"), "{out}");
    }

    #[test]
    fn derive_with_repeats_reports_consensus() {
        let out =
            run("derive --arch toy --cores 4 --l-bus 2 --max-k 20 --iterations 60 --repeats 2")
                .expect("derive");
        assert!(out.contains("consensus: unanimous"), "{out}");
        assert!(out.contains("ubd_m    : 6"), "{out}");
    }

    #[test]
    fn derive_with_store_cross_check() {
        let out =
            run("derive --arch toy --cores 4 --l-bus 2 --max-k 20 --iterations 80 --store-scua")
                .expect("derive");
        assert!(out.contains("corroborated"), "{out}");
    }

    #[test]
    fn naive_on_toy_bus_underestimates() {
        let out = run("naive --arch toy --cores 4 --l-bus 2 --iterations 200").expect("naive");
        assert!(out.contains("ubd_m (max gamma) : 5"), "{out}");
    }

    #[test]
    fn bad_arch_is_rejected() {
        let e = run("derive --arch sparc").expect_err("must fail");
        assert!(e.to_string().contains("ref, var, toy"));
    }

    #[test]
    fn bad_kernel_is_rejected() {
        let e = run("audit --arch toy --kernel nosuch").expect_err("must fail");
        assert!(e.to_string().contains("canrdr"));
    }

    #[test]
    fn simulate_prints_digest() {
        let out = run("simulate --arch toy --seed 3 --scua-iterations 50").expect("simulate");
        assert!(out.contains("bus utilisation"));
        assert!(out.contains("contender histogram"));
    }

    #[test]
    fn audit_toy_kernel_bound_holds() {
        let out =
            run("audit --arch toy --cores 4 --l-bus 2 --max-k 20 --iterations 80 --kernel rspeed")
                .expect("audit");
        assert!(out.contains("bound holds"), "{out}");
    }
}
