//! `rrb` — command-line driver for the contention-bound toolkit.
//!
//! ```text
//! rrb derive  [--arch ref|var] [--cores N --l-bus N] [--max-k N]
//!             [--iterations N] [--store-scua] [--repeats N]
//! rrb naive   [--arch ref|var] [--iterations N]
//! rrb gamma   [--ubd N] [--max-delta N]
//! rrb audit   [--arch ref|var] [--kernel NAME] [--iterations N]
//! rrb simulate [--arch ref|var] [--seed N] [--scua-iterations N]
//! rrb campaign [--scenario derive|naive|sweep|validate]
//!             [--arbiters rr,fp,...] [--grid-cores 2,3,4]
//!             [--jobs N] [--format text|json|csv] [--out FILE]
//!             [--cache-dir DIR] [--no-cache] [--resume]
//! rrb export-spec [same flags as campaign] [--name NAME] [--out FILE]
//! rrb run <spec.json> [--jobs N] [--format text|json|csv] [--out FILE]
//!             [--cache-dir DIR] [--no-cache] [--resume]
//! rrb analyze <spec.json> [--format text|json] [--out FILE]
//!             [--check-runs] [--jobs N] [--cache-dir DIR] [--no-cache]
//! rrb lint <spec.json>
//! rrb cache   stats | verify | fingerprint | gc [--max-age SECS]
//!             [--max-size BYTES]   [--cache-dir DIR]
//! rrb serve   [--addr HOST:PORT] [--workers N] [--cache-dir DIR]
//! ```
//!
//! Run `rrb help` for details.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
