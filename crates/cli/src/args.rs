//! Minimal flag parser (kept dependency-free on purpose; see DESIGN.md).

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand plus positional arguments and
/// `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Parsed {
    /// The subcommand (first argument).
    pub command: String,
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// A command-line parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseArgsError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` had no value.
    MissingValue(String),
    /// A positional argument appeared where a flag was expected.
    UnexpectedPositional(String),
    /// A flag's value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseArgsError::MissingCommand => write!(f, "no command given (try `rrb help`)"),
            ParseArgsError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            ParseArgsError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument `{arg}`")
            }
            ParseArgsError::BadValue { flag, value, expected } => {
                write!(f, "--{flag}: `{value}` is not {expected}")
            }
        }
    }
}

impl std::error::Error for ParseArgsError {}

/// Boolean flags that take no value.
const SWITCHES: &[&str] =
    &["store-scua", "store-contenders", "verbose", "no-cache", "resume", "check-runs", "composed"];

impl Parsed {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] on malformed input.
    pub fn parse(argv: &[String]) -> Result<Self, ParseArgsError> {
        let mut it = argv.iter();
        let command = it.next().ok_or(ParseArgsError::MissingCommand)?.clone();
        let mut positionals = Vec::new();
        let mut flags = BTreeMap::new();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                // Collected here; commands that take none reject them via
                // `require_no_positionals`.
                positionals.push(arg.clone());
                continue;
            };
            if SWITCHES.contains(&name) {
                flags.insert(name.to_string(), String::from("true"));
            } else {
                let value =
                    it.next().ok_or_else(|| ParseArgsError::MissingValue(name.to_string()))?;
                flags.insert(name.to_string(), value.clone());
            }
        }
        Ok(Parsed { command, positionals, flags })
    }

    /// The positional arguments after the subcommand, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Errors unless the command line had no positional arguments — for
    /// the subcommands that take only flags.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError::UnexpectedPositional`] naming the first
    /// stray argument.
    pub fn require_no_positionals(&self) -> Result<(), ParseArgsError> {
        match self.positionals.first() {
            None => Ok(()),
            Some(arg) => Err(ParseArgsError::UnexpectedPositional(arg.clone())),
        }
    }

    /// A string flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// An integer flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError::BadValue`] when present but non-numeric.
    pub fn get_u64(&self, flag: &str, default: u64) -> Result<u64, ParseArgsError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ParseArgsError::BadValue {
                flag: flag.to_string(),
                value: v.clone(),
                expected: "a non-negative integer",
            }),
        }
    }

    /// A boolean switch.
    pub fn get_switch(&self, flag: &str) -> bool {
        self.flags.get(flag).is_some_and(|v| v == "true")
    }

    /// A comma-separated list flag (e.g. `--cores 2,3,4`), with a
    /// default when absent. Empty items are ignored.
    pub fn get_list(&self, flag: &str, default: &[&str]) -> Vec<String> {
        match self.flags.get(flag) {
            None => default.iter().map(|s| s.to_string()).collect(),
            Some(v) => v.split(',').filter(|s| !s.is_empty()).map(String::from).collect(),
        }
    }

    /// A comma-separated list of integers with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError::BadValue`] when any item is non-numeric.
    pub fn get_u64_list(&self, flag: &str, default: &[u64]) -> Result<Vec<u64>, ParseArgsError> {
        match self.flags.get(flag) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|item| {
                    item.parse().map_err(|_| ParseArgsError::BadValue {
                        flag: flag.to_string(),
                        value: item.to_string(),
                        expected: "a comma-separated list of non-negative integers",
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let p = Parsed::parse(&argv("derive --arch var --max-k 70")).expect("parse");
        assert_eq!(p.command, "derive");
        assert_eq!(p.get("arch"), Some("var"));
        assert_eq!(p.get_u64("max-k", 0).expect("num"), 70);
        assert_eq!(p.get_u64("iterations", 500).expect("num"), 500);
    }

    #[test]
    fn switches_take_no_value() {
        let p = Parsed::parse(&argv("derive --store-scua --max-k 10")).expect("parse");
        assert!(p.get_switch("store-scua"));
        assert!(!p.get_switch("verbose"));
        assert_eq!(p.get_u64("max-k", 0).expect("num"), 10);
    }

    #[test]
    fn missing_command_rejected() {
        assert_eq!(Parsed::parse(&[]), Err(ParseArgsError::MissingCommand));
    }

    #[test]
    fn missing_value_rejected() {
        let e = Parsed::parse(&argv("derive --max-k")).expect_err("must fail");
        assert_eq!(e, ParseArgsError::MissingValue("max-k".into()));
    }

    #[test]
    fn positionals_are_collected_and_rejectable() {
        let p = Parsed::parse(&argv("run spec.json --jobs 2")).expect("parse");
        assert_eq!(p.positionals(), ["spec.json"]);
        assert_eq!(p.get_u64("jobs", 1).expect("num"), 2);
        let e = p.require_no_positionals().expect_err("must fail");
        assert_eq!(e, ParseArgsError::UnexpectedPositional("spec.json".into()));
        Parsed::parse(&argv("derive --max-k 3"))
            .expect("parse")
            .require_no_positionals()
            .expect("flag-only command lines have no positionals");
    }

    #[test]
    fn bad_number_rejected() {
        let p = Parsed::parse(&argv("derive --max-k many")).expect("parse");
        assert!(matches!(p.get_u64("max-k", 0), Err(ParseArgsError::BadValue { .. })));
    }

    #[test]
    fn list_flags_split_on_commas() {
        let p = Parsed::parse(&argv("campaign --arbiters rr,fifo --iterations 100,200"))
            .expect("parse");
        assert_eq!(p.get_list("arbiters", &["rr"]), vec!["rr", "fifo"]);
        assert_eq!(p.get_list("accesses", &["load"]), vec!["load"]);
        assert_eq!(p.get_u64_list("iterations", &[50]).expect("nums"), vec![100, 200]);
        assert_eq!(p.get_u64_list("cores", &[4]).expect("nums"), vec![4]);
        assert!(matches!(
            Parsed::parse(&argv("campaign --iterations 1,x"))
                .expect("parse")
                .get_u64_list("iterations", &[]),
            Err(ParseArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn error_messages_are_helpful() {
        assert!(ParseArgsError::MissingCommand.to_string().contains("rrb help"));
        assert!(ParseArgsError::MissingValue("x".into()).to_string().contains("--x"));
    }
}
