//! The δ_nop calibration kernel (§4.2).
//!
//! "We have designed a rsk in which all the operations in the loop-body
//! are nops. The loop body is made as big as possible without causing
//! instruction cache misses. By dividing the execution time of such rsk
//! by the number of nop operations executed we can derive δ_nop very
//! accurately."

use rrb_sim::{MachineConfig, Program, ProgramBuilder};

/// Builds the pure-nop calibration kernel: a body sized to fill the IL1
/// without overflowing it, repeated `iterations` times.
///
/// ```
/// use rrb_sim::MachineConfig;
/// use rrb_kernels::nop_kernel;
/// let cfg = MachineConfig::ngmp_ref();
/// let p = nop_kernel(&cfg, 100);
/// // 16 KB IL1 / 4 B per instruction, halved for safety margin.
/// assert_eq!(p.body().len(), 2048);
/// ```
pub fn nop_kernel(cfg: &MachineConfig, iterations: u64) -> Program {
    // 4 bytes per instruction; keep to half the IL1 so the loop plus any
    // surrounding code can never overflow it.
    let max_instrs = (cfg.il1.size_bytes / 4 / 2).max(1) as usize;
    ProgramBuilder::new().nops(max_instrs).iterations(iterations).build()
}

/// Derives δ_nop from a measured execution time.
///
/// Divides `execution_time` by the number of nops executed, rounding to
/// the nearest cycle. Cold-start fetch misses make the raw quotient
/// slightly exceed the true latency; with the body sizes produced by
/// [`nop_kernel`] the bias is far below half a cycle, so rounding
/// recovers the exact integer latency.
///
/// # Panics
///
/// Panics if `total_nops` is zero.
pub fn estimate_delta_nop(execution_time: u64, total_nops: u64) -> u64 {
    assert!(total_nops > 0, "cannot calibrate over zero nops");
    (execution_time + total_nops / 2) / total_nops
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_sim::{CoreId, Machine};

    #[test]
    fn kernel_fits_il1() {
        let cfg = MachineConfig::ngmp_ref();
        let p = nop_kernel(&cfg, 1);
        assert!(p.body().len() as u64 * 4 <= cfg.il1.size_bytes);
    }

    #[test]
    fn calibration_recovers_unit_nop_latency() {
        let cfg = MachineConfig::ngmp_ref();
        let mut m = Machine::new(cfg.clone()).expect("config");
        let p = nop_kernel(&cfg, 20);
        let nops = p.dynamic_instruction_count().expect("finite");
        m.load_program(CoreId::new(0), p);
        let s = m.run().expect("run");
        let et = s.core(CoreId::new(0)).execution_time().expect("done");
        assert_eq!(estimate_delta_nop(et, nops), cfg.nop_latency);
    }

    #[test]
    fn calibration_recovers_slow_nops() {
        // δ_nop > 1 (§4.2's "unlikely case"): the estimate must track it.
        let mut cfg = MachineConfig::ngmp_ref();
        cfg.nop_latency = 3;
        let mut m = Machine::new(cfg.clone()).expect("config");
        let p = nop_kernel(&cfg, 20);
        let nops = p.dynamic_instruction_count().expect("finite");
        m.load_program(CoreId::new(0), p);
        let s = m.run().expect("run");
        let et = s.core(CoreId::new(0)).execution_time().expect("done");
        assert_eq!(estimate_delta_nop(et, nops), 3);
    }

    #[test]
    fn calibration_is_noise_tolerant() {
        // A few percent of measurement overhead must not shift the round.
        assert_eq!(estimate_delta_nop(10_250, 10_000), 1);
        assert_eq!(estimate_delta_nop(30_499, 10_000), 3);
    }

    #[test]
    #[should_panic(expected = "zero nops")]
    fn zero_nops_panics() {
        let _ = estimate_delta_nop(100, 0);
    }
}
