//! # rrb-kernels — resource-stressing kernels and synthetic workloads
//!
//! Generators for the user-level kernels the paper's methodology is built
//! from:
//!
//! * [`rsk()`](rsk::rsk) — resource-stressing kernels (§2): tight loops of loads (or
//!   stores) engineered to miss DL1 on every access and hit in L2, keeping
//!   the shared bus as busy as possible;
//! * [`rsk_nop`] — the paper's contribution kernel `rsk-nop(t, k)` (§4.1):
//!   an rsk with `k` nop instructions injected between consecutive
//!   bus-accessing instructions, sweeping the injection time δ;
//! * [`nop_kernel()`](nop_kernel::nop_kernel) — a loop of pure nops used to calibrate the nop
//!   latency `δ_nop` (§4.2);
//! * [`eembc`] — seeded synthetic workloads whose memory-access profiles
//!   mimic the EEMBC Autobench suite used in the paper's Fig. 6(a) (see
//!   DESIGN.md for the substitution argument);
//! * [`workload`] — helpers assembling multi-core workloads (a scua plus
//!   `Nc - 1` contenders, random EEMBC task sets, …).
//!
//! ## Example: a load rsk-nop with 3 nops against three load rsk
//!
//! ```
//! use rrb_sim::{Machine, MachineConfig, CoreId};
//! use rrb_kernels::{AccessKind, RskBuilder};
//!
//! # fn main() -> Result<(), rrb_sim::SimError> {
//! let cfg = MachineConfig::ngmp_ref();
//! let mut machine = Machine::new(cfg.clone())?;
//! let scua = RskBuilder::new(AccessKind::Load)
//!     .nops(3)
//!     .iterations(100)
//!     .build(&cfg, CoreId::new(0));
//! machine.load_program(CoreId::new(0), scua);
//! for i in 1..cfg.num_cores {
//!     let contender = RskBuilder::new(AccessKind::Load)
//!         .endless()
//!         .build(&cfg, CoreId::new(i));
//!     machine.load_program(CoreId::new(i), contender);
//! }
//! let summary = machine.run()?;
//! assert!(summary.core(CoreId::new(0)).completed());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eembc;
pub mod kernel_spec;
pub mod layout;
pub mod nop_kernel;
pub mod rng;
pub mod rsk;
pub mod rsk_variants;
pub mod workload;

pub use eembc::{AutobenchKernel, AutobenchProfile, ParseKernelError, StridePattern};
pub use kernel_spec::{KernelSpec, KernelSpecError};
pub use layout::DataLayout;
pub use nop_kernel::{estimate_delta_nop, nop_kernel};
pub use rng::KernelRng;
pub use rsk::{rsk, rsk_nop, AccessKind, ParseAccessError, RskBuilder};
pub use rsk_variants::{rsk_capacity, rsk_l2_miss, rsk_l2_miss_nop, rsk_mixed, rsk_pointer_chase};
pub use workload::{random_eembc_workload, scua_vs_contenders, WorkloadError, WorkloadSpec};
