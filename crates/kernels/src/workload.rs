//! Multi-core workload assembly.
//!
//! A *workload* assigns one program per core. The two shapes the paper
//! uses are:
//!
//! * a software-component-under-analysis (scua) on one core against
//!   `Nc - 1` identical contenders — the measurement setup of §3–§5; and
//! * randomly drawn 4-task EEMBC workloads — the realistic baseline of
//!   Fig. 6(a).

use crate::eembc::AutobenchKernel;
use crate::kernel_spec::KernelSpec;
use crate::rng::KernelRng;
use rrb_sim::{CoreId, Machine, MachineConfig, Program, SimError};
use std::fmt;

/// Why a [`WorkloadSpec`] could not be assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The scua core index does not name one of the workload's programs.
    ScuaOutOfRange {
        /// The requested scua core.
        scua: usize,
        /// How many per-core programs the workload has.
        programs: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::ScuaOutOfRange { scua, programs } => write!(
                f,
                "scua core {scua} is out of range for a workload of {programs} program(s)"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// A complete per-core program assignment.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    programs: Vec<Program>,
    /// The core hosting the software component under analysis.
    pub scua: CoreId,
}

impl WorkloadSpec {
    /// A workload from explicit per-core programs; `scua` marks the
    /// observed core.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ScuaOutOfRange`] when `scua` does not
    /// name one of `programs` — a recoverable error rather than a panic,
    /// so analyst-supplied experiment specs cannot abort the process.
    pub fn try_new(programs: Vec<Program>, scua: CoreId) -> Result<Self, WorkloadError> {
        if scua.index() >= programs.len() {
            return Err(WorkloadError::ScuaOutOfRange {
                scua: scua.index(),
                programs: programs.len(),
            });
        }
        Ok(WorkloadSpec { programs, scua })
    }

    /// The program of each core, in core order.
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// Loads every program onto a fresh machine built from `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is invalid or the
    /// workload has more programs than the machine has cores.
    pub fn into_machine(self, cfg: &MachineConfig) -> Result<Machine, SimError> {
        let mut machine = Machine::new(cfg.clone())?;
        for (i, prog) in self.programs.into_iter().enumerate() {
            machine.try_load_program(CoreId::new(i), prog)?;
        }
        Ok(machine)
    }
}

/// Builds the measurement workload of §4.2: `scua_program` on core 0 and
/// `Nc - 1` copies of `contender_program(core)` on the remaining cores.
pub fn scua_vs_contenders<F>(
    cfg: &MachineConfig,
    scua_program: Program,
    mut contender_program: F,
) -> WorkloadSpec
where
    F: FnMut(CoreId) -> Program,
{
    let mut programs = vec![scua_program];
    for i in 1..cfg.num_cores {
        programs.push(contender_program(CoreId::new(i)));
    }
    WorkloadSpec::try_new(programs, CoreId::new(0)).expect("core 0 always holds a program")
}

/// Draws a random `Nc`-task EEMBC workload (Fig. 6(a)'s "8 randomly
/// generated 4-task workloads"): distinct kernels, the scua on core 0
/// finite with `scua_iterations`, contenders endless.
pub fn random_eembc_workload(cfg: &MachineConfig, seed: u64, scua_iterations: u64) -> WorkloadSpec {
    let mut rng = KernelRng::seed_from_u64(seed);
    let mut kernels = AutobenchKernel::all().to_vec();
    rng.shuffle(&mut kernels);
    let programs = (0..cfg.num_cores)
        .map(|i| {
            let iters = if i == 0 { Some(scua_iterations) } else { None };
            KernelSpec::Eembc {
                kernel: kernels[i % kernels.len()],
                seed: seed.wrapping_add(i as u64),
                iterations: iters,
            }
            .build(cfg, CoreId::new(i))
        })
        .collect();
    WorkloadSpec::try_new(programs, CoreId::new(0)).expect("core 0 always holds a program")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rsk::{rsk, rsk_nop, AccessKind};

    #[test]
    fn scua_vs_contenders_fills_every_core() {
        let cfg = MachineConfig::ngmp_ref();
        let w =
            scua_vs_contenders(&cfg, rsk_nop(AccessKind::Load, 2, &cfg, CoreId::new(0), 10), |c| {
                rsk(AccessKind::Load, &cfg, c)
            });
        assert_eq!(w.programs().len(), 4);
        assert_eq!(w.scua, CoreId::new(0));
        assert!(w.programs()[0].iterations().finite().is_some());
        assert!(w.programs()[1].iterations().finite().is_none());
    }

    #[test]
    fn workload_runs_on_machine() {
        let cfg = MachineConfig::ngmp_ref();
        let w =
            scua_vs_contenders(&cfg, rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 50), |c| {
                rsk(AccessKind::Load, &cfg, c)
            });
        let mut m = w.into_machine(&cfg).expect("machine");
        let s = m.run().expect("run");
        assert!(s.core(CoreId::new(0)).completed());
    }

    #[test]
    fn random_workloads_are_deterministic_and_distinct() {
        let cfg = MachineConfig::ngmp_ref();
        let a = random_eembc_workload(&cfg, 1, 10);
        let b = random_eembc_workload(&cfg, 1, 10);
        let c = random_eembc_workload(&cfg, 2, 10);
        assert_eq!(a.programs(), b.programs());
        assert_ne!(a.programs(), c.programs());
    }

    #[test]
    fn random_workload_scua_is_finite_contenders_endless() {
        let cfg = MachineConfig::ngmp_ref();
        let w = random_eembc_workload(&cfg, 7, 25);
        assert_eq!(w.programs()[0].iterations().finite(), Some(25));
        for p in &w.programs()[1..] {
            assert!(p.iterations().finite().is_none());
        }
    }

    #[test]
    fn bad_scua_is_an_error_not_a_panic() {
        let e =
            WorkloadSpec::try_new(vec![Program::empty()], CoreId::new(3)).expect_err("must fail");
        assert_eq!(e, WorkloadError::ScuaOutOfRange { scua: 3, programs: 1 });
        assert!(e.to_string().contains("out of range"));
        let e = WorkloadSpec::try_new(Vec::new(), CoreId::new(0)).expect_err("must fail");
        assert!(matches!(e, WorkloadError::ScuaOutOfRange { programs: 0, .. }));
    }
}
