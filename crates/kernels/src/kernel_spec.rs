//! Declarative kernel descriptions: every generator in this crate as a
//! plain-data value.
//!
//! A [`KernelSpec`] names a kernel family plus its parameters — access
//! kind, nop padding, seed, iteration count — without touching a machine
//! or building a program. Materialisation is deferred to
//! [`KernelSpec::build`], which needs the [`MachineConfig`] and the
//! [`CoreId`] because kernel *layouts* are machine- and core-dependent
//! (conflict sets, partition bases) while the spec is not. This is what
//! makes experiments serialisable: an experiment file stores
//! `KernelSpec`s, and the same spec builds the right program for every
//! machine and core in a campaign grid.
//!
//! ```
//! use rrb_sim::{CoreId, MachineConfig};
//! use rrb_kernels::{AccessKind, KernelSpec};
//!
//! let cfg = MachineConfig::ngmp_ref();
//! let spec = KernelSpec::RskNop { access: AccessKind::Load, nops: 3, iterations: 100 };
//! let program = spec.build(&cfg, CoreId::new(0));
//! assert_eq!(program.body().len(), 5 * 4); // 5 loads, each + 3 nops
//! assert!(spec.is_finite());
//! ```

use crate::eembc::AutobenchKernel;
use crate::nop_kernel::nop_kernel;
use crate::rsk::{AccessKind, RskBuilder};
use crate::rsk_variants::{rsk_capacity, rsk_l2_miss, rsk_mixed, rsk_pointer_chase};
use rrb_sim::{CoreId, MachineConfig, Program};
use std::error::Error;
use std::fmt;

/// A declarative, machine-independent description of one kernel.
///
/// The variants cover every generator family in this crate; see the
/// module docs of each for the construction details.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelSpec {
    /// The plain resource-stressing kernel `rsk(t)` of §2 — endless, the
    /// canonical contender.
    Rsk {
        /// Access type `t`.
        access: AccessKind,
    },
    /// The paper's `rsk-nop(t, k)` (§4.1): an rsk with `k` nops after
    /// every memory instruction, run for a finite number of iterations.
    RskNop {
        /// Access type `t`.
        access: AccessKind,
        /// Nop padding `k`.
        nops: u64,
        /// Body iterations.
        iterations: u64,
    },
    /// The pure-nop calibration loop of §4.2 (measures `δ_nop`).
    Nop {
        /// Loop iterations.
        iterations: u64,
    },
    /// A seeded synthetic EEMBC-Autobench-profile workload (Fig. 6(a)).
    Eembc {
        /// Which Autobench kernel's profile to synthesise.
        kernel: AutobenchKernel,
        /// Seed fixing the address/instruction stream.
        seed: u64,
        /// Body iterations; `None` runs endlessly (contender role).
        iterations: Option<u64>,
    },
    /// A dependent pointer-chase over the conflict lines — endless,
    /// deterministic for a given seed.
    PointerChase {
        /// Conflict lines chased (clamped to the layout's capacity).
        lines: u64,
        /// Permutation seed.
        seed: u64,
    },
    /// Alternating loads and stores over the conflict lines.
    Mixed {
        /// Body iterations; `None` runs endlessly.
        iterations: Option<u64>,
    },
    /// An rsk exceeding the whole DL1 capacity (not one set) — endless.
    Capacity {
        /// Access type.
        access: AccessKind,
        /// Working set as a multiple of the DL1 size (must be ≥ 2).
        factor: u64,
    },
    /// A kernel whose working set exceeds the L2 partition, so every
    /// access queues at the DRAM controller — endless, the
    /// memory-controller stressor / bus negative control.
    L2Miss,
}

/// Why a [`KernelSpec`] cannot be materialised for a machine.
///
/// Analyst-supplied experiment files must never abort the process, so
/// the panicking preconditions of the underlying generators are checked
/// up front by [`KernelSpec::try_build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelSpecError {
    /// `Capacity { factor }` was below the minimum of 2.
    CapacityFactorTooSmall {
        /// The offending factor.
        factor: u64,
    },
    /// A capacity working set would overflow its L2 partition and stop
    /// hitting in L2.
    WorkingSetExceedsPartition {
        /// Working-set bytes requested.
        working_set: u64,
        /// Partition bytes available (the kernel needs ≤ half).
        partition: u64,
    },
}

impl fmt::Display for KernelSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelSpecError::CapacityFactorTooSmall { factor } => {
                write!(f, "capacity kernel factor {factor} must be at least 2")
            }
            KernelSpecError::WorkingSetExceedsPartition { working_set, partition } => write!(
                f,
                "capacity kernel working set {working_set} B exceeds half the \
                 {partition} B L2 partition"
            ),
        }
    }
}

impl Error for KernelSpecError {}

impl KernelSpec {
    /// Materialises the program for `core` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics where the underlying generator would (capacity working set
    /// too large for the partition); [`KernelSpec::try_build`] surfaces
    /// those preconditions as errors instead.
    pub fn build(&self, cfg: &MachineConfig, core: CoreId) -> Program {
        match *self {
            KernelSpec::Rsk { access } => RskBuilder::new(access).endless().build(cfg, core),
            KernelSpec::RskNop { access, nops, iterations } => {
                RskBuilder::new(access).nops(nops as usize).iterations(iterations).build(cfg, core)
            }
            KernelSpec::Nop { iterations } => nop_kernel(cfg, iterations),
            KernelSpec::Eembc { kernel, seed, iterations } => {
                kernel.profile().program(cfg, core, seed, iterations)
            }
            KernelSpec::PointerChase { lines, seed } => rsk_pointer_chase(cfg, core, lines, seed),
            KernelSpec::Mixed { iterations } => rsk_mixed(cfg, core, iterations),
            KernelSpec::Capacity { access, factor } => rsk_capacity(access, cfg, core, factor),
            KernelSpec::L2Miss => rsk_l2_miss(cfg, core),
        }
    }

    /// [`KernelSpec::build`] with the generator preconditions checked
    /// first, so invalid analyst-supplied specs fail softly.
    ///
    /// # Errors
    ///
    /// Returns [`KernelSpecError`] when the spec cannot produce a valid
    /// kernel on this machine.
    pub fn try_build(&self, cfg: &MachineConfig, core: CoreId) -> Result<Program, KernelSpecError> {
        self.validate(cfg)?;
        Ok(self.build(cfg, core))
    }

    /// Checks the machine-dependent preconditions without building.
    ///
    /// # Errors
    ///
    /// Returns [`KernelSpecError`] when the spec cannot produce a valid
    /// kernel on this machine.
    pub fn validate(&self, cfg: &MachineConfig) -> Result<(), KernelSpecError> {
        if let KernelSpec::Capacity { factor, .. } = *self {
            if factor < 2 {
                return Err(KernelSpecError::CapacityFactorTooSmall { factor });
            }
            let working_set = cfg.dl1.size_bytes * factor;
            let partition = cfg.l2.partition(cfg.num_cores).size_bytes;
            if working_set > partition / 2 {
                return Err(KernelSpecError::WorkingSetExceedsPartition { working_set, partition });
            }
        }
        Ok(())
    }

    /// Whether the built program terminates on its own. Endless specs
    /// are contenders; a scua must be finite to have an execution time.
    pub fn is_finite(&self) -> bool {
        match *self {
            KernelSpec::Rsk { .. }
            | KernelSpec::PointerChase { .. }
            | KernelSpec::Capacity { .. }
            | KernelSpec::L2Miss => false,
            KernelSpec::RskNop { .. } | KernelSpec::Nop { .. } => true,
            KernelSpec::Eembc { iterations, .. } | KernelSpec::Mixed { iterations } => {
                iterations.is_some()
            }
        }
    }

    /// The stable family tag (`rsk`, `rsk-nop`, `nop`, `eembc`,
    /// `pointer-chase`, `mixed`, `capacity`, `l2-miss`) used by the
    /// experiment-file schema and display labels.
    pub fn kind(&self) -> &'static str {
        match self {
            KernelSpec::Rsk { .. } => "rsk",
            KernelSpec::RskNop { .. } => "rsk-nop",
            KernelSpec::Nop { .. } => "nop",
            KernelSpec::Eembc { .. } => "eembc",
            KernelSpec::PointerChase { .. } => "pointer-chase",
            KernelSpec::Mixed { .. } => "mixed",
            KernelSpec::Capacity { .. } => "capacity",
            KernelSpec::L2Miss => "l2-miss",
        }
    }
}

impl fmt::Display for KernelSpec {
    /// A compact human-readable label (`rsk-nop(load, k=3, i=100)`), used
    /// in scenario run labels. Not a serialisation format — experiment
    /// files store the structured form.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            KernelSpec::Rsk { access } => write!(f, "rsk({access})"),
            KernelSpec::RskNop { access, nops, iterations } => {
                write!(f, "rsk-nop({access}, k={nops}, i={iterations})")
            }
            KernelSpec::Nop { iterations } => write!(f, "nop(i={iterations})"),
            KernelSpec::Eembc { kernel, seed, iterations } => match iterations {
                Some(i) => write!(f, "eembc({kernel}, seed={seed}, i={i})"),
                None => write!(f, "eembc({kernel}, seed={seed})"),
            },
            KernelSpec::PointerChase { lines, seed } => {
                write!(f, "pointer-chase(lines={lines}, seed={seed})")
            }
            KernelSpec::Mixed { iterations } => match iterations {
                Some(i) => write!(f, "mixed(i={i})"),
                None => write!(f, "mixed"),
            },
            KernelSpec::Capacity { access, factor } => {
                write!(f, "capacity({access}, x{factor})")
            }
            KernelSpec::L2Miss => write!(f, "l2-miss"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nop_kernel::nop_kernel;
    use crate::rsk::{rsk, rsk_nop};

    fn cfg() -> MachineConfig {
        MachineConfig::ngmp_ref()
    }

    #[test]
    fn specs_build_the_same_programs_as_the_direct_generators() {
        let cfg = cfg();
        let core = CoreId::new(1);
        assert_eq!(
            KernelSpec::Rsk { access: AccessKind::Store }.build(&cfg, core),
            rsk(AccessKind::Store, &cfg, core)
        );
        assert_eq!(
            KernelSpec::RskNop { access: AccessKind::Load, nops: 4, iterations: 50 }
                .build(&cfg, core),
            rsk_nop(AccessKind::Load, 4, &cfg, core, 50)
        );
        assert_eq!(KernelSpec::Nop { iterations: 7 }.build(&cfg, core), nop_kernel(&cfg, 7));
        assert_eq!(
            KernelSpec::Eembc { kernel: AutobenchKernel::Canrdr, seed: 3, iterations: Some(10) }
                .build(&cfg, core),
            AutobenchKernel::Canrdr.profile().program(&cfg, core, 3, Some(10))
        );
        assert_eq!(
            KernelSpec::PointerChase { lines: 5, seed: 9 }.build(&cfg, core),
            rsk_pointer_chase(&cfg, core, 5, 9)
        );
        assert_eq!(
            KernelSpec::Mixed { iterations: None }.build(&cfg, core),
            rsk_mixed(&cfg, core, None)
        );
        assert_eq!(
            KernelSpec::Capacity { access: AccessKind::Load, factor: 2 }.build(&cfg, core),
            rsk_capacity(AccessKind::Load, &cfg, core, 2)
        );
        assert_eq!(KernelSpec::L2Miss.build(&cfg, core), rsk_l2_miss(&cfg, core));
    }

    #[test]
    fn finiteness_tracks_the_contender_scua_split() {
        assert!(!KernelSpec::Rsk { access: AccessKind::Load }.is_finite());
        assert!(KernelSpec::RskNop { access: AccessKind::Load, nops: 0, iterations: 1 }.is_finite());
        assert!(KernelSpec::Nop { iterations: 1 }.is_finite());
        assert!(KernelSpec::Mixed { iterations: Some(5) }.is_finite());
        assert!(!KernelSpec::Mixed { iterations: None }.is_finite());
        assert!(!KernelSpec::PointerChase { lines: 4, seed: 0 }.is_finite());
        assert!(!KernelSpec::L2Miss.is_finite());
    }

    #[test]
    fn try_build_rejects_bad_capacity_specs_without_panicking() {
        let cfg = cfg();
        let core = CoreId::new(0);
        assert_eq!(
            KernelSpec::Capacity { access: AccessKind::Load, factor: 1 }.try_build(&cfg, core),
            Err(KernelSpecError::CapacityFactorTooSmall { factor: 1 })
        );
        let e = KernelSpec::Capacity { access: AccessKind::Load, factor: 1000 }
            .try_build(&cfg, core)
            .expect_err("must fail");
        assert!(matches!(e, KernelSpecError::WorkingSetExceedsPartition { .. }));
        assert!(e.to_string().contains("partition"));
        assert!(KernelSpec::Capacity { access: AccessKind::Load, factor: 2 }
            .try_build(&cfg, core)
            .is_ok());
    }

    #[test]
    fn display_labels_are_compact_and_distinct() {
        let labels: Vec<String> = [
            KernelSpec::Rsk { access: AccessKind::Load },
            KernelSpec::RskNop { access: AccessKind::Load, nops: 2, iterations: 10 },
            KernelSpec::Nop { iterations: 10 },
            KernelSpec::Eembc { kernel: AutobenchKernel::Matrix, seed: 1, iterations: None },
            KernelSpec::PointerChase { lines: 5, seed: 1 },
            KernelSpec::Mixed { iterations: None },
            KernelSpec::Capacity { access: AccessKind::Store, factor: 2 },
            KernelSpec::L2Miss,
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len(), "{labels:?}");
        assert_eq!(labels[1], "rsk-nop(load, k=2, i=10)");
    }
}
