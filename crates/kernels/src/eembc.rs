//! Synthetic EEMBC-Autobench-profile workloads.
//!
//! The paper's Fig. 6(a) experiment runs randomly generated 4-task
//! workloads drawn from the EEMBC Autobench suite. EEMBC is proprietary,
//! so each kernel is replaced by a seeded synthetic instruction stream
//! whose *memory behaviour* — working-set size, access pattern, load/store
//! mix, compute-to-memory ratio, and control overhead — follows the
//! published characterisation of that kernel (Poovey, *Characterization of
//! the EEMBC Benchmark Suite*, 2007). What Fig. 6(a) needs from these
//! workloads is realistic, bursty, *non-saturating* bus demand, which the
//! profiles preserve; see DESIGN.md for the substitution argument.

use crate::rng::KernelRng;
use rrb_sim::{Addr, CoreId, Instr, MachineConfig, Program};
use std::fmt;
use std::str::FromStr;

/// Memory-access pattern of a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StridePattern {
    /// Walk the working set line by line.
    Sequential,
    /// Walk with a fixed byte stride.
    Strided(u64),
    /// Uniformly random line within the working set (pointer chasing /
    /// table lookup).
    Random,
}

/// The sixteen Autobench kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the names are the documentation
pub enum AutobenchKernel {
    A2time,
    Aifftr,
    Aifirf,
    Aiifft,
    Basefp,
    Bitmnp,
    Cacheb,
    Canrdr,
    Idctrn,
    Iirflt,
    Matrix,
    Pntrch,
    Puwmod,
    Rspeed,
    Tblook,
    Ttsprk,
}

impl AutobenchKernel {
    /// All kernels, in suite order.
    pub fn all() -> [AutobenchKernel; 16] {
        use AutobenchKernel::*;
        [
            A2time, Aifftr, Aifirf, Aiifft, Basefp, Bitmnp, Cacheb, Canrdr, Idctrn, Iirflt, Matrix,
            Pntrch, Puwmod, Rspeed, Tblook, Ttsprk,
        ]
    }

    /// The synthetic profile of this kernel.
    pub fn profile(self) -> AutobenchProfile {
        use AutobenchKernel::*;
        use StridePattern::*;
        // (working set, pattern, load%, store%, alu per mem op, branch every N)
        let (ws, pattern, loads, stores, alu_per_mem, branch_every) = match self {
            // Angle-to-time: tiny state, trig-heavy compute.
            A2time => (4 * 1024, Sequential, 12, 4, 6, 8),
            // FFT: large working set, strided butterfly accesses.
            Aifftr => (32 * 1024, Strided(512), 24, 8, 3, 12),
            // FIR filter: small circular buffers, multiply-accumulate.
            Aifirf => (8 * 1024, Sequential, 20, 6, 4, 10),
            // Inverse FFT: like the FFT.
            Aiifft => (32 * 1024, Strided(512), 24, 8, 3, 12),
            // Basic float: almost no memory.
            Basefp => (2 * 1024, Sequential, 6, 2, 10, 6),
            // Bit manipulation: register-resident, shifts and masks.
            Bitmnp => (4 * 1024, Sequential, 8, 4, 8, 6),
            // Cache buster: designed to defeat caches — strides one full
            // DL1 span so successive accesses conflict in one set.
            Cacheb => (128 * 1024, Strided(4096), 28, 10, 1, 16),
            // CAN remote data: control-flow heavy, tiny state.
            Canrdr => (2 * 1024, Sequential, 8, 4, 4, 3),
            // Inverse DCT: 8x8 blocks, matrix-ish strides.
            Idctrn => (8 * 1024, Strided(256), 20, 8, 3, 10),
            // IIR filter: like FIR.
            Iirflt => (4 * 1024, Sequential, 18, 6, 4, 10),
            // Matrix arithmetic: large, row/column strides.
            Matrix => (48 * 1024, Strided(1024), 26, 8, 2, 14),
            // Pointer chase: dependent random loads.
            Pntrch => (16 * 1024, Random, 24, 2, 2, 8),
            // Pulse-width modulation: control loop.
            Puwmod => (2 * 1024, Sequential, 8, 4, 5, 3),
            // Road speed calculation: control loop.
            Rspeed => (2 * 1024, Sequential, 8, 4, 5, 3),
            // Table lookup: random reads in a mid-size table.
            Tblook => (16 * 1024, Random, 22, 4, 3, 8),
            // Tooth-to-spark: control plus small tables.
            Ttsprk => (8 * 1024, Random, 14, 6, 4, 5),
        };
        AutobenchProfile {
            kernel: self,
            working_set: ws,
            pattern,
            load_pct: loads,
            store_pct: stores,
            alu_per_mem,
            branch_every,
        }
    }
}

impl fmt::Display for AutobenchKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AutobenchKernel::A2time => "a2time",
            AutobenchKernel::Aifftr => "aifftr",
            AutobenchKernel::Aifirf => "aifirf",
            AutobenchKernel::Aiifft => "aiifft",
            AutobenchKernel::Basefp => "basefp",
            AutobenchKernel::Bitmnp => "bitmnp",
            AutobenchKernel::Cacheb => "cacheb",
            AutobenchKernel::Canrdr => "canrdr",
            AutobenchKernel::Idctrn => "idctrn",
            AutobenchKernel::Iirflt => "iirflt",
            AutobenchKernel::Matrix => "matrix",
            AutobenchKernel::Pntrch => "pntrch",
            AutobenchKernel::Puwmod => "puwmod",
            AutobenchKernel::Rspeed => "rspeed",
            AutobenchKernel::Tblook => "tblook",
            AutobenchKernel::Ttsprk => "ttsprk",
        };
        write!(f, "{name}")
    }
}

/// A kernel name that [`AutobenchKernel::from_str`] could not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKernelError {
    /// The offending token.
    pub token: String,
}

impl fmt::Display for ParseKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown Autobench kernel `{}`", self.token)?;
        write!(f, " (expected one of:")?;
        for k in AutobenchKernel::all() {
            write!(f, " {k}")?;
        }
        write!(f, ")")
    }
}

impl std::error::Error for ParseKernelError {}

impl FromStr for AutobenchKernel {
    type Err = ParseKernelError;

    /// Parses the lowercase suite name emitted by `Display`
    /// (`"canrdr"`, `"matrix"`, …), round-tripping every kernel.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AutobenchKernel::all()
            .into_iter()
            .find(|k| k.to_string() == s)
            .ok_or_else(|| ParseKernelError { token: s.to_string() })
    }
}

/// The synthetic behavioural profile of one Autobench kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutobenchProfile {
    /// The kernel this profile models.
    pub kernel: AutobenchKernel,
    /// Data working-set size in bytes.
    pub working_set: u64,
    /// Memory-access pattern.
    pub pattern: StridePattern,
    /// Percentage of body instructions that are loads.
    pub load_pct: u32,
    /// Percentage of body instructions that are stores.
    pub store_pct: u32,
    /// ALU instructions interleaved per memory instruction (approximate
    /// compute-to-memory ratio).
    pub alu_per_mem: u32,
    /// A branch every N instructions (control-flow density).
    pub branch_every: u32,
}

/// Body length of generated programs, in instructions.
const BODY_INSTRS: usize = 256;

impl AutobenchProfile {
    /// Generates a program realising this profile for `core`, with `seed`
    /// fixing the address stream, repeating `iterations` times (or
    /// endlessly when `iterations` is `None`).
    pub fn program(
        &self,
        cfg: &MachineConfig,
        core: CoreId,
        seed: u64,
        iterations: Option<u64>,
    ) -> Program {
        let mut rng = KernelRng::seed_from_u64(seed ^ (core.index() as u64) << 32);
        let line = cfg.dl1.line_bytes;
        let partition = cfg.l2.partition(cfg.num_cores).size_bytes;
        // Per-core disjoint data regions, clear of the instruction sets.
        let base: Addr = partition / 2 + partition * 8 * core.index() as Addr;
        let lines_in_ws = (self.working_set / line).max(1);
        let mut cursor: u64 = 0;
        let mut next_addr = |rng: &mut KernelRng, pattern: StridePattern| -> Addr {
            let line_idx = match pattern {
                StridePattern::Sequential => {
                    cursor = (cursor + 1) % lines_in_ws;
                    cursor
                }
                StridePattern::Strided(s) => {
                    cursor = (cursor + s / line) % lines_in_ws;
                    cursor
                }
                StridePattern::Random => rng.gen_below(lines_in_ws),
            };
            base + line_idx * line
        };

        let mut body = Vec::with_capacity(BODY_INSTRS);
        while body.len() < BODY_INSTRS {
            if self.branch_every > 0
                && body.len() % self.branch_every as usize == self.branch_every as usize - 1
            {
                body.push(Instr::Branch);
                continue;
            }
            let roll = rng.gen_below(100) as u32;
            if roll < self.load_pct {
                body.push(Instr::Load(next_addr(&mut rng, self.pattern)));
                for _ in 0..self.alu_per_mem.min(3) {
                    if body.len() < BODY_INSTRS {
                        body.push(Instr::Alu { latency: 1 });
                    }
                }
            } else if roll < self.load_pct + self.store_pct {
                body.push(Instr::Store(next_addr(&mut rng, self.pattern)));
            } else {
                body.push(Instr::Alu { latency: rng.gen_range(1, 3) });
            }
        }
        match iterations {
            Some(n) => Program::from_body(body, n),
            None => Program::endless(body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_sim::Machine;

    #[test]
    fn all_kernels_have_distinct_profiles_or_names() {
        let all = AutobenchKernel::all();
        assert_eq!(all.len(), 16);
        let mut names: Vec<String> = all.iter().map(|k| k.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 16, "kernel names must be unique");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = MachineConfig::ngmp_ref();
        let p = AutobenchKernel::Matrix.profile();
        let a = p.program(&cfg, CoreId::new(0), 42, Some(3));
        let b = p.program(&cfg, CoreId::new(0), 42, Some(3));
        let c = p.program(&cfg, CoreId::new(0), 43, Some(3));
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds give different address streams");
    }

    #[test]
    fn body_length_is_fixed() {
        let cfg = MachineConfig::ngmp_ref();
        for k in AutobenchKernel::all() {
            let p = k.profile().program(&cfg, CoreId::new(1), 7, Some(1));
            assert_eq!(p.body().len(), BODY_INSTRS, "{k}");
        }
    }

    #[test]
    fn memory_density_tracks_profile() {
        let cfg = MachineConfig::ngmp_ref();
        let dense = AutobenchKernel::Cacheb.profile().program(&cfg, CoreId::new(0), 1, Some(1));
        let sparse = AutobenchKernel::Basefp.profile().program(&cfg, CoreId::new(0), 1, Some(1));
        assert!(
            dense.memory_ops_per_iteration() > 2 * sparse.memory_ops_per_iteration(),
            "cacheb ({}) must be much more memory-hungry than basefp ({})",
            dense.memory_ops_per_iteration(),
            sparse.memory_ops_per_iteration()
        );
    }

    #[test]
    fn addresses_stay_inside_working_set_region() {
        let cfg = MachineConfig::ngmp_ref();
        let profile = AutobenchKernel::Tblook.profile();
        let p = profile.program(&cfg, CoreId::new(0), 9, Some(1));
        let partition = cfg.l2.partition(cfg.num_cores).size_bytes;
        let base = partition / 2;
        for i in p.body() {
            if let Instr::Load(a) | Instr::Store(a) = *i {
                assert!(a >= base && a < base + profile.working_set + partition);
            }
        }
    }

    #[test]
    fn eembc_programs_run_to_completion() {
        let cfg = MachineConfig::ngmp_ref();
        let mut m = Machine::new(cfg.clone()).expect("config");
        let p = AutobenchKernel::Canrdr.profile().program(&cfg, CoreId::new(0), 5, Some(50));
        m.load_program(CoreId::new(0), p);
        let s = m.run().expect("run");
        assert!(s.core(CoreId::new(0)).completed());
    }

    #[test]
    fn eembc_does_not_saturate_the_bus() {
        // The Fig. 6(a) premise: real workloads leave the bus mostly idle.
        let cfg = MachineConfig::ngmp_ref();
        let mut m = Machine::new(cfg.clone()).expect("config");
        for i in 0..4 {
            let k = AutobenchKernel::all()[i * 3];
            let prog = k.profile().program(&cfg, CoreId::new(i), 11 + i as u64, None);
            m.load_program(CoreId::new(i), prog);
        }
        let s = m.run_for(200_000);
        assert!(
            s.bus_utilization < 0.9,
            "EEMBC-profile workloads must not saturate the bus (got {})",
            s.bus_utilization
        );
    }
}
