//! Address-layout arithmetic for kernel construction.
//!
//! The paper's rsk (§2) needs `W + 1` load addresses that
//!
//! 1. all map to the **same DL1 set** (so a `W`-way LRU/FIFO set thrashes
//!    and every access misses DL1), and
//! 2. all **fit in the core's L2 partition** without evicting each other
//!    or the kernel's own instruction lines (so every bus request is an
//!    L2 hit with the maximal occupancy).
//!
//! This module derives such layouts from a [`MachineConfig`] instead of
//! hard-coding NGMP constants, so the same kernels work on the toy and
//! swept configurations of the ablation benches.

use rrb_sim::{Addr, CoreId, MachineConfig};

/// A derived data-address layout for one core's kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataLayout {
    /// First data address.
    pub base: Addr,
    /// Stride between consecutive conflict addresses (one full DL1 span,
    /// so consecutive addresses share a DL1 set).
    pub stride: Addr,
    /// Number of conflict addresses available before the layout would
    /// wrap onto its own L2 sets.
    pub max_lines: u64,
}

impl DataLayout {
    /// Derives the layout for `core` under `cfg`.
    ///
    /// The base sits halfway through the core's L2 partition so the low
    /// L2 sets — which hold the kernel's instruction lines (instruction
    /// regions start at a 2^n boundary and therefore map to L2 set 0
    /// onward) — are never evicted by data. Each core gets a disjoint
    /// address range so DRAM rows are not shared between cores.
    pub fn for_core(cfg: &MachineConfig, core: CoreId) -> Self {
        let line = cfg.dl1.line_bytes;
        let dl1_span = cfg.dl1.sets() * line; // stride keeping the DL1 set
        let partition_bytes = cfg.l2.partition(cfg.num_cores).size_bytes;
        let half = partition_bytes / 2;
        // Keep the base DL1-set aligned: round half down to a DL1 span.
        let base_offset = half / dl1_span * dl1_span;
        let core_region = partition_bytes * 4; // disjoint per-core regions
        let base = base_offset + core_region * core.index() as Addr;
        // Data occupies L2 sets base_offset/line + i * dl1_sets; it may
        // use the upper half of the partition before wrapping onto the
        // instruction sets.
        let l2_sets = partition_bytes / line;
        let dl1_sets = cfg.dl1.sets();
        let max_lines = ((l2_sets - base_offset / line) / dl1_sets).max(1);
        DataLayout { base, stride: dl1_span, max_lines }
    }

    /// The `i`-th conflict address.
    pub fn addr(&self, i: u64) -> Addr {
        self.base + i * self.stride
    }

    /// The first `n` conflict addresses.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`DataLayout::max_lines`]; such a layout
    /// would evict its own instruction lines from the L2 partition and
    /// silently break the "all requests hit L2" property.
    pub fn addrs(&self, n: u64) -> Vec<Addr> {
        assert!(
            n <= self.max_lines,
            "requested {n} conflict lines but the layout supports {}",
            self.max_lines
        );
        (0..n).map(|i| self.addr(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_sim::{Cache, CoreId};

    #[test]
    fn ngmp_layout_matches_hand_computed_values() {
        let cfg = MachineConfig::ngmp_ref();
        let l = DataLayout::for_core(&cfg, CoreId::new(0));
        assert_eq!(l.stride, 4096, "128 sets * 32 B");
        assert_eq!(l.base, 32 * 1024, "half of the 64 KB partition");
        assert!(l.max_lines >= 5, "need W+1 = 5 lines");
    }

    #[test]
    fn all_addresses_share_one_dl1_set() {
        let cfg = MachineConfig::ngmp_ref();
        let l = DataLayout::for_core(&cfg, CoreId::new(2));
        let dl1 = Cache::new(cfg.dl1);
        let sets: Vec<usize> = l.addrs(5).iter().map(|&a| dl1.set_of(a)).collect();
        assert!(sets.windows(2).all(|w| w[0] == w[1]), "sets: {sets:?}");
    }

    #[test]
    fn addresses_map_to_distinct_l2_sets() {
        let cfg = MachineConfig::ngmp_ref();
        let l = DataLayout::for_core(&cfg, CoreId::new(0));
        let part = Cache::new(cfg.l2.partition(cfg.num_cores));
        let mut sets: Vec<usize> = l.addrs(5).iter().map(|&a| part.set_of(a)).collect();
        sets.sort_unstable();
        sets.dedup();
        assert_eq!(sets.len(), 5, "L2 sets must be distinct");
    }

    #[test]
    fn data_avoids_low_l2_sets_reserved_for_instructions() {
        let cfg = MachineConfig::ngmp_ref();
        let l = DataLayout::for_core(&cfg, CoreId::new(0));
        let part = Cache::new(cfg.l2.partition(cfg.num_cores));
        for &a in &l.addrs(5) {
            assert!(
                part.set_of(a) >= 1024,
                "data at 0x{a:x} lands in instruction sets (set {})",
                part.set_of(a)
            );
        }
    }

    #[test]
    fn cores_get_disjoint_regions() {
        let cfg = MachineConfig::ngmp_ref();
        let spans: Vec<(Addr, Addr)> = (0..4)
            .map(|i| {
                let l = DataLayout::for_core(&cfg, CoreId::new(i));
                (l.addr(0), l.addr(4))
            })
            .collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    spans[i].1 < spans[j].0 || spans[j].1 < spans[i].0,
                    "core {i} and {j} overlap: {spans:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "conflict lines")]
    fn oversubscribing_layout_panics() {
        let cfg = MachineConfig::ngmp_ref();
        let l = DataLayout::for_core(&cfg, CoreId::new(0));
        let _ = l.addrs(l.max_lines + 1);
    }

    #[test]
    fn variant_architecture_layout_is_identical() {
        // Only latencies differ between ref and var; geometry is shared.
        let a = DataLayout::for_core(&MachineConfig::ngmp_ref(), CoreId::new(0));
        let b = DataLayout::for_core(&MachineConfig::ngmp_var(), CoreId::new(0));
        assert_eq!(a, b);
    }
}
