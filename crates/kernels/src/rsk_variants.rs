//! Alternative resource-stressing kernel designs.
//!
//! §2 notes that beyond the same-set `W + 1` construction, "other rsk
//! designs focusing on exceeding cache capacity, not a single set, can be
//! easily implemented". This module provides those designs, plus kernels
//! that press on the *memory controller* instead of the bus — useful as
//! negative controls (they must NOT exhibit the bus saw-tooth) and for
//! characterising the DRAM substrate.

use crate::layout::DataLayout;
use crate::rsk::AccessKind;
use rrb_sim::{Addr, CoreId, Instr, MachineConfig, Program, ProgramBuilder};

/// An rsk that exceeds the whole DL1 *capacity* instead of one set: it
/// streams through `capacity_factor` times the DL1 size at line
/// granularity. With a working set strictly larger than DL1, steady-state
/// accesses miss DL1; the footprint still fits the L2 partition, so every
/// request is an L2 hit, as the bus-stressing role requires.
///
/// # Panics
///
/// Panics if the resulting working set does not fit the core's L2
/// partition (which would silently break the L2-hit property), or if
/// `capacity_factor < 2` (the stream must exceed DL1).
///
/// ```
/// use rrb_sim::{MachineConfig, CoreId};
/// use rrb_kernels::rsk_variants::rsk_capacity;
/// let cfg = MachineConfig::ngmp_ref();
/// let p = rsk_capacity(rrb_kernels::AccessKind::Load, &cfg, CoreId::new(0), 2);
/// // 2x the 16 KB DL1 at 32-byte lines = 1024 loads per iteration.
/// assert_eq!(p.memory_ops_per_iteration(), 1024);
/// ```
pub fn rsk_capacity(
    access: AccessKind,
    cfg: &MachineConfig,
    core: CoreId,
    capacity_factor: u64,
) -> Program {
    assert!(capacity_factor >= 2, "the stream must exceed the DL1 capacity");
    let line = cfg.dl1.line_bytes;
    let ws = cfg.dl1.size_bytes * capacity_factor;
    let partition = cfg.l2.partition(cfg.num_cores).size_bytes;
    assert!(
        ws <= partition / 2,
        "working set {ws} B exceeds half the {partition} B L2 partition; \
         the kernel would stop hitting in L2"
    );
    // Base in the data half of the partition, per-core disjoint.
    let base: Addr = partition / 2 + partition * 4 * core.index() as Addr;
    let mut b = ProgramBuilder::new();
    for i in 0..(ws / line) {
        let addr = base + i * line;
        b = match access {
            AccessKind::Load => b.load(addr),
            AccessKind::Store => b.store(addr),
        };
    }
    b.endless().build()
}

/// A dependent pointer-chase kernel: each load's address is a fixed
/// pseudo-random permutation step over the working set, so consecutive
/// requests cannot be overlapped even on a machine with more memory-level
/// parallelism than ours. Deterministic for a given `seed`.
pub fn rsk_pointer_chase(cfg: &MachineConfig, core: CoreId, lines: u64, seed: u64) -> Program {
    let layout = DataLayout::for_core(cfg, core);
    let n = lines.max(2).min(layout.max_lines);
    // A simple LCG-walk permutation over the n conflict lines, seeded
    // through a splitmix-style mix so neighbouring seeds diverge.
    let mut order: Vec<u64> = (0..n).collect();
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    state = (state ^ (state >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    state = (state ^ (state >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    state ^= state >> 31;
    for i in (1..n as usize).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    let mut b = ProgramBuilder::new();
    for &i in &order {
        b = b.load(layout.addr(i));
    }
    b.endless().build()
}

/// A memory-controller stressing kernel: every access misses both DL1 and
/// the L2 partition (the working set exceeds the partition), so each
/// request crosses the bus as a *split* transaction and queues at the
/// DRAM controller. A negative control for the bus methodology: the
/// slowdown is dominated by DRAM banking, not by the RR window.
pub fn rsk_l2_miss(cfg: &MachineConfig, core: CoreId) -> Program {
    let line = cfg.dl1.line_bytes;
    let partition = cfg.l2.partition(cfg.num_cores).size_bytes;
    // Twice the partition, strided by one DL1 span so DL1 also misses.
    let dl1_span = cfg.dl1.sets() * line;
    let count = 2 * partition / dl1_span;
    let base: Addr = 0x4000_0000 + 0x0400_0000 * core.index() as Addr;
    let mut b = ProgramBuilder::new();
    for i in 0..count {
        b = b.load(base + i * dl1_span);
    }
    b.endless().build()
}

/// The finite, nop-padded variant of [`rsk_l2_miss`]: the same
/// partition-exceeding stride (every access misses DL1 *and* the L2
/// partition, so each request queues at the memory controller), but with
/// `nops` padding appended per iteration and a bounded iteration count so
/// the program terminates. This is the observed kernel when replaying a
/// memory-controller witness: the nop padding plays the §4 saw-tooth
/// role, sweeping the request stream through arrival alignments.
pub fn rsk_l2_miss_nop(cfg: &MachineConfig, core: CoreId, nops: u64, iterations: u64) -> Program {
    let line = cfg.dl1.line_bytes;
    let partition = cfg.l2.partition(cfg.num_cores).size_bytes;
    let dl1_span = cfg.dl1.sets() * line;
    let count = 2 * partition / dl1_span;
    let base: Addr = 0x4000_0000 + 0x0400_0000 * core.index() as Addr;
    let mut b = ProgramBuilder::new();
    for i in 0..count {
        b = b.load(base + i * dl1_span);
    }
    b.nops(nops as usize).iterations(iterations).build()
}

/// A mixed kernel: alternating loads and stores over the conflict lines,
/// exercising the interaction between the load path and the store buffer.
pub fn rsk_mixed(cfg: &MachineConfig, core: CoreId, iterations: Option<u64>) -> Program {
    let layout = DataLayout::for_core(cfg, core);
    let lines = u64::from(cfg.dl1.ways) + 1;
    let addrs = layout.addrs(lines);
    let mut body = Vec::new();
    for (i, &a) in addrs.iter().enumerate() {
        if i % 2 == 0 {
            body.push(Instr::Load(a));
        } else {
            body.push(Instr::Store(a));
        }
    }
    match iterations {
        Some(n) => Program::from_body(body, n),
        None => Program::endless(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_sim::Machine;

    fn run_alone(cfg: &MachineConfig, p: Program, cycles: u64) -> Machine {
        let mut m = Machine::new(cfg.clone()).expect("config");
        // Endless kernels: bound the run.
        m.load_program(CoreId::new(0), p);
        m.run_for(cycles);
        m
    }

    #[test]
    fn capacity_rsk_misses_dl1_in_steady_state() {
        let cfg = MachineConfig::ngmp_ref();
        let p = rsk_capacity(AccessKind::Load, &cfg, CoreId::new(0), 2);
        let m = run_alone(&cfg, p, 120_000);
        let stats = m.dl1_stats(CoreId::new(0));
        // The stream is longer than DL1: in steady state everything
        // misses; allow the first-pass compulsory fills in the ratio.
        assert!(stats.misses > stats.hits * 50, "{stats:?}");
    }

    #[test]
    fn capacity_rsk_hits_l2_in_steady_state() {
        let cfg = MachineConfig::ngmp_ref();
        let p = rsk_capacity(AccessKind::Load, &cfg, CoreId::new(0), 2);
        let m = run_alone(&cfg, p, 300_000);
        let pmc = m.pmc().core(CoreId::new(0));
        // One compulsory L2 miss per line; thereafter all hits.
        assert!(pmc.l2_hits > pmc.l2_misses * 2, "hits {} misses {}", pmc.l2_hits, pmc.l2_misses);
    }

    #[test]
    #[should_panic(expected = "exceed the DL1 capacity")]
    fn capacity_factor_one_is_rejected() {
        let cfg = MachineConfig::ngmp_ref();
        let _ = rsk_capacity(AccessKind::Load, &cfg, CoreId::new(0), 1);
    }

    #[test]
    fn pointer_chase_is_deterministic_and_permutes() {
        let cfg = MachineConfig::ngmp_ref();
        let a = rsk_pointer_chase(&cfg, CoreId::new(0), 5, 42);
        let b = rsk_pointer_chase(&cfg, CoreId::new(0), 5, 42);
        let c = rsk_pointer_chase(&cfg, CoreId::new(0), 5, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Every conflict line appears exactly once.
        let mut addrs: Vec<_> = a
            .body()
            .iter()
            .map(|i| match i {
                Instr::Load(a) => *a,
                other => panic!("unexpected {other}"),
            })
            .collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 5);
    }

    #[test]
    fn pointer_chase_misses_dl1_every_time() {
        let cfg = MachineConfig::ngmp_ref();
        let p = rsk_pointer_chase(&cfg, CoreId::new(0), 5, 7);
        let m = run_alone(&cfg, p, 30_000);
        assert_eq!(m.dl1_stats(CoreId::new(0)).hits, 0);
    }

    #[test]
    fn l2_miss_kernel_reaches_dram() {
        let cfg = MachineConfig::ngmp_ref();
        let p = rsk_l2_miss(&cfg, CoreId::new(0));
        let m = run_alone(&cfg, p, 100_000);
        assert!(
            m.dram().stats().requests > 100,
            "memory kernel must generate DRAM traffic, got {}",
            m.dram().stats().requests
        );
    }

    #[test]
    fn mixed_kernel_generates_loads_and_stores() {
        let cfg = MachineConfig::ngmp_ref();
        let p = rsk_mixed(&cfg, CoreId::new(0), Some(100));
        let loads = p.body().iter().filter(|i| matches!(i, Instr::Load(_))).count();
        let stores = p.body().iter().filter(|i| matches!(i, Instr::Store(_))).count();
        assert!(loads >= 2 && stores >= 2);
        let mut m = Machine::new(cfg.clone()).expect("config");
        m.load_program(CoreId::new(0), p);
        let s = m.run().expect("run");
        assert!(s.core(CoreId::new(0)).completed());
    }
}
