//! A tiny, deterministic pseudo-random number generator.
//!
//! The workload generators need reproducible randomness (the paper's
//! Fig. 6(a) draws "randomly generated 4-task workloads" from fixed
//! seeds), but the workspace builds offline with the std library only, so
//! this module supplies a splitmix64-seeded xoshiro256** generator
//! instead of an external crate. Streams are stable across platforms and
//! releases: campaign results keyed by seed stay comparable over time.

/// A seedable, deterministic PRNG (xoshiro256** seeded via splitmix64).
#[derive(Debug, Clone)]
pub struct KernelRng {
    s: [u64; 4],
}

impl KernelRng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 expansion of the seed into the xoshiro state, as
        // recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        KernelRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, bound)` (debiased by rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below bound must be positive");
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform draw from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi");
        lo + self.gen_below(hi - lo)
    }

    /// An in-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = KernelRng::seed_from_u64(42);
        let mut b = KernelRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = KernelRng::seed_from_u64(1);
        let mut b = KernelRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_below_respects_bound() {
        let mut rng = KernelRng::seed_from_u64(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.gen_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_interval() {
        let mut rng = KernelRng::seed_from_u64(9);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let v = rng.gen_range(3, 7);
            assert!((3..7).contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 4, "all four values must appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = KernelRng::seed_from_u64(11);
        let mut v: Vec<u64> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 20-element shuffle staying sorted is astronomically unlikely");
    }
}
