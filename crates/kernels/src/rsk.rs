//! Resource-stressing kernels (rsk) and the `rsk-nop(t, k)` variant.
//!
//! Following §2, an rsk is a loop of `W + 1` same-type memory instructions
//! (where `W` is the DL1 associativity) whose addresses share one DL1 set
//! and fit the L2: every access misses DL1 and hits L2, maximising bus
//! pressure with the shortest possible turn-around.
//!
//! `rsk-nop(t, k)` (§4.1, Fig. 1(b)) inserts `k` nops after every memory
//! instruction, stretching the injection time from `δ_rsk` to
//! `δ_rsk + k·δ_nop` and thereby walking the saw-tooth of Eq. 2.
//!
//! The paper unrolls loop bodies "as much as possible not to cause
//! instruction cache misses", keeping loop-control overhead under 2 %
//! (§5.2). The builder exposes the same choice: [`RskBuilder::unroll`]
//! replicates the body and [`RskBuilder::with_branch`] appends the
//! loop-control instruction the unrolling amortises.

use crate::layout::DataLayout;
use rrb_sim::{CoreId, MachineConfig, Program, ProgramBuilder};
use std::fmt;
use std::str::FromStr;

/// The type `t` of the bus-accessing instruction in `rsk(t)` and
/// `rsk-nop(t, k)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Load instructions — the paper's default; an L2 load hit keeps the
    /// bus busy until the L2 answers, producing the highest contention.
    Load,
    /// Store instructions — buffered by the store buffer (§5.3).
    Store,
}

impl fmt::Display for AccessKind {
    /// The canonical token (`load` / `store`), round-tripped by
    /// [`AccessKind::from_str`] and shared by the CLI and the
    /// experiment-file schema.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => write!(f, "load"),
            AccessKind::Store => write!(f, "store"),
        }
    }
}

/// An access-kind token that [`AccessKind::from_str`] could not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAccessError {
    /// The offending token.
    pub token: String,
}

impl ParseAccessError {
    /// The canonical tokens, for error messages and CLI help.
    pub const ALLOWED: &'static str = "load, store";
}

impl fmt::Display for ParseAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown access kind `{}` (expected one of: {})", self.token, Self::ALLOWED)
    }
}

impl std::error::Error for ParseAccessError {}

impl FromStr for AccessKind {
    type Err = ParseAccessError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "load" => Ok(AccessKind::Load),
            "store" => Ok(AccessKind::Store),
            other => Err(ParseAccessError { token: other.to_string() }),
        }
    }
}

/// Builder for rsk / rsk-nop programs.
///
/// ```
/// use rrb_sim::{MachineConfig, CoreId};
/// use rrb_kernels::{AccessKind, RskBuilder};
///
/// let cfg = MachineConfig::ngmp_ref();
/// // rsk-nop(load, k=2), 1000 iterations, unrolled 4x:
/// let p = RskBuilder::new(AccessKind::Load)
///     .nops(2)
///     .unroll(4)
///     .iterations(1000)
///     .build(&cfg, CoreId::new(0));
/// // Each unrolled body: 4 * 5 groups of (load + 2 nops).
/// assert_eq!(p.body().len(), 4 * 5 * 3);
/// assert_eq!(p.memory_ops_per_iteration(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct RskBuilder {
    access: AccessKind,
    nops: usize,
    unroll: usize,
    branch: bool,
    iterations: Option<u64>,
    lines_override: Option<u64>,
}

impl RskBuilder {
    /// A builder for an rsk of the given access type with no nops, no
    /// unrolling, no loop-control overhead, running endlessly.
    pub fn new(access: AccessKind) -> Self {
        RskBuilder {
            access,
            nops: 0,
            unroll: 1,
            branch: false,
            iterations: None,
            lines_override: None,
        }
    }

    /// Sets `k`, the number of nops after each memory instruction.
    pub fn nops(mut self, k: usize) -> Self {
        self.nops = k;
        self
    }

    /// Replicates the body `factor` times (paper's unrolling).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn unroll(mut self, factor: usize) -> Self {
        assert!(factor > 0, "unroll factor must be at least 1");
        self.unroll = factor;
        self
    }

    /// Appends an explicit loop-control instruction to the body,
    /// modelling a non-unrolled loop's compare-and-branch overhead.
    pub fn with_branch(mut self, branch: bool) -> Self {
        self.branch = branch;
        self
    }

    /// Runs the kernel for `n` iterations of the (unrolled) body.
    pub fn iterations(mut self, n: u64) -> Self {
        self.iterations = Some(n);
        self
    }

    /// Runs the kernel until the machine stops (contender role).
    pub fn endless(mut self) -> Self {
        self.iterations = None;
        self
    }

    /// Overrides the number of conflict lines (default `W + 1`).
    ///
    /// Useful for building kernels that *fail* to thrash DL1 (`W` lines)
    /// in negative tests.
    pub fn lines(mut self, lines: u64) -> Self {
        self.lines_override = Some(lines);
        self
    }

    /// Materialises the program for `core` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the derived layout cannot supply enough conflict lines
    /// (see [`DataLayout::addrs`]).
    pub fn build(&self, cfg: &MachineConfig, core: CoreId) -> Program {
        let lines = self.lines_override.unwrap_or(u64::from(cfg.dl1.ways) + 1);
        let layout = DataLayout::for_core(cfg, core);
        let addrs = layout.addrs(lines);
        let mut b = ProgramBuilder::new();
        for _ in 0..self.unroll {
            for &a in &addrs {
                b = match self.access {
                    AccessKind::Load => b.load(a),
                    AccessKind::Store => b.store(a),
                };
                b = b.nops(self.nops);
            }
        }
        if self.branch {
            b = b.branch();
        }
        match self.iterations {
            Some(n) => b.iterations(n).build(),
            None => b.endless().build(),
        }
    }
}

/// The plain rsk of §2: `rsk(t)`, endless, suitable as a contender.
///
/// ```
/// use rrb_sim::{MachineConfig, CoreId};
/// use rrb_kernels::{rsk, AccessKind};
/// let p = rsk(AccessKind::Load, &MachineConfig::ngmp_ref(), CoreId::new(1));
/// assert_eq!(p.memory_ops_per_iteration(), 5); // W + 1
/// ```
pub fn rsk(access: AccessKind, cfg: &MachineConfig, core: CoreId) -> Program {
    RskBuilder::new(access).endless().build(cfg, core)
}

/// The paper's `rsk-nop(t, k)` (§4.1) as a finite scua with `iterations`
/// body repetitions.
///
/// ```
/// use rrb_sim::{MachineConfig, CoreId};
/// use rrb_kernels::{rsk_nop, AccessKind};
/// let p = rsk_nop(AccessKind::Load, 6, &MachineConfig::ngmp_ref(), CoreId::new(0), 500);
/// assert_eq!(p.body().len(), 5 * 7); // 5 loads, each followed by 6 nops
/// ```
pub fn rsk_nop(
    access: AccessKind,
    k: usize,
    cfg: &MachineConfig,
    core: CoreId,
    iterations: u64,
) -> Program {
    RskBuilder::new(access).nops(k).iterations(iterations).build(cfg, core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_sim::{Instr, Iterations, Machine};

    #[test]
    fn rsk_has_w_plus_one_memory_ops() {
        let cfg = MachineConfig::ngmp_ref();
        let p = rsk(AccessKind::Load, &cfg, CoreId::new(0));
        assert_eq!(p.memory_ops_per_iteration(), u64::from(cfg.dl1.ways) + 1);
        assert_eq!(p.iterations(), Iterations::Infinite);
        assert!(p.body().iter().all(|i| matches!(i, Instr::Load(_))));
    }

    #[test]
    fn rsk_nop_interleaves_k_nops() {
        let cfg = MachineConfig::ngmp_ref();
        let p = rsk_nop(AccessKind::Load, 3, &cfg, CoreId::new(0), 10);
        let body = p.body();
        assert_eq!(body.len(), 5 * 4);
        for chunk in body.chunks(4) {
            assert!(matches!(chunk[0], Instr::Load(_)));
            assert!(chunk[1..].iter().all(|i| *i == Instr::Nop));
        }
    }

    #[test]
    fn store_rsk_uses_stores() {
        let cfg = MachineConfig::ngmp_ref();
        let p = rsk(AccessKind::Store, &cfg, CoreId::new(0));
        assert!(p.body().iter().all(|i| matches!(i, Instr::Store(_))));
    }

    #[test]
    fn unroll_replicates_body_and_branch_is_appended_once() {
        let cfg = MachineConfig::ngmp_ref();
        let p = RskBuilder::new(AccessKind::Load)
            .unroll(8)
            .with_branch(true)
            .iterations(1)
            .build(&cfg, CoreId::new(0));
        assert_eq!(p.body().len(), 8 * 5 + 1);
        assert_eq!(*p.body().last().expect("non-empty"), Instr::Branch);
    }

    #[test]
    fn rsk_misses_dl1_and_hits_l2_in_steady_state() {
        // End-to-end property: run the generated kernel on the machine it
        // was generated for and check the §2 invariants.
        let cfg = MachineConfig::ngmp_ref();
        let mut m = Machine::new(cfg.clone()).expect("config");
        let p = RskBuilder::new(AccessKind::Load).iterations(200).build(&cfg, CoreId::new(0));
        m.load_program(CoreId::new(0), p);
        m.run().expect("run");
        let dl1 = m.dl1_stats(CoreId::new(0));
        assert_eq!(dl1.hits, 0, "rsk loads must never hit DL1");
        let pmc = m.pmc().core(CoreId::new(0));
        assert!(pmc.l2_misses <= 8, "only cold misses may go to memory, got {}", pmc.l2_misses);
    }

    #[test]
    fn w_lines_kernel_hits_dl1_after_warmup() {
        // Negative control: with exactly W lines the set does not thrash.
        let cfg = MachineConfig::ngmp_ref();
        let mut m = Machine::new(cfg.clone()).expect("config");
        let p = RskBuilder::new(AccessKind::Load)
            .lines(u64::from(cfg.dl1.ways))
            .iterations(200)
            .build(&cfg, CoreId::new(0));
        m.load_program(CoreId::new(0), p);
        m.run().expect("run");
        let dl1 = m.dl1_stats(CoreId::new(0));
        assert!(dl1.hits > dl1.misses * 10, "W lines must mostly hit: {dl1:?}");
    }

    #[test]
    fn variant_architecture_rsk_is_program_identical() {
        // Same program text; only the machine latencies differ.
        let a = rsk(AccessKind::Load, &MachineConfig::ngmp_ref(), CoreId::new(0));
        let b = rsk(AccessKind::Load, &MachineConfig::ngmp_var(), CoreId::new(0));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "unroll factor")]
    fn zero_unroll_panics() {
        let _ = RskBuilder::new(AccessKind::Load).unroll(0);
    }

    #[test]
    fn access_kind_display() {
        assert_eq!(AccessKind::Load.to_string(), "load");
        assert_eq!(AccessKind::Store.to_string(), "store");
    }
}
