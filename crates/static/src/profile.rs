//! Abstract interpretation of [`Program`] bodies into per-core demand
//! profiles.
//!
//! The profile is a sound over-approximation of what a core can ask of the
//! shared resources, derived from the instruction stream and the machine
//! config alone:
//!
//! * every load is assumed to miss DL1 and L2 (two bus transactions —
//!   request plus refill — and one memory-controller admission);
//! * every store is one bus transaction (write-through stores terminate at
//!   the L2 and never reach the memory controller);
//! * instruction fetches account for at most one miss per instruction-cache
//!   line per iteration — or once overall when the body fits the IL1.
//!
//! The gap bound goes the other way (a sound *under*-approximation of the
//! core-side cycles between consecutive requests), so that request-rate
//! curves built from it over-count arrivals.

use rrb_sim::{Instr, Iterations, MachineConfig, Program};

/// Static demand profile of one core's program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreProfile {
    /// Upper bound on bus transactions over the whole run (`None` =
    /// endless program, unbounded count).
    pub bus_requests: Option<u64>,
    /// Upper bound on memory-controller admissions over the whole run.
    pub mc_requests: Option<u64>,
    /// Lower bound on core-side cycles between one request's data return
    /// and the next request becoming ready (0 = back-to-back).
    pub min_gap: u64,
    /// Upper bound on the contention-free makespan, for finite programs.
    pub isolated_cycles: Option<u64>,
}

impl CoreProfile {
    /// Profile of a core with no program loaded: it never requests.
    pub fn idle() -> Self {
        CoreProfile {
            bus_requests: Some(0),
            mc_requests: Some(0),
            min_gap: u64::MAX,
            isolated_cycles: Some(0),
        }
    }

    /// Worst-case envelope: an endless program that saturates the bus with
    /// back-to-back requests. Used when no program is known for a core.
    pub fn saturating() -> Self {
        CoreProfile { bus_requests: None, mc_requests: None, min_gap: 0, isolated_cycles: None }
    }

    /// Pointwise worst case of two profiles (the abstract-domain join):
    /// larger request counts (`None` = unbounded wins), smaller gap,
    /// larger makespan. A program bounded by both inputs is bounded by
    /// the join.
    pub fn join(&self, other: &CoreProfile) -> CoreProfile {
        fn max_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
            Some(a?.max(b?))
        }
        CoreProfile {
            bus_requests: max_opt(self.bus_requests, other.bus_requests),
            mc_requests: max_opt(self.mc_requests, other.mc_requests),
            min_gap: self.min_gap.min(other.min_gap),
            isolated_cycles: max_opt(self.isolated_cycles, other.isolated_cycles),
        }
    }

    /// Whether the core can issue any shared-resource request at all.
    pub fn issues_requests(&self) -> bool {
        self.bus_requests != Some(0)
    }

    /// Whether the program is finite (bounded request count and makespan).
    pub fn is_finite(&self) -> bool {
        self.bus_requests.is_some() && self.isolated_cycles.is_some()
    }
}

/// Bytes per fetched instruction (mirrors the core model's fetch stream).
pub(crate) const INSTR_BYTES: u64 = 4;

/// Worst-case DRAM service time for one request behind the controller.
fn dram_worst(cfg: &MachineConfig) -> u64 {
    let d = &cfg.dram;
    d.controller_overhead
        .saturating_add(d.t_rp)
        .saturating_add(d.t_rcd)
        .saturating_add(d.t_cl)
        .saturating_add(d.burst)
}

/// Derives a sound [`CoreProfile`] for `program` running on `cfg`.
pub fn profile_program(program: &Program, cfg: &MachineConfig) -> CoreProfile {
    let body = program.body();
    if body.is_empty() {
        return CoreProfile::idle();
    }

    let loads = body.iter().filter(|i| matches!(i, Instr::Load(_))).count() as u64;
    let stores = body.iter().filter(|i| matches!(i, Instr::Store(_))).count() as u64;

    // Instruction-fetch misses: the body occupies `body_lines` consecutive
    // IL1 lines. If the whole body fits the IL1 it is fetched from memory
    // at most once (cold misses only); otherwise every line may miss on
    // every iteration.
    let line = cfg.il1.line_bytes.max(1);
    let body_lines = (body.len() as u64).saturating_mul(INSTR_BYTES).div_ceil(line);
    let il1_lines = cfg.il1.size_bytes / line;
    let body_fits_il1 = body_lines <= il1_lines;

    // Bus transactions per iteration, steady state: each load may split
    // into request + refill, each store is a single write.
    let data_bus_per_iter = loads.saturating_mul(2).saturating_add(stores);
    let ifetch_bus_per_iter = if body_fits_il1 { 0 } else { body_lines.saturating_mul(2) };
    // Memory-controller admissions: only L2-missing loads and fetches.
    let data_mc_per_iter = loads;
    let ifetch_mc_per_iter = if body_fits_il1 { 0 } else { body_lines };
    // Cold instruction fetches happen once regardless of iteration count.
    let cold_ifetch_bus = body_lines.saturating_mul(2);
    let cold_ifetch_mc = body_lines;

    let (bus_requests, mc_requests) = match program.iterations() {
        Iterations::Finite(n) => (
            Some(
                n.saturating_mul(data_bus_per_iter.saturating_add(ifetch_bus_per_iter))
                    .saturating_add(cold_ifetch_bus),
            ),
            Some(
                n.saturating_mul(data_mc_per_iter.saturating_add(ifetch_mc_per_iter))
                    .saturating_add(cold_ifetch_mc),
            ),
        ),
        Iterations::Infinite => (None, None),
    };

    let min_gap = min_request_gap(body, cfg, stores > 0, body_fits_il1);
    let isolated_cycles = match program.iterations() {
        Iterations::Finite(n) => Some(isolated_makespan(body, cfg, n)),
        Iterations::Infinite => None,
    };

    CoreProfile { bus_requests, mc_requests, min_gap, isolated_cycles }
}

/// Whether `program` posts no shared-resource requests in steady state.
/// Decided by the must/may cache classification ([`crate::cache`]): when
/// the replay converges on a per-iteration fixpoint, the program is
/// silent iff the steady-state iteration provably posts zero bus and
/// zero memory-controller requests — which also recognises data accesses
/// that *always hit* their private caches after the cold fill, not just
/// access-free bodies. When the replay does not converge, falls back to
/// the conservative syntactic check (no data accesses, body fits the
/// IL1).
pub fn steady_state_silent(program: &Program, cfg: &MachineConfig) -> bool {
    let classes = crate::cache::classify_accesses(program, cfg, rrb_sim::CoreId::new(0));
    if classes.converged {
        return classes.steady_bus_per_iter == 0 && classes.steady_mc_per_iter == 0;
    }
    let body = program.body();
    if body.iter().any(Instr::accesses_memory) {
        return false;
    }
    let line = cfg.il1.line_bytes.max(1);
    let body_lines = (body.len() as u64).saturating_mul(INSTR_BYTES).div_ceil(line);
    body_lines <= cfg.il1.size_bytes / line
}

/// Core-side latency an instruction burns before the next one can issue,
/// excluding any shared-resource service time.
pub(crate) fn local_latency(instr: &Instr, cfg: &MachineConfig) -> u64 {
    match instr {
        Instr::Load(_) | Instr::Store(_) => 0,
        Instr::Nop => cfg.nop_latency,
        Instr::Alu { latency } => *latency,
        Instr::Branch => cfg.branch_latency,
    }
}

/// Sound lower bound on the gap between consecutive shared-resource
/// requests of this core.
fn min_request_gap(
    body: &[Instr],
    cfg: &MachineConfig,
    has_stores: bool,
    body_fits_il1: bool,
) -> u64 {
    // Buffered stores drain back-to-back, and a body that streams through
    // the IL1 can fetch-miss on adjacent instructions: no usable gap.
    if has_stores || !body_fits_il1 {
        return 0;
    }
    let mem_positions: Vec<usize> =
        body.iter().enumerate().filter(|(_, i)| i.accesses_memory()).map(|(p, _)| p).collect();
    if mem_positions.is_empty() {
        return u64::MAX;
    }
    // On this path every request is a demand load or a cold ifetch, and
    // either way the requester performs an L1 lookup between dispatch and
    // the request becoming ready — so even back-to-back loads are
    // separated by at least the smaller L1 latency. (Store-buffer drains,
    // the one mechanism that posts with no lookup in between, are
    // excluded above.)
    let lookup = cfg.dl1.latency.min(cfg.il1.latency);
    // Circular minimum over the latencies of instructions between
    // consecutive memory ops (the body loops), plus the next request's
    // lookup.
    let mut min_gap = u64::MAX;
    let k = mem_positions.len();
    for idx in 0..k {
        let start = mem_positions[idx];
        let end = mem_positions[(idx + 1) % k];
        let mut gap = 0u64;
        let mut p = (start + 1) % body.len();
        while p != end {
            gap = gap.saturating_add(local_latency(&body[p], cfg));
            p = (p + 1) % body.len();
        }
        min_gap = min_gap.min(gap);
        if min_gap == 0 {
            break;
        }
    }
    min_gap.saturating_add(lookup)
}

/// Upper bound on the contention-free makespan of `n` iterations of `body`.
fn isolated_makespan(body: &[Instr], cfg: &MachineConfig, n: u64) -> u64 {
    let bus = &cfg.topology.bus;
    let dram = dram_worst(cfg);
    // Worst-case service of one fetched-or-loaded line: request transfer,
    // DRAM round trip, refill transfer — or an L2 hit, whichever is larger.
    let miss_path =
        bus.transfer_occupancy.saturating_mul(2).saturating_add(dram).max(bus.l2_hit_occupancy);
    let mc_admission = cfg.topology.mc.as_ref().map(|m| m.service_occupancy).unwrap_or(0);
    let mut per_iter = 0u64;
    for instr in body {
        // Issue slot + instruction fetch worst case (IL1 miss).
        let fetch = cfg.il1.latency.saturating_add(miss_path).saturating_add(mc_admission);
        let exec = match instr {
            Instr::Load(_) => {
                cfg.dl1.latency.saturating_add(miss_path).saturating_add(mc_admission)
            }
            Instr::Store(_) => cfg.dl1.latency.saturating_add(bus.store_occupancy),
            other => local_latency(other, cfg),
        };
        per_iter = per_iter.saturating_add(1).saturating_add(fetch).saturating_add(exec);
    }
    // One extra store-buffer drain at completion.
    let drain = bus.store_occupancy.saturating_mul(cfg.store_buffer.entries as u64);
    n.saturating_mul(per_iter).saturating_add(drain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_sim::ProgramBuilder;

    fn toy() -> MachineConfig {
        MachineConfig::toy(4, 2)
    }

    #[test]
    fn idle_profile_never_requests() {
        let p = CoreProfile::idle();
        assert!(!p.issues_requests());
        assert!(p.is_finite());
    }

    #[test]
    fn finite_load_loop_counts_requests() {
        let prog = ProgramBuilder::new().load(0x100).nops(3).branch().iterations(10).build();
        let p = profile_program(&prog, &toy());
        // 1 load * 2 txns * 10 iters + cold ifetch lines * 2.
        let bus = p.bus_requests.expect("finite");
        assert!(bus >= 20, "at least the data transactions: {bus}");
        assert!(p.is_finite());
        assert!(p.issues_requests());
        // 3 nops between the load and itself (circularly: nops + branch).
        assert!(p.min_gap >= 3, "gap covers the nops: {}", p.min_gap);
    }

    #[test]
    fn endless_program_is_unbounded() {
        let prog = ProgramBuilder::new().load(0x100).branch().endless().build();
        let p = profile_program(&prog, &toy());
        assert_eq!(p.bus_requests, None);
        assert_eq!(p.isolated_cycles, None);
        assert!(!p.is_finite());
        assert!(p.issues_requests());
    }

    #[test]
    fn stores_force_zero_gap() {
        let prog = ProgramBuilder::new().store(0x100).nops(8).branch().iterations(5).build();
        let p = profile_program(&prog, &toy());
        assert_eq!(p.min_gap, 0, "store buffer drains back-to-back");
    }

    #[test]
    fn pure_compute_has_no_requests_per_iteration() {
        let prog = ProgramBuilder::new().nops(4).branch().iterations(100).build();
        let p = profile_program(&prog, &toy());
        // Only the cold instruction fetches remain.
        let bus = p.bus_requests.expect("finite");
        assert!(bus <= 8, "cold fetches only: {bus}");
        assert_eq!(p.min_gap, u64::MAX);
    }

    #[test]
    fn join_takes_pointwise_worst() {
        let a = CoreProfile {
            bus_requests: Some(10),
            mc_requests: Some(5),
            min_gap: 3,
            isolated_cycles: Some(100),
        };
        let b = CoreProfile {
            bus_requests: Some(20),
            mc_requests: None,
            min_gap: 7,
            isolated_cycles: Some(50),
        };
        let j = a.join(&b);
        assert_eq!(j.bus_requests, Some(20));
        assert_eq!(j.mc_requests, None);
        assert_eq!(j.min_gap, 3);
        assert_eq!(j.isolated_cycles, Some(100));
    }

    #[test]
    fn always_hitting_loads_are_steady_state_silent() {
        let cfg = toy();
        // An endless loop re-loading one line: DL1-resident after the
        // cold fill, so the classification proves silence where the old
        // accesses-memory heuristic had to refuse.
        let prog = ProgramBuilder::new().load(0x100).nops(2).branch().endless().build();
        assert!(steady_state_silent(&prog, &cfg), "always-hit loads are silent");
        // A DL1-thrashing loop keeps posting in steady state.
        let ways = u64::from(cfg.dl1.ways);
        let stride = cfg.dl1.size_bytes / u64::from(cfg.dl1.ways);
        let mut thrash = ProgramBuilder::new();
        for i in 0..=ways {
            thrash = thrash.load(0x100 + i * stride);
        }
        let thrash = thrash.branch().endless().build();
        assert!(!steady_state_silent(&thrash, &cfg), "set-thrashing loads are not");
        // Pure compute stays silent, as under the old heuristic.
        let nops = ProgramBuilder::new().nops(4).branch().endless().build();
        assert!(steady_state_silent(&nops, &cfg));
    }

    #[test]
    fn makespan_grows_with_iterations() {
        let short = ProgramBuilder::new().load(0x100).branch().iterations(10).build();
        let long = ProgramBuilder::new().load(0x100).branch().iterations(1000).build();
        let cfg = toy();
        let a = profile_program(&short, &cfg).isolated_cycles.expect("finite");
        let b = profile_program(&long, &cfg).isolated_cycles.expect("finite");
        assert!(b > a);
    }
}
