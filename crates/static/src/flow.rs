//! Interference-flow composition: per-resource bounds that account for
//! how the upstream arbiter *shapes* the arrival pattern at the
//! downstream resource, instead of summing independent worst cases.
//!
//! The saturating composition (`StaticBound::total`) adds the bus term
//! and the MC term as if both resources could simultaneously serve the
//! observed core their private worst case. The machine cannot realise
//! that: every memory-controller admission is the completion of a bus
//! transfer, so the bus's grant rate is an *arrival curve* for the MC
//! queue — at most one admission per `transfer_occupancy` cycles,
//! machine-wide, no matter how many cores contend. When that arrival
//! spacing `a` is at least the controller's service occupancy `s` (and
//! the queue arbiter is work-conserving), the queue provably drains
//! between admissions and the observed core's MC delay is exactly zero —
//! the queue depth is bounded by the in-flight-per-bus-rotation count
//! (one), not by the core count.
//!
//! [`compose_flow`] derives one [`FlowTerm`] per resource from the
//! per-core demand profiles (use [`crate::cache::classified_profile`]
//! for proven, not assumed-worst, demand):
//!
//! * **bus** — the observed core's own static bound
//!   ([`crate::ResourceBound::observed`]), which folds in the request-cycle
//!   tightenings (`(Nc-1)·L - 1` for `rr`/`fifo` with a proven request
//!   gap, `L - 1` for top-priority `fp`);
//! * **mc** — `0` when the observed core provably never reaches the
//!   controller, or when bus serialisation caps the arrival rate below
//!   the service rate; otherwise the per-requester fallback
//!   `min(machine bound, m·s)` for FIFO queues (`m` = foreign cores
//!   with any MC demand, each holding at most one outstanding miss).
//!
//! The result carries per-resource slack attribution against the
//! saturating sum, and the composed total obeys the soundness chain the
//! verifier enforces per cell:
//!
//! ```text
//! measured composed γ  ≤  flow composed  ≤  saturating sum
//! ```

use crate::bounds::{analyze, can_request, requests_at, StaticBound};
use crate::profile::CoreProfile;
use rrb_sim::{ArbiterKind, MachineConfig, ResourceKind};

/// One resource's contribution to the composed flow bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowTerm {
    /// Which contention point this term covers.
    pub resource: ResourceKind,
    /// The arbiter policy at this resource.
    pub arbiter: ArbiterKind,
    /// The saturating-sum term: the machine-wide static bound.
    pub sum: Option<u64>,
    /// The flow-composed term for the observed core. Always `≤ sum`.
    pub flow: Option<u64>,
    /// How the flow term was derived (for reports and lint messages).
    pub reason: String,
}

impl FlowTerm {
    /// Provable slack this term attributes: `sum - flow`. `None` when
    /// either side is unbounded.
    pub fn slack(&self) -> Option<u64> {
        Some(self.sum?.saturating_sub(self.flow?))
    }
}

/// The composed interference-flow bound for one machine configuration,
/// reported next to the saturating sum it refines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComposedBound {
    /// Number of cores the bound was computed for.
    pub num_cores: usize,
    /// Per-resource terms, in topology order (bus, then MC).
    pub terms: Vec<FlowTerm>,
}

impl ComposedBound {
    /// The flow-composed total; `None` when any term is unbounded.
    pub fn flow_total(&self) -> Option<u64> {
        let mut total = 0u64;
        for t in &self.terms {
            total = total.saturating_add(t.flow?);
        }
        Some(total)
    }

    /// The saturating-sum total the flow bound refines.
    pub fn sum_total(&self) -> Option<u64> {
        let mut total = 0u64;
        for t in &self.terms {
            total = total.saturating_add(t.sum?);
        }
        Some(total)
    }

    /// Total provable slack between the sum and the flow composition.
    pub fn slack_total(&self) -> Option<u64> {
        Some(self.sum_total()?.saturating_sub(self.flow_total()?))
    }

    /// The term for a specific resource kind, if present.
    pub fn term(&self, kind: ResourceKind) -> Option<&FlowTerm> {
        self.terms.iter().find(|t| t.resource == kind)
    }

    /// Whether every term is finite.
    pub fn is_finite(&self) -> bool {
        self.terms.iter().all(|t| t.flow.is_some())
    }
}

/// Whether `arbiter` grants whenever a request is pending and the
/// resource is free (everything but TDMA, which waits for slot
/// ownership regardless of queue state).
fn work_conserving(arbiter: ArbiterKind) -> bool {
    !matches!(arbiter, ArbiterKind::Tdma { .. })
}

/// Composes the interference flow for `cfg` from per-core demand
/// profiles (core 0 is the observed core; missing trailing cores are
/// idle). The underlying [`StaticBound`] is computed from the same
/// profiles, so pass classified profiles for the tightest composition.
pub fn compose_flow(cfg: &MachineConfig, profiles: &[CoreProfile]) -> ComposedBound {
    let statics = analyze(cfg, profiles);
    compose_flow_from(cfg, profiles, &statics)
}

/// [`compose_flow`] with an already-computed [`StaticBound`] for the
/// same profiles (avoids re-running the analysis when the caller has
/// both in hand).
pub fn compose_flow_from(
    cfg: &MachineConfig,
    profiles: &[CoreProfile],
    statics: &StaticBound,
) -> ComposedBound {
    let num_cores = cfg.num_cores;
    let mut padded: Vec<CoreProfile> = profiles.to_vec();
    padded.resize(num_cores, CoreProfile::idle());

    let mut terms = Vec::with_capacity(statics.resources.len());
    for rb in &statics.resources {
        let (flow, reason) = match rb.resource {
            ResourceKind::Bus => {
                let why = if rb.observed == rb.bound {
                    "observed core's machine-wide bus bound".to_string()
                } else {
                    "observed core's request-cycle bus bound".to_string()
                };
                (rb.observed, why)
            }
            ResourceKind::MemoryController => mc_flow_term(cfg, &padded, rb.observed),
        };
        // The flow term never exceeds the saturating term: clamp so the
        // `flow ≤ sum` chain holds even for window-resolved bounds.
        let flow = match (flow, rb.bound) {
            (Some(f), Some(s)) => Some(f.min(s)),
            (f, None) => f,
            (None, _) => None,
        };
        terms.push(FlowTerm {
            resource: rb.resource,
            arbiter: rb.arbiter,
            sum: rb.bound,
            flow,
            reason,
        });
    }
    ComposedBound { num_cores, terms }
}

/// The MC-queue flow term: propagates the bus's grant-rate cap to the
/// controller queue.
fn mc_flow_term(
    cfg: &MachineConfig,
    padded: &[CoreProfile],
    observed_bound: Option<u64>,
) -> (Option<u64>, String) {
    let Some(mc) = &cfg.topology.mc else {
        return (Some(0), "no controller queue in the topology".to_string());
    };
    let observed_requests = padded.first().map(|p| can_request(p, ResourceKind::MemoryController));
    if observed_requests != Some(true) {
        return (Some(0), "observed core provably never reaches the controller".to_string());
    }
    let a = cfg.topology.bus.transfer_occupancy;
    let s = mc.service_occupancy;
    if work_conserving(mc.arbiter) && a >= s {
        return (
            Some(0),
            format!(
                "bus-serialised arrivals: admissions are ≥ {a} cycles apart and each is served \
                 in {s}, so every admission finds the queue drained"
            ),
        );
    }
    // Fallback: the queue can build up. Each foreign core holds at most
    // one outstanding miss, so a FIFO queue serves at most `m` foreign
    // admissions (including the in-service one) before the observed
    // core's.
    let m = padded.iter().skip(1).filter(|p| can_request(p, ResourceKind::MemoryController)).count()
        as u64;
    if mc.arbiter == ArbiterKind::Fifo {
        let per_requester = m.saturating_mul(s);
        let flow = match observed_bound {
            Some(b) => Some(b.min(per_requester)),
            None => Some(per_requester),
        };
        return (flow, format!("{m} foreign requester(s), one outstanding miss each"));
    }
    (observed_bound, "queue can back up; observed core's machine bound".to_string())
}

/// Convenience: the total MC demand a profile set can pose, for reports.
pub fn foreign_mc_requesters(profiles: &[CoreProfile]) -> u64 {
    profiles
        .iter()
        .skip(1)
        .filter(|p| requests_at(p, ResourceKind::MemoryController) != Some(0))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_sim::McQueueConfig;

    fn toy_two_level(service: u64) -> MachineConfig {
        let mut cfg = MachineConfig::toy(4, 2);
        cfg.topology.mc =
            Some(McQueueConfig { service_occupancy: service, arbiter: ArbiterKind::Fifo });
        cfg
    }

    fn gapped_saturating() -> CoreProfile {
        CoreProfile { min_gap: 1, ..CoreProfile::saturating() }
    }

    #[test]
    fn single_level_flow_is_the_observed_bus_bound() {
        let cfg = MachineConfig::toy(4, 2);
        let profiles = vec![gapped_saturating(); 4];
        let c = compose_flow(&cfg, &profiles);
        assert_eq!(c.terms.len(), 1);
        assert_eq!(c.flow_total(), Some(5), "(4-1)*2 - 1");
        assert_eq!(c.sum_total(), Some(6));
        assert_eq!(c.slack_total(), Some(1));
    }

    #[test]
    fn serialised_mc_arrivals_zero_the_mc_term() {
        // transfer occupancy 2 >= service occupancy 2: the queue drains
        // between admissions no matter how many cores miss the L2.
        let cfg = toy_two_level(2);
        let profiles = vec![gapped_saturating(); 4];
        let c = compose_flow(&cfg, &profiles);
        let mc = c.term(ResourceKind::MemoryController).expect("mc term");
        assert_eq!(mc.flow, Some(0), "{}", mc.reason);
        assert_eq!(mc.sum, Some(6), "(4-1)*2 saturating");
        assert_eq!(c.flow_total(), Some(5));
        assert_eq!(c.sum_total(), Some(12));
    }

    #[test]
    fn slow_controller_falls_back_to_per_requester_fifo_bound() {
        // service 6 > transfer 2: the queue can back up, but each foreign
        // core still holds only one outstanding miss.
        let cfg = toy_two_level(6);
        let profiles = vec![gapped_saturating(); 4];
        let c = compose_flow(&cfg, &profiles);
        let mc = c.term(ResourceKind::MemoryController).expect("mc term");
        assert_eq!(mc.flow, Some(18), "3 requesters * 6 = machine bound here");
        assert_eq!(mc.sum, Some(18));
    }

    #[test]
    fn mc_silent_observed_core_zeroes_the_term_even_when_slow() {
        let cfg = toy_two_level(6);
        let mut profiles = vec![gapped_saturating(); 4];
        profiles[0].mc_requests = Some(0);
        let c = compose_flow(&cfg, &profiles);
        let mc = c.term(ResourceKind::MemoryController).expect("mc term");
        assert_eq!(mc.flow, Some(0), "{}", mc.reason);
    }

    #[test]
    fn fewer_mc_requesters_shrink_the_fifo_fallback() {
        let cfg = toy_two_level(6);
        let mut profiles = vec![gapped_saturating(); 4];
        profiles[2].mc_requests = Some(0);
        profiles[3].mc_requests = Some(0);
        let c = compose_flow(&cfg, &profiles);
        let mc = c.term(ResourceKind::MemoryController).expect("mc term");
        assert_eq!(mc.flow, Some(6), "one foreign requester * 6");
        assert_eq!(mc.sum, Some(18), "machine-wide sum is unchanged");
    }

    #[test]
    fn flow_never_exceeds_sum() {
        for service in [1, 2, 3, 6, 9] {
            let cfg = toy_two_level(service);
            let profiles = vec![CoreProfile::saturating(); 4];
            let c = compose_flow(&cfg, &profiles);
            let (Some(flow), Some(sum)) = (c.flow_total(), c.sum_total()) else {
                panic!("finite expected");
            };
            assert!(flow <= sum, "service {service}: flow {flow} > sum {sum}");
        }
    }

    #[test]
    fn tdma_queue_keeps_the_machine_bound() {
        let mut cfg = toy_two_level(2);
        if let Some(mc) = &mut cfg.topology.mc {
            mc.arbiter = ArbiterKind::Tdma { slot_cycles: 4 };
        }
        let profiles = vec![gapped_saturating(); 4];
        let c = compose_flow(&cfg, &profiles);
        let mc = c.term(ResourceKind::MemoryController).expect("mc term");
        assert_eq!(mc.flow, mc.sum, "non-work-conserving: no serialisation credit");
    }
}
