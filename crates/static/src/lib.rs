//! # rrb-static — static contention analyzer
//!
//! Analytic worst-case per-request delay bounds for every arbiter and every
//! topology cell, derived from programs and machine configs alone — no
//! simulation. This is the independent soundness oracle the measurement
//! methodology (rsk-nop saw-tooth recovery, Eq. 2) is cross-checked against:
//! a measured UBD above the static bound, or a static bound below the
//! simulated truth, is a bug in one of the two models.
//!
//! The analysis has three layers:
//!
//! * [`profile`] — an abstract interpreter over [`Program`] bodies that
//!   bounds each core's shared-resource demand: total bus/memory-controller
//!   request counts, the minimum core-side gap between consecutive
//!   requests, and an isolated (contention-free) makespan bound.
//! * [`bounds`] — per-arbiter worst-case per-request delay models composed
//!   across the [`Topology`](rrb_sim::Topology) (bus term + MC term) into a
//!   [`StaticBound`] per machine configuration:
//!
//!   | arbiter | per-request bound (occupancy `L`, `Nc` cores) |
//!   |---------|-----------------------------------------------|
//!   | `rr` | `(Nc-1)·L` — Eq. 1 of the paper |
//!   | `fifo` | `(Nc-1)·L` — at most one outstanding request per core |
//!   | `grr:g` | `(g·⌈Nc/g⌉ - 1)·L` — two-level rotation |
//!   | `tdma:s` | `(Nc-1)·s + L - 1`, unbounded if `s < L` |
//!   | `fp` | per-core response-time analysis over higher-priority request curves, with a whole-run window fallback |
//!
//!   Each [`ResourceBound`] also carries the *observed* core's own bound,
//!   which folds in request-cycle tightenings (`(Nc-1)·L - 1` for
//!   `rr`/`fifo` with a proven request gap, `L - 1` for top-priority `fp`)
//!   that a machine-wide bound cannot use.
//! * [`cache`] — must/may abstract interpretation of each program's access
//!   stream against the L1/L2 configuration, classifying every access
//!   AlwaysHit / AlwaysMiss / Unknown so [`classified_profile`] carries
//!   *proven* (not assumed-worst) bus/MC demand and a tighter request gap.
//! * [`flow`] — interference-flow composition: per-core arrival curves
//!   propagated through the topology (the bus grant rate caps the MC-queue
//!   arrival rate), emitting a [`ComposedBound`] with per-resource slack
//!   attribution next to the saturating sum.
//! * [`verify`] — a bounded exhaustive model checker that drives the *real*
//!   arbiter implementations over the abstract single-resource model,
//!   enumerating request-arrival alignments (with per-arbiter symmetry
//!   pruning) to compute the **exact** worst-case delay of the observed
//!   core, plus a replayable adversarial [`Witness`].
//!
//! Every formula is an upper bound on the simulator's observable
//! `γ = granted - ready` for the corresponding resource; the repo-level
//! property tests `prop_static_soundness` and `prop_verify_exact` pin
//! `observed max γ ≤ exact ≤ static` over randomized arbiters, topologies,
//! and workloads.
//!
//! ## Example
//!
//! ```
//! use rrb_sim::MachineConfig;
//! use rrb_static::StaticBound;
//!
//! let cfg = MachineConfig::toy(4, 2);
//! // Worst-case envelope: every core saturates the bus forever.
//! let bound = StaticBound::saturating(&cfg);
//! assert_eq!(bound.total(), Some(6)); // (4-1) * 2, Eq. 1
//! ```
//!
//! [`Program`]: rrb_sim::Program
//! [`StaticBound`]: bounds::StaticBound

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod cache;
pub mod flow;
pub mod profile;
pub mod verify;

pub use bounds::{Bound, ResourceBound, StaticBound};
pub use cache::{
    classified_profile, classify_accesses, AccessClasses, Classification, LevelClasses, ReplayStats,
};
pub use flow::{compose_flow, ComposedBound, FlowTerm};
pub use profile::{profile_program, steady_state_silent, CoreProfile};
pub use verify::{exact_bounds, ExactBound, VerifyOptions, Witness};
