//! Per-arbiter worst-case per-request delay models, composed across the
//! topology into a [`StaticBound`].
//!
//! Every model bounds the simulator's observable `γ = granted - ready` for
//! one request at one resource. The load-bearing structural invariant is
//! that each core keeps **at most one outstanding request per resource**
//! (the resource's pending array has one slot per core), so at most
//! `Nc - 1` foreign grants — each at most the resource's worst occupancy
//! `L` — can precede a waiting request under any order-fair policy.
//!
//! * **Round-robin** (Eq. 1): the rotating pointer grants every other core
//!   at most once before coming back: `(Nc-1)·L`.
//! * **FIFO**: at most `Nc - 1` older-or-in-flight foreign requests exist
//!   (one slot per core, and the in-flight core's slot is empty), and a
//!   later arrival never overtakes an earlier one: `(Nc-1)·L`.
//! * **Grouped round-robin** (`grr:g`): the outer pointer rotates over
//!   `⌈Nc/g⌉` groups and the inner pointer over `g` members, so
//!   `g·⌈Nc/g⌉ - 1` grants can separate two grants of one core:
//!   `(g·⌈Nc/g⌉ - 1)·L`.
//! * **TDMA** (`tdma:s`): non-work-conserving; the arbiter only grants when
//!   the *worst* occupancy fits the owner's remaining slot. Worst case: the
//!   request becomes ready just as its slot stops fitting (`L - 1` cycles
//!   left), then waits out the other `Nc - 1` slots: `(Nc-1)·s + L - 1`.
//!   If `s < L` the request never fits and the bound is unbounded.
//! * **Fixed priority** (`fp`, lowest core index wins): per-core
//!   response-time analysis. The top-priority requester only suffers
//!   blocking by an in-flight transaction (`≤ L`). A lower-priority core's
//!   wait `D` must absorb every higher-priority arrival in `D`, bounded per
//!   higher core by the *smaller* of its total request count and a rate
//!   curve `⌊D/(min_occ + gap)⌋ + 1`. When the fixed point diverges (a
//!   saturating higher-priority core), the fall-back is the whole-run
//!   window `W`: the machine stops once every finite program completes, so
//!   no grant — hence no delay — can exceed `W`. Only when `W` itself is
//!   unbounded (no finite program, or a finite program stuck behind a
//!   saturating higher-priority core) is the cell reported unbounded.

use crate::profile::CoreProfile;
use rrb_sim::{ArbiterKind, MachineConfig, ResourceKind};

/// Outcome of one per-core, per-resource bound computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// A finite worst-case per-request delay in cycles.
    Finite(u64),
    /// The fixed point diverged; a whole-run window bound may still apply.
    NeedsWindow,
    /// No finite bound exists for this configuration.
    Unbounded(String),
}

/// Static worst-case per-request delay at one shared resource, taken over
/// all requesting cores (machine-wide).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceBound {
    /// Which contention point this bound covers.
    pub resource: ResourceKind,
    /// The arbiter policy the bound was derived for.
    pub arbiter: ArbiterKind,
    /// Worst-case `granted - ready` in cycles; `None` if unbounded.
    pub bound: Option<u64>,
    /// Worst-case delay of the *observed* core (core 0, the software
    /// under analysis) specifically. At the bus this folds in the
    /// request-cycle tightenings the machine-wide bound cannot use:
    ///
    /// * `rr`/`fifo` with a proven request gap ≥ 1: `(Nc-1)·L - 1`. A
    ///   full `(Nc-1)·L` wait needs a foreign grant in the *same* cycle
    ///   the request becomes ready, but the observed core's previous
    ///   transaction completed at least one gap cycle earlier, so either
    ///   the in-flight transaction has ≤ `L-1` cycles left or the
    ///   rotation reaches the observed core after ≤ `Nc-2` full grants.
    /// * `fp`: the top-priority core only blocks on a transaction granted
    ///   in an *earlier* cycle (posting precedes arbitration within a
    ///   cycle and priority 0 wins ties), so ≤ `L-1` cycles remain.
    ///
    /// Cold-start included: both arguments hold from cycle 0 (the
    /// bounded model checker's `exact == observed` certificates and the
    /// `prop_flow_soundness` property pin them against the simulator).
    /// Machine-wide bounds — and therefore every existing baseline —
    /// are unchanged: a high-index contender really can wait the full
    /// `(Nc-1)·L` at cold start.
    pub observed: Option<u64>,
    /// Human-readable reason when `bound` is `None`.
    pub reason: Option<String>,
}

/// The composed static bound for one machine configuration: one term per
/// contention point in the topology, summed into a total comparable to
/// [`MachineConfig::ubd`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticBound {
    /// Number of cores the bound was computed for.
    pub num_cores: usize,
    /// Per-resource worst-case delays, in topology order (bus, then MC).
    pub resources: Vec<ResourceBound>,
}

impl StaticBound {
    /// Computes the machine-wide static bound for `cfg` given one demand
    /// profile per core (missing trailing cores are treated as idle).
    pub fn analyze(cfg: &MachineConfig, profiles: &[CoreProfile]) -> StaticBound {
        analyze(cfg, profiles)
    }

    /// Worst-case envelope: every core runs an endless, back-to-back
    /// request stream. Matches Eq. 1 for round-robin; unbounded for `fp`.
    pub fn saturating(cfg: &MachineConfig) -> StaticBound {
        let profiles = vec![CoreProfile::saturating(); cfg.num_cores];
        analyze(cfg, &profiles)
    }

    /// Sum of all per-resource bounds; `None` if any term is unbounded.
    pub fn total(&self) -> Option<u64> {
        let mut total = 0u64;
        for r in &self.resources {
            total = total.saturating_add(r.bound?);
        }
        Some(total)
    }

    /// Sum of the per-resource *observed-core* bounds (core 0); `None`
    /// if any term is unbounded. Always `≤ total()`: the observed core's
    /// request-cycle structure is known, a saturating contender's is not.
    pub fn observed_total(&self) -> Option<u64> {
        let mut total = 0u64;
        for r in &self.resources {
            total = total.saturating_add(r.observed?);
        }
        Some(total)
    }

    /// Whether every contention point has a finite bound.
    pub fn is_finite(&self) -> bool {
        self.resources.iter().all(|r| r.bound.is_some())
    }

    /// The bound for a specific resource kind, if that resource exists.
    pub fn resource(&self, kind: ResourceKind) -> Option<&ResourceBound> {
        self.resources.iter().find(|r| r.resource == kind)
    }

    /// First unboundedness reason, if any.
    pub fn reason(&self) -> Option<&str> {
        self.resources.iter().find_map(|r| r.reason.as_deref())
    }
}

/// Arbitrated-resource parameters the per-arbiter models need.
pub(crate) struct ResourceModel {
    pub(crate) kind: ResourceKind,
    pub(crate) arbiter: ArbiterKind,
    /// Worst single-transaction occupancy (the simulator arbitrates on
    /// this uniform worst-case view).
    pub(crate) max_occ: u64,
    /// Smallest occupancy any transaction can hold the resource for.
    pub(crate) min_occ: u64,
}

pub(crate) fn resource_models(cfg: &MachineConfig) -> Vec<ResourceModel> {
    let bus = &cfg.topology.bus;
    let mut models = vec![ResourceModel {
        kind: ResourceKind::Bus,
        arbiter: bus.arbiter,
        max_occ: bus.l2_hit_occupancy.max(bus.transfer_occupancy).max(bus.store_occupancy),
        min_occ: bus.l2_hit_occupancy.min(bus.transfer_occupancy).min(bus.store_occupancy).max(1),
    }];
    if let Some(mc) = &cfg.topology.mc {
        models.push(ResourceModel {
            kind: ResourceKind::MemoryController,
            arbiter: mc.arbiter,
            max_occ: mc.service_occupancy,
            min_occ: mc.service_occupancy.max(1),
        });
    }
    models
}

/// Request count of `profile` at the resource `kind` (bus vs MC demand).
pub(crate) fn requests_at(profile: &CoreProfile, kind: ResourceKind) -> Option<u64> {
    match kind {
        ResourceKind::Bus => profile.bus_requests,
        ResourceKind::MemoryController => profile.mc_requests,
    }
}

pub(crate) fn can_request(profile: &CoreProfile, kind: ResourceKind) -> bool {
    requests_at(profile, kind) != Some(0)
}

/// Per-core, per-resource bound before window resolution.
fn core_bound(
    model: &ResourceModel,
    core: usize,
    num_cores: usize,
    profiles: &[CoreProfile],
) -> Bound {
    let nc = num_cores as u64;
    let l = model.max_occ;
    match model.arbiter {
        ArbiterKind::RoundRobin | ArbiterKind::Fifo => {
            Bound::Finite(nc.saturating_sub(1).saturating_mul(l))
        }
        ArbiterKind::GroupedRoundRobin { group_size } => {
            let g = group_size.max(1) as u64;
            let groups = nc.div_ceil(g);
            Bound::Finite(g.saturating_mul(groups).saturating_sub(1).saturating_mul(l))
        }
        ArbiterKind::Tdma { slot_cycles } => {
            if slot_cycles < l {
                Bound::Unbounded(format!(
                    "tdma slot {slot_cycles} cannot fit the worst {} occupancy {l}; requests starve",
                    model.kind.slug()
                ))
            } else {
                Bound::Finite(
                    nc.saturating_sub(1)
                        .saturating_mul(slot_cycles)
                        .saturating_add(l.saturating_sub(1)),
                )
            }
        }
        ArbiterKind::FixedPriority => fp_response_time(model, core, profiles),
    }
}

/// Response-time analysis for fixed priority (lowest core index wins).
fn fp_response_time(model: &ResourceModel, core: usize, profiles: &[CoreProfile]) -> Bound {
    // Non-preemptive blocking by whatever transaction is in flight.
    let blocking = model.max_occ;
    let higher: Vec<&CoreProfile> =
        profiles[..core].iter().filter(|p| can_request(p, model.kind)).collect();
    if higher.is_empty() {
        return Bound::Finite(blocking);
    }
    // Iterate D = B + Σ_h min(count_h, rate_h(D)) · L to a fixed point.
    let mut d = blocking;
    for _ in 0..256 {
        let mut next = blocking;
        for h in &higher {
            let step = model.min_occ.saturating_add(h.min_gap).max(1);
            let by_rate = (d / step).saturating_add(1);
            let arrivals = match requests_at(h, model.kind) {
                Some(count) => count.min(by_rate),
                None => by_rate,
            };
            next = next.saturating_add(arrivals.saturating_mul(model.max_occ));
        }
        if next == d {
            return Bound::Finite(d);
        }
        if next > 1 << 40 {
            // Saturating higher-priority demand: no convergence.
            return Bound::NeedsWindow;
        }
        d = next;
    }
    Bound::NeedsWindow
}

/// Whole-run window: the machine stops once every finite program has
/// completed, so `W = max_c (isolated_c + requests_c · per-request delay)`
/// over the finite cores bounds the length of any run — and therefore any
/// single delay within it. Requires every finite core to have a
/// convergent (non-window) bound at every resource.
fn run_window(
    models: &[ResourceModel],
    bounds: &[Vec<Bound>],
    profiles: &[CoreProfile],
) -> Result<Option<u64>, String> {
    let mut window: Option<u64> = None;
    for (c, p) in profiles.iter().enumerate() {
        if !p.is_finite() {
            continue;
        }
        let mut completion = p.isolated_cycles.unwrap_or(0);
        for (r, model) in models.iter().enumerate() {
            let requests = requests_at(p, model.kind).unwrap_or(0);
            if requests == 0 {
                continue;
            }
            match &bounds[r][c] {
                Bound::Finite(b) => {
                    completion = completion.saturating_add(requests.saturating_mul(*b));
                }
                Bound::NeedsWindow => {
                    return Err(format!(
                        "finite program on core {c} is starved at the {} by a saturating \
                         higher-priority core; the run never terminates",
                        model.kind.slug()
                    ));
                }
                Bound::Unbounded(reason) => return Err(reason.clone()),
            }
        }
        window = Some(window.unwrap_or(0).max(completion));
    }
    Ok(window)
}

/// Computes the machine-wide [`StaticBound`] for `cfg` from per-core
/// demand profiles. Cores beyond `profiles.len()` are treated as idle.
pub fn analyze(cfg: &MachineConfig, profiles: &[CoreProfile]) -> StaticBound {
    let num_cores = cfg.num_cores;
    let mut padded: Vec<CoreProfile> = profiles.to_vec();
    padded.resize(num_cores, CoreProfile::idle());
    let models = resource_models(cfg);

    // Pass 1: per-core bounds without the window fallback.
    let per_core: Vec<Vec<Bound>> = models
        .iter()
        .map(|m| (0..num_cores).map(|c| core_bound(m, c, num_cores, &padded)).collect())
        .collect();

    // Pass 2: the whole-run window, for divergent fixed-priority cores.
    let window = run_window(&models, &per_core, &padded);

    // Pass 3: machine-wide bound per resource over the requesting cores,
    // plus the observed core's own (possibly tighter) bound.
    let resources = models
        .iter()
        .enumerate()
        .map(|(r, model)| {
            let mut worst: Option<u64> = Some(0);
            let mut observed: Option<u64> = Some(0);
            let mut reason: Option<String> = None;
            for (c, p) in padded.iter().enumerate() {
                if !can_request(p, model.kind) {
                    continue;
                }
                let resolved = match &per_core[r][c] {
                    Bound::Finite(b) => Some(*b),
                    Bound::NeedsWindow => match &window {
                        Ok(Some(w)) => Some(*w),
                        Ok(None) => {
                            reason.get_or_insert_with(|| {
                                format!(
                                    "core {c} can starve at the {} behind saturating \
                                     higher-priority cores and no finite program bounds the run",
                                    model.kind.slug()
                                )
                            });
                            None
                        }
                        Err(e) => {
                            reason.get_or_insert_with(|| e.clone());
                            None
                        }
                    },
                    Bound::Unbounded(e) => {
                        reason.get_or_insert_with(|| e.clone());
                        None
                    }
                };
                if c == 0 {
                    observed = resolved.map(|b| observed_tightening(model, b, &padded[0]));
                }
                worst = match (worst, resolved) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                };
            }
            ResourceBound {
                resource: model.kind,
                arbiter: model.arbiter,
                bound: worst,
                observed,
                reason: if worst.is_none() { reason } else { None },
            }
        })
        .collect();

    StaticBound { num_cores, resources }
}

/// Request-cycle tightening of the observed core's bus bound (see the
/// [`ResourceBound::observed`] docs for the arguments). Applies only at
/// the bus, whose post-then-arbitrate cycle structure the proofs rely on;
/// MC-queue and non-bus terms keep the machine-wide formula.
fn observed_tightening(model: &ResourceModel, resolved: u64, observed: &CoreProfile) -> u64 {
    if model.kind != ResourceKind::Bus {
        return resolved;
    }
    match model.arbiter {
        ArbiterKind::RoundRobin | ArbiterKind::Fifo if observed.min_gap >= 1 => {
            resolved.saturating_sub(1)
        }
        // The top-priority core only blocks on an already-running
        // transaction; no gap requirement.
        ArbiterKind::FixedPriority => resolved.saturating_sub(1),
        _ => resolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::profile_program;
    use rrb_sim::{McQueueConfig, ProgramBuilder};

    fn toy(nc: usize, l: u64) -> MachineConfig {
        MachineConfig::toy(nc, l)
    }

    fn finite_scua(cfg: &MachineConfig) -> CoreProfile {
        let prog = ProgramBuilder::new().load(0x100).nops(2).branch().iterations(50).build();
        profile_program(&prog, cfg)
    }

    #[test]
    fn round_robin_matches_eq1() {
        for (nc, l) in [(2usize, 1u64), (4, 2), (6, 9)] {
            let cfg = toy(nc, l);
            let b = StaticBound::saturating(&cfg);
            assert_eq!(b.total(), Some((nc as u64 - 1) * l), "nc={nc} l={l}");
            assert_eq!(b.total(), Some(cfg.ubd()), "matches the analytic truth");
        }
    }

    #[test]
    fn fifo_matches_round_robin_envelope() {
        let mut cfg = toy(4, 2);
        cfg.topology.bus.arbiter = ArbiterKind::Fifo;
        assert_eq!(StaticBound::saturating(&cfg).total(), Some(6));
    }

    #[test]
    fn grouped_rr_counts_group_rotation() {
        let mut cfg = toy(4, 2);
        cfg.topology.bus.arbiter = ArbiterKind::GroupedRoundRobin { group_size: 2 };
        // 2 groups * 2 members - 1 = 3 grants ahead.
        assert_eq!(StaticBound::saturating(&cfg).total(), Some(6));
        let mut cfg5 = toy(5, 2);
        cfg5.topology.bus.arbiter = ArbiterKind::GroupedRoundRobin { group_size: 2 };
        // ceil(5/2)=3 groups * 2 - 1 = 5 grants ahead.
        assert_eq!(StaticBound::saturating(&cfg5).total(), Some(10));
    }

    #[test]
    fn tdma_uses_slot_geometry() {
        let mut cfg = toy(4, 2);
        cfg.topology.bus.arbiter = ArbiterKind::Tdma { slot_cycles: 5 };
        // (4-1)*5 + 2-1 = 16.
        assert_eq!(StaticBound::saturating(&cfg).total(), Some(16));
    }

    #[test]
    fn tdma_slot_too_short_is_unbounded() {
        let mut cfg = toy(4, 4);
        cfg.topology.bus.arbiter = ArbiterKind::Tdma { slot_cycles: 3 };
        let b = StaticBound::saturating(&cfg);
        assert_eq!(b.total(), None);
        assert!(b.reason().unwrap_or("").contains("tdma slot"));
    }

    #[test]
    fn fp_saturating_everywhere_is_unbounded() {
        let mut cfg = toy(4, 2);
        cfg.topology.bus.arbiter = ArbiterKind::FixedPriority;
        let b = StaticBound::saturating(&cfg);
        assert_eq!(b.total(), None, "no finite program bounds the run");
    }

    #[test]
    fn fp_with_finite_top_priority_scua_is_finite() {
        let mut cfg = toy(4, 2);
        cfg.topology.bus.arbiter = ArbiterKind::FixedPriority;
        let mut profiles = vec![finite_scua(&cfg)];
        profiles.resize(4, CoreProfile::saturating());
        let b = StaticBound::analyze(&cfg, &profiles);
        let total = b.total().expect("window bound applies");
        // The window dwarfs the round-robin bound but must dominate truth.
        assert!(total >= cfg.ubd(), "window {total} covers truth {}", cfg.ubd());
    }

    #[test]
    fn fp_top_priority_core_only_suffers_blocking() {
        let mut cfg = toy(4, 2);
        cfg.topology.bus.arbiter = ArbiterKind::FixedPriority;
        let models = resource_models(&cfg);
        let profiles = vec![CoreProfile::saturating(); 4];
        assert_eq!(core_bound(&models[0], 0, 4, &profiles), Bound::Finite(2));
    }

    #[test]
    fn fp_counts_finite_higher_priority_demand() {
        let mut cfg = toy(3, 2);
        cfg.topology.bus.arbiter = ArbiterKind::FixedPriority;
        let models = resource_models(&cfg);
        // Two finite higher-priority cores with tiny request counts.
        let small = CoreProfile {
            bus_requests: Some(3),
            mc_requests: Some(0),
            min_gap: 0,
            isolated_cycles: Some(100),
        };
        let profiles = vec![small.clone(), small, CoreProfile::saturating()];
        match core_bound(&models[0], 2, 3, &profiles) {
            // B + 2 cores * 3 requests * L = 2 + 12.
            Bound::Finite(b) => assert_eq!(b, 14),
            other => panic!("expected finite count-curve bound, got {other:?}"),
        }
    }

    #[test]
    fn two_level_topology_adds_mc_term() {
        let mut cfg = toy(4, 2);
        cfg.topology.mc = Some(McQueueConfig { service_occupancy: 3, arbiter: ArbiterKind::Fifo });
        let b = StaticBound::saturating(&cfg);
        assert_eq!(b.resources.len(), 2);
        assert_eq!(b.resource(ResourceKind::Bus).and_then(|r| r.bound), Some(6));
        assert_eq!(b.resource(ResourceKind::MemoryController).and_then(|r| r.bound), Some(9));
        assert_eq!(b.total(), Some(15));
        assert_eq!(b.total(), Some(cfg.ubd()), "matches ubd_breakdown composition");
    }

    #[test]
    fn observed_core_bound_shaves_the_request_cycle() {
        let cfg = toy(4, 2);
        let mut profiles = vec![finite_scua(&cfg)];
        profiles.resize(4, CoreProfile::saturating());
        let b = StaticBound::analyze(&cfg, &profiles);
        assert_eq!(b.total(), Some(6), "machine-wide Eq. 1 term is unchanged");
        assert_eq!(b.observed_total(), Some(5), "rr with a proven gap: (4-1)*2 - 1");
    }

    #[test]
    fn observed_tightening_requires_a_proven_gap_on_rr() {
        let cfg = toy(4, 2);
        let b = StaticBound::saturating(&cfg);
        assert_eq!(b.observed_total(), b.total(), "no proven gap, no tightening");
    }

    #[test]
    fn observed_fp_top_priority_shaves_unconditionally() {
        let mut cfg = toy(4, 2);
        cfg.topology.bus.arbiter = ArbiterKind::FixedPriority;
        let mut profiles = vec![finite_scua(&cfg)];
        profiles.resize(4, CoreProfile::saturating());
        let b = StaticBound::analyze(&cfg, &profiles);
        let bus = b.resource(ResourceKind::Bus).expect("bus term");
        assert_eq!(bus.observed, Some(1), "blocking L minus the grant cycle");
    }

    #[test]
    fn idle_cores_do_not_drag_bounds() {
        let cfg = toy(4, 2);
        let profiles = vec![finite_scua(&cfg), CoreProfile::idle()];
        let b = StaticBound::analyze(&cfg, &profiles);
        // Idle cores still count as contenders (Nc is fixed by the config),
        // but they contribute no unboundedness.
        assert_eq!(b.total(), Some(6));
    }
}
