//! Must/may cache classification: exact replay of a program's access
//! stream against the private cache hierarchy.
//!
//! [`crate::profile::profile_program`] assumes every load misses DL1 *and*
//! L2 — two bus transactions and a memory-controller admission per load,
//! forever. That envelope is sound but blind: an L2-hitting stressor like
//! the paper's rsk never reaches the controller after its cold fill, and a
//! loop whose working set fits DL1 never reaches the bus at all. This
//! module recovers those facts statically by *replaying* the access stream
//! against models of the IL1, DL1, and the core's L2 partition that mirror
//! the simulator's [`rrb_sim::Cache`] cycle for cycle:
//!
//! * instruction fetches touch the IL1 once per instruction in program
//!   order (the core model touches on a hit at dispatch and on the refill
//!   return after a miss — one touch per fetch either way);
//! * each load touches the DL1 once at dispatch; a store probes and only
//!   touches on a probe hit (write-no-allocate through the store buffer);
//! * every L1 miss — and every store drain — touches the core's private
//!   L2 partition at bus-grant time. When the program has no stores, or
//!   no L1 demand misses, that grant order *is* the program order of the
//!   misses, so the partition can be replayed exactly; when buffered store
//!   drains interleave with demand misses the order is timing-dependent
//!   and the L2 level degrades to `Unknown`.
//!
//! Replay over a loop body is run iteration by iteration until the
//! (replacement-normalised) cache state repeats, which proves the per-
//! iteration outcome vector periodic: the classification then covers
//! *every* future iteration, not just the replayed prefix. Programs that
//! do not converge within the iteration cap — or that use random
//! replacement, whose victim choice depends on the absolute access count —
//! fall back to the classic worst-case envelope.
//!
//! The result feeds two consumers: [`classified_profile`] tightens a
//! [`CoreProfile`] with proven request counts and a proven request gap,
//! and [`crate::flow`] builds per-resource arrival curves from those
//! profiles to compose two-level bounds without the saturating sum's
//! everything-collides pessimism.

use crate::profile::{local_latency, profile_program, CoreProfile, INSTR_BYTES};
use rrb_sim::{CacheConfig, CoreId, Instr, Iterations, MachineConfig, Program, Replacement};

/// Base of the per-core instruction-fetch address stream (mirrors the
/// core model's private constant; pinned by the golden-kernel tests).
const IFETCH_BASE: u64 = 0x8000_0000;
/// Per-core stride of the instruction-fetch address stream.
const IFETCH_STRIDE: u64 = 0x0400_0000;
/// Iteration cap for cycle detection: a loop whose cache state has not
/// repeated after this many iterations is classified `Unknown`.
const MAX_REPLAY_ITERS: u64 = 64;

/// Must/may verdict for one access site at one cache level, over every
/// steady-state iteration of the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// The access hits in every steady-state iteration.
    AlwaysHit,
    /// The access misses in every steady-state iteration.
    AlwaysMiss,
    /// The replay could not prove either (mixed outcomes, unconverged
    /// replay, random replacement, or a timing-dependent L2 order).
    Unknown,
}

/// Per-iteration classification tallies at one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelClasses {
    /// Accesses proven to hit in every steady-state iteration.
    pub always_hit: u64,
    /// Accesses proven to miss in every steady-state iteration.
    pub always_miss: u64,
    /// Accesses the analysis could not classify.
    pub unknown: u64,
}

impl LevelClasses {
    /// Total classified accesses per iteration at this level.
    pub fn total(&self) -> u64 {
        self.always_hit + self.always_miss + self.unknown
    }

    /// Whether every access at this level has a proven verdict.
    pub fn proven(&self) -> bool {
        self.unknown == 0
    }
}

/// Raw hit/miss totals of one model cache over the replayed iterations.
/// For a fully replayed finite program these match the cycle-accurate
/// simulator's counters exactly (the golden-kernel tests pin this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Accesses that hit during the replay.
    pub hits: u64,
    /// Accesses that missed during the replay.
    pub misses: u64,
}

/// The classified access stream of one program on one core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessClasses {
    /// Instruction-fetch verdicts (one access per instruction).
    pub il1: LevelClasses,
    /// Data-load verdicts (stores are write-no-allocate and excluded).
    pub dl1: LevelClasses,
    /// L2-partition verdicts for the accesses that reach it.
    pub l2: LevelClasses,
    /// Proven upper bound on bus transactions per steady-state iteration.
    pub steady_bus_per_iter: u64,
    /// Proven upper bound on MC admissions per steady-state iteration.
    pub steady_mc_per_iter: u64,
    /// Bus transactions over the replayed cold prefix (exact when
    /// `converged`).
    pub prefix_bus: u64,
    /// MC admissions over the replayed cold prefix.
    pub prefix_mc: u64,
    /// Proven lower bound on the core-side gap between requests.
    pub min_gap: u64,
    /// Whether the replay proved the outcome vector periodic (or replayed
    /// a finite program to completion). When false, every verdict is
    /// `Unknown` and the demand numbers are the worst-case envelope.
    pub converged: bool,
    /// Iterations actually replayed.
    pub iterations_replayed: u64,
    /// Cold-prefix iterations covered by `prefix_bus` / `prefix_mc`; the
    /// steady per-iteration rate covers every iteration after them.
    pub prefix_iterations: u64,
    /// Whether every iteration of a finite program was replayed (totals
    /// and replay stats are then exact, not periodic extrapolations).
    pub fully_replayed: bool,
    /// Model IL1 totals over the replayed iterations.
    pub il1_replay: ReplayStats,
    /// Model DL1 totals over the replayed iterations.
    pub dl1_replay: ReplayStats,
    /// Model L2-partition totals over the replayed iterations (only
    /// meaningful when the L2 replay order is sound — no buffered store
    /// drains interleaving with demand misses).
    pub l2_replay: ReplayStats,
}

/// Replacement-normalised state of one cache (see
/// [`ModelCache::fingerprint`]).
type Fingerprint = Vec<Vec<(u64, bool, usize)>>;

/// A tag-only cache that mirrors [`rrb_sim::Cache`]'s replacement
/// behaviour exactly (LRU stamp refresh on hit, invalid-first victim
/// selection, FIFO fill stamps, xorshift-over-access-count random).
#[derive(Debug, Clone)]
struct ModelCache {
    line_bytes: u64,
    sets: Vec<Vec<ModelLine>>,
    replacement: Replacement,
    clock: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct ModelLine {
    tag: u64,
    valid: bool,
    stamp: u64,
}

impl ModelCache {
    fn new(cfg: &CacheConfig) -> ModelCache {
        let sets = (0..cfg.sets())
            .map(|_| (0..cfg.ways).map(|_| ModelLine { tag: 0, valid: false, stamp: 0 }).collect())
            .collect();
        ModelCache {
            line_bytes: cfg.line_bytes.max(1),
            sets,
            replacement: cfg.replacement,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) % self.sets.len() as u64) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / self.line_bytes / self.sets.len() as u64
    }

    fn probe(&self, addr: u64) -> bool {
        let tag = self.tag(addr);
        self.sets[self.set_index(addr)].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Mirrors `Cache::touch`: returns whether the access hit.
    fn touch(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let tag = self.tag(addr);
        let idx = self.set_index(addr);
        let replacement = self.replacement;
        let set = &mut self.sets[idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            if replacement == Replacement::Lru {
                line.stamp = clock;
            }
            self.hits += 1;
            return true;
        }
        let victim = if let Some(pos) = set.iter().position(|l| !l.valid) {
            pos
        } else {
            match replacement {
                Replacement::Lru | Replacement::Fifo => {
                    set.iter().enumerate().min_by_key(|(_, l)| l.stamp).map(|(i, _)| i).unwrap_or(0)
                }
                Replacement::Random => {
                    let mut x = clock.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % set.len() as u64) as usize
                }
            }
        };
        set[victim] = ModelLine { tag, valid: true, stamp: clock };
        self.misses += 1;
        false
    }

    /// Replacement-normalised state: tags, validity, and the *relative*
    /// stamp order per set. Two caches with equal fingerprints behave
    /// identically on any future access sequence under LRU/FIFO (victim
    /// choice depends only on stamp order within a set), so a repeated
    /// fingerprint at an iteration boundary proves the outcome vector
    /// periodic. Random replacement keys off the absolute access count
    /// and is excluded from cycle detection by the caller.
    fn fingerprint(&self) -> Fingerprint {
        self.sets
            .iter()
            .map(|set| {
                let mut order: Vec<usize> = (0..set.len()).collect();
                order.sort_by_key(|&i| (set[i].stamp, i));
                let mut rank = vec![0usize; set.len()];
                for (r, &i) in order.iter().enumerate() {
                    rank[i] = r;
                }
                set.iter().enumerate().map(|(i, l)| (l.tag, l.valid, rank[i])).collect()
            })
            .collect()
    }
}

/// One access site in the per-iteration stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteKind {
    Ifetch,
    Load,
    Store,
}

#[derive(Debug, Clone, Copy)]
struct Site {
    kind: SiteKind,
    addr: u64,
    /// Body index of the instruction this access belongs to.
    body_index: usize,
}

/// Outcome of one site in one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Outcome {
    /// L1 hit (for stores: probe hit; demand is unaffected).
    l1_hit: bool,
    /// L2 outcome when the access reached the partition.
    l2: Option<bool>,
}

/// The per-iteration access stream of `program` on `core`.
fn sites(program: &Program, core: CoreId) -> Vec<Site> {
    let ifetch_base = IFETCH_BASE + IFETCH_STRIDE * core.index() as u64;
    let mut out = Vec::new();
    for (i, instr) in program.body().iter().enumerate() {
        out.push(Site {
            kind: SiteKind::Ifetch,
            addr: ifetch_base + INSTR_BYTES * i as u64,
            body_index: i,
        });
        match instr {
            Instr::Load(addr) => {
                out.push(Site { kind: SiteKind::Load, addr: *addr, body_index: i });
            }
            Instr::Store(addr) => {
                out.push(Site { kind: SiteKind::Store, addr: *addr, body_index: i });
            }
            _ => {}
        }
    }
    out
}

/// Classifies every access of `program` on `core` against `cfg`'s cache
/// hierarchy. See the module docs for the replay semantics.
pub fn classify_accesses(program: &Program, cfg: &MachineConfig, core: CoreId) -> AccessClasses {
    let body = program.body();
    let stream = sites(program, core);
    if body.is_empty() || stream.is_empty() {
        return AccessClasses {
            il1: LevelClasses::default(),
            dl1: LevelClasses::default(),
            l2: LevelClasses::default(),
            steady_bus_per_iter: 0,
            steady_mc_per_iter: 0,
            prefix_bus: 0,
            prefix_mc: 0,
            min_gap: u64::MAX,
            converged: true,
            iterations_replayed: 0,
            prefix_iterations: 0,
            fully_replayed: true,
            il1_replay: ReplayStats::default(),
            dl1_replay: ReplayStats::default(),
            l2_replay: ReplayStats::default(),
        };
    }

    let mut il1 = ModelCache::new(&cfg.il1);
    let mut dl1 = ModelCache::new(&cfg.dl1);
    let mut l2 = ModelCache::new(&cfg.l2.partition(cfg.num_cores));
    // Random replacement keys off the absolute access counter, so a
    // repeated normalised state does not imply repeated behaviour.
    let cyclable = il1.replacement != Replacement::Random
        && dl1.replacement != Replacement::Random
        && l2.replacement != Replacement::Random;

    let target = match program.iterations() {
        Iterations::Finite(n) => n.min(MAX_REPLAY_ITERS),
        Iterations::Infinite => MAX_REPLAY_ITERS,
    };
    let fully_replayed = matches!(program.iterations(), Iterations::Finite(n) if n <= target);

    let mut outcomes: Vec<Vec<Outcome>> = Vec::new();
    let mut fingerprints: Vec<(Fingerprint, Fingerprint, Fingerprint)> = Vec::new();
    // `cycle = Some(j)` means the state after iteration `j` equals the
    // state after the last replayed iteration: iterations `j+1..` repeat.
    let mut cycle: Option<usize> = None;
    let mut replayed = 0u64;

    while replayed < target {
        let mut iter_outcomes = Vec::with_capacity(stream.len());
        for site in &stream {
            let outcome = match site.kind {
                SiteKind::Ifetch => {
                    let hit = il1.touch(site.addr);
                    let l2_out = if hit { None } else { Some(l2.touch(site.addr)) };
                    Outcome { l1_hit: hit, l2: l2_out }
                }
                SiteKind::Load => {
                    let hit = dl1.touch(site.addr);
                    let l2_out = if hit { None } else { Some(l2.touch(site.addr)) };
                    Outcome { l1_hit: hit, l2: l2_out }
                }
                SiteKind::Store => {
                    // Write-no-allocate: probe, refresh on a hit, and the
                    // buffered drain always reaches the bus and the L2.
                    let hit = dl1.probe(site.addr);
                    if hit {
                        dl1.touch(site.addr);
                    }
                    Outcome { l1_hit: hit, l2: Some(l2.touch(site.addr)) }
                }
            };
            iter_outcomes.push(outcome);
        }
        outcomes.push(iter_outcomes);
        replayed += 1;
        if cyclable && !fully_replayed {
            let fp = (il1.fingerprint(), dl1.fingerprint(), l2.fingerprint());
            if let Some(j) = fingerprints.iter().position(|f| *f == fp) {
                cycle = Some(j);
                break;
            }
            fingerprints.push(fp);
        }
    }

    let converged = fully_replayed || cycle.is_some();
    if !converged {
        // Unconverged replay: every verdict is Unknown and the demand is
        // the classic envelope (the caller falls back to
        // `profile_program` for the counts).
        let envelope = profile_program(program, cfg);
        let loads = body.iter().filter(|i| matches!(i, Instr::Load(_))).count() as u64;
        let stores = body.iter().filter(|i| matches!(i, Instr::Store(_))).count() as u64;
        return AccessClasses {
            il1: LevelClasses { unknown: body.len() as u64, ..LevelClasses::default() },
            dl1: LevelClasses { unknown: loads, ..LevelClasses::default() },
            l2: LevelClasses {
                unknown: (body.len() as u64) + loads + stores,
                ..LevelClasses::default()
            },
            steady_bus_per_iter: loads
                .saturating_mul(2)
                .saturating_add(stores)
                .saturating_add((body.len() as u64).saturating_mul(2)),
            steady_mc_per_iter: loads.saturating_add(body.len() as u64),
            prefix_bus: 0,
            prefix_mc: 0,
            min_gap: envelope.min_gap,
            converged: false,
            iterations_replayed: replayed,
            prefix_iterations: 0,
            fully_replayed: false,
            il1_replay: ReplayStats { hits: il1.hits, misses: il1.misses },
            dl1_replay: ReplayStats { hits: dl1.hits, misses: dl1.misses },
            l2_replay: ReplayStats { hits: l2.hits, misses: l2.misses },
        };
    }

    // The steady window: the proven-periodic iterations (after the cycle
    // point), or everything after the cold first iteration for a fully
    // replayed finite program.
    let steady_start = match cycle {
        Some(j) => j + 1,
        None => 1.min(outcomes.len().saturating_sub(1)),
    };
    let steady = &outcomes[steady_start..];
    let prefix = &outcomes[..steady_start];

    // Store drains reach the L2 in buffer-drain order, demand misses in
    // grant order; when both exist the interleaving at the partition is
    // timing-dependent and the replayed L2 order is not trustworthy.
    let has_stores = stream.iter().any(|s| s.kind == SiteKind::Store);
    let any_demand_miss = outcomes
        .iter()
        .flatten()
        .zip(stream.iter().cycle())
        .any(|(o, s)| s.kind != SiteKind::Store && !o.l1_hit);
    let l2_order_sound = !(has_stores && any_demand_miss);

    let verdict_at = |site_idx: usize, level_l2: bool| -> Classification {
        let window = if steady.is_empty() { prefix } else { steady };
        if level_l2 && !l2_order_sound {
            return Classification::Unknown;
        }
        let mut saw_hit = false;
        let mut saw_miss = false;
        for iter in window {
            let o = &iter[site_idx];
            let outcome = if level_l2 { o.l2 } else { Some(o.l1_hit) };
            match outcome {
                Some(true) => saw_hit = true,
                Some(false) => saw_miss = true,
                // Did not reach the L2 this iteration: the L1 absorbed it.
                None => {}
            }
        }
        match (saw_hit, saw_miss) {
            (true, false) => Classification::AlwaysHit,
            (false, true) => Classification::AlwaysMiss,
            (false, false) => Classification::AlwaysHit, // never reaches this level
            (true, true) => Classification::Unknown,
        }
    };

    let mut il1_c = LevelClasses::default();
    let mut dl1_c = LevelClasses::default();
    let mut l2_c = LevelClasses::default();
    for (idx, site) in stream.iter().enumerate() {
        let l1_v = verdict_at(idx, false);
        match site.kind {
            SiteKind::Ifetch => tally(&mut il1_c, l1_v),
            SiteKind::Load => tally(&mut dl1_c, l1_v),
            SiteKind::Store => {}
        }
        // Only accesses that can reach the partition get an L2 verdict.
        let reaches_l2 =
            site.kind == SiteKind::Store || outcomes.iter().any(|iter| iter[idx].l2.is_some());
        if reaches_l2 {
            tally(&mut l2_c, verdict_at(idx, true));
        }
    }

    // Demand: per-iteration worst case over the steady window, exact per
    // iteration within it. An L1 hit is free; an L1 miss that hits the L2
    // is one bus transaction; an L2 miss is two (request + refill) plus
    // one MC admission; a store drain is always one bus transaction.
    let iter_demand = |iter: &[Outcome]| -> (u64, u64) {
        let mut bus = 0u64;
        let mut mc = 0u64;
        for (o, s) in iter.iter().zip(stream.iter()) {
            match s.kind {
                SiteKind::Store => bus += 1,
                SiteKind::Ifetch | SiteKind::Load => {
                    if !o.l1_hit {
                        match (l2_order_sound, o.l2) {
                            (true, Some(true)) => bus += 1,
                            _ => {
                                bus += 2;
                                mc += 1;
                            }
                        }
                    }
                }
            }
        }
        (bus, mc)
    };
    let window = if steady.is_empty() { prefix } else { steady };
    let (steady_bus, steady_mc) = window
        .iter()
        .map(|it| iter_demand(it))
        .fold((0, 0), |(b, m), (ib, im)| (u64::max(b, ib), u64::max(m, im)));
    let (prefix_bus, prefix_mc) = prefix
        .iter()
        .map(|it| iter_demand(it))
        .fold((0u64, 0u64), |(b, m), (ib, im)| (b.saturating_add(ib), m.saturating_add(im)));

    let min_gap = replay_min_gap(body, cfg, &stream, &outcomes, has_stores);

    AccessClasses {
        il1: il1_c,
        dl1: dl1_c,
        l2: l2_c,
        steady_bus_per_iter: steady_bus,
        steady_mc_per_iter: steady_mc,
        prefix_bus,
        prefix_mc,
        min_gap,
        converged: true,
        iterations_replayed: replayed,
        prefix_iterations: steady_start as u64,
        fully_replayed,
        il1_replay: ReplayStats { hits: il1.hits, misses: il1.misses },
        dl1_replay: ReplayStats { hits: dl1.hits, misses: dl1.misses },
        l2_replay: ReplayStats { hits: l2.hits, misses: l2.misses },
    }
}

fn tally(level: &mut LevelClasses, v: Classification) {
    match v {
        Classification::AlwaysHit => level.always_hit += 1,
        Classification::AlwaysMiss => level.always_miss += 1,
        Classification::Unknown => level.unknown += 1,
    }
}

/// Proven lower bound on the core-side gap between consecutive requests,
/// from the replayed outcomes: only sites that actually missed in some
/// iteration count as requesting (an always-hitting load never reaches
/// the bus), which widens the gap over the all-loads-request convention
/// of [`crate::profile`].
fn replay_min_gap(
    body: &[Instr],
    cfg: &MachineConfig,
    stream: &[Site],
    outcomes: &[Vec<Outcome>],
    has_stores: bool,
) -> u64 {
    // Buffered stores drain back-to-back: no usable gap.
    if has_stores {
        return 0;
    }
    let requested = |idx: usize| outcomes.iter().any(|iter| !iter[idx].l1_hit);
    // A steadily missing instruction stream can fetch-miss on adjacent
    // instructions; only cold fetch misses keep an L1 lookup between
    // themselves and the next request (the profile-layer convention).
    let steady_ifetch_miss = stream.iter().enumerate().any(|(idx, s)| {
        s.kind == SiteKind::Ifetch && outcomes.iter().skip(1).any(|iter| !iter[idx].l1_hit)
    });
    if steady_ifetch_miss {
        return 0;
    }
    let positions: Vec<usize> = stream
        .iter()
        .enumerate()
        .filter(|(idx, s)| s.kind == SiteKind::Load && requested(*idx))
        .map(|(_, s)| s.body_index)
        .collect();
    if positions.is_empty() {
        return u64::MAX;
    }
    let lookup = cfg.dl1.latency.min(cfg.il1.latency);
    let mut min_gap = u64::MAX;
    let k = positions.len();
    for idx in 0..k {
        let start = positions[idx];
        let end = positions[(idx + 1) % k];
        let mut gap = 0u64;
        let mut p = (start + 1) % body.len();
        while p != end {
            gap = gap.saturating_add(local_latency(&body[p], cfg));
            p = (p + 1) % body.len();
        }
        min_gap = min_gap.min(gap);
        if min_gap == 0 {
            break;
        }
    }
    min_gap.saturating_add(lookup)
}

/// Derives a [`CoreProfile`] with classification-proven demand: the
/// pointwise best of the classic envelope and the replayed counts. A
/// converged replay bounds an endless program's *total* traffic whenever
/// its steady state is silent (only the cold prefix requests), and always
/// tightens the per-request gap to the accesses that provably miss.
pub fn classified_profile(program: &Program, cfg: &MachineConfig, core: CoreId) -> CoreProfile {
    let envelope = profile_program(program, cfg);
    let classes = classify_accesses(program, cfg, core);
    if !classes.converged {
        return envelope;
    }
    let (bus, mc) = match program.iterations() {
        Iterations::Finite(n) => {
            // The cold prefix is exact; every iteration after it is
            // covered by the proven steady per-iteration rate.
            let rest = n.saturating_sub(classes.prefix_iterations);
            let total =
                |prefix: u64, steady: u64| Some(prefix.saturating_add(steady.saturating_mul(rest)));
            (
                total(classes.prefix_bus, classes.steady_bus_per_iter),
                total(classes.prefix_mc, classes.steady_mc_per_iter),
            )
        }
        Iterations::Infinite => (
            (classes.steady_bus_per_iter == 0).then_some(classes.prefix_bus),
            (classes.steady_mc_per_iter == 0).then_some(classes.prefix_mc),
        ),
    };
    fn min_opt(a: Option<u64>, b: Option<u64>) -> Option<u64> {
        match (a, b) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (x, None) | (None, x) => x,
        }
    }
    CoreProfile {
        bus_requests: min_opt(envelope.bus_requests, bus),
        mc_requests: min_opt(envelope.mc_requests, mc),
        min_gap: envelope.min_gap.max(classes.min_gap),
        isolated_cycles: envelope.isolated_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_sim::{Machine, ProgramBuilder};

    fn toy() -> MachineConfig {
        MachineConfig::toy(4, 2)
    }

    #[test]
    fn dl1_resident_loop_is_proven_silent() {
        // Two loads to the same line: the first misses cold, both hit
        // forever after.
        let prog = ProgramBuilder::new().load(0x100).load(0x104).nops(2).branch().endless().build();
        let cfg = toy();
        let c = classify_accesses(&prog, &cfg, CoreId::new(0));
        assert!(c.converged);
        assert_eq!(c.dl1.always_hit, 2, "{c:?}");
        assert_eq!(c.steady_bus_per_iter, 0, "steady-state silent: {c:?}");
        assert_eq!(c.steady_mc_per_iter, 0);
        assert!(c.prefix_bus > 0, "cold fill still pays: {c:?}");
        let p = classified_profile(&prog, &cfg, CoreId::new(0));
        assert_eq!(p.bus_requests, Some(c.prefix_bus), "endless but provably bounded");
        // The cold miss keeps the first load a requester, but the gap now
        // spans the whole loop instead of the adjacent-load distance.
        let env = profile_program(&prog, &cfg);
        assert!(p.min_gap > env.min_gap, "classified {} vs envelope {}", p.min_gap, env.min_gap);
    }

    #[test]
    fn envelope_is_never_tighter_than_classification() {
        let prog = ProgramBuilder::new().load(0x100).nops(3).branch().iterations(10).build();
        let cfg = toy();
        let env = profile_program(&prog, &cfg);
        let cls = classified_profile(&prog, &cfg, CoreId::new(0));
        assert!(cls.bus_requests.unwrap() <= env.bus_requests.unwrap());
        assert!(cls.mc_requests.unwrap() <= env.mc_requests.unwrap());
        assert!(cls.min_gap >= env.min_gap);
    }

    #[test]
    fn replay_matches_machine_dl1_stats_exactly_on_a_finite_load_loop() {
        // The strongest pin: a fully replayed finite program's model DL1
        // must agree with the cycle-accurate machine's DL1 counters.
        let cfg = toy();
        let stride = cfg.dl1.sets() * cfg.dl1.line_bytes;
        let mut b = ProgramBuilder::new();
        for i in 0..(cfg.dl1.ways as u64 + 1) {
            b = b.load(i * stride); // same-set thrash, the rsk shape
        }
        let prog = b.branch().iterations(20).build();

        let mut dl1 = ModelCache::new(&cfg.dl1);
        for _ in 0..20 {
            for instr in prog.body() {
                if let Instr::Load(a) = instr {
                    dl1.touch(*a);
                }
            }
        }

        let mut m = Machine::new(cfg.clone()).expect("config");
        m.load_program(CoreId::new(0), prog);
        m.run().expect("run");
        let stats = m.dl1_stats(CoreId::new(0));
        assert_eq!((dl1.hits, dl1.misses), (stats.hits, stats.misses));
    }

    #[test]
    fn random_replacement_degrades_to_unknown() {
        let mut cfg = toy();
        cfg.dl1.replacement = Replacement::Random;
        let prog = ProgramBuilder::new().load(0x100).branch().endless().build();
        let c = classify_accesses(&prog, &cfg, CoreId::new(0));
        assert!(!c.converged);
        assert!(c.dl1.unknown > 0);
        let p = classified_profile(&prog, &cfg, CoreId::new(0));
        assert_eq!(p.bus_requests, None, "falls back to the envelope");
    }

    #[test]
    fn store_plus_demand_miss_degrades_the_l2_level_only() {
        let cfg = toy();
        let stride = cfg.dl1.sets() * cfg.dl1.line_bytes;
        let mut b = ProgramBuilder::new().store(0x2000);
        for i in 0..(cfg.dl1.ways as u64 + 1) {
            b = b.load(i * stride);
        }
        let prog = b.branch().endless().build();
        let c = classify_accesses(&prog, &cfg, CoreId::new(0));
        assert!(c.converged);
        assert!(c.dl1.always_miss >= 1, "thrash still proven at L1: {c:?}");
        assert_eq!(c.l2.always_hit + c.l2.always_miss, 0, "L2 order unsound: {c:?}");
        assert!(c.l2.unknown > 0);
        assert_eq!(c.min_gap, 0, "stores force zero gap");
    }

    #[test]
    fn always_hitting_load_is_excluded_from_the_gap() {
        // load A; load A again (hits even cold); many nops; branch.
        // Classic profiling sees two adjacent loads (gap = lookup);
        // classification knows the second never requests.
        let cfg = toy();
        let prog =
            ProgramBuilder::new().load(0x100).load(0x104).nops(6).branch().iterations(30).build();
        let env = profile_program(&prog, &cfg);
        let cls = classified_profile(&prog, &cfg, CoreId::new(0));
        assert!(
            cls.min_gap > env.min_gap,
            "classified {} <= envelope {}",
            cls.min_gap,
            env.min_gap
        );
    }
}
