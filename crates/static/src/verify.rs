//! Bounded exhaustive model checking of the abstract arbiter model:
//! *exact* worst-case per-request delays, with replayable adversarial
//! witnesses.
//!
//! [`bounds`](crate::bounds) derives closed-form *upper* bounds on the
//! simulator's `γ = granted - ready`. This module closes the other side:
//! for each arbitrated resource it drives the **real arbiter
//! implementation** ([`rrb_sim::build_arbiter`]) over an abstract
//! single-resource model and enumerates every request-arrival alignment,
//! computing the exact worst-case delay the observed core can suffer.
//! `exact <= static` certifies the analytic model sound; `exact / static`
//! is its tightness certificate; and the maximising alignment is returned
//! as a [`Witness`] that both replays deterministically here
//! ([`Witness::replay`]) and synthesises into a concrete simulator
//! workload (`RunSpec::from_witness` in the core crate).
//!
//! ## The abstract model
//!
//! One resource in isolation, arbitrated on the uniform worst-case
//! occupancy `L` (exactly the view the simulator's arbiters get). The
//! observed core 0 — where the measurement methodology places the scua —
//! posts a *stream* of requests, reposting `gap` cycles after each
//! completion; every requesting contender saturates (reposts immediately
//! on completion). A stream rather than a single cold request matters:
//! the worst arbiter states (e.g. round-robin's head pointing *just past*
//! the observed core) are only reachable after the observed core's own
//! grants. The model mirrors the simulator's in-cycle phase order
//! (completion, then repost, then select), so a delay observed here is a
//! delay the full machine can exhibit.
//!
//! ## Alignment enumeration and per-arbiter pruning
//!
//! An alignment is the observed stream's repost gap plus one initial
//! ready offset per contender. The gap sweep is floored at the observed
//! profile's `min_gap` — a sound lower bound on how fast the real core
//! can repost — so the exact bound certifies the *reachable* worst case
//! of the actual workload, not the gap-0 envelope (e.g. for back-to-back
//! loads the Eq. 1 bound is off by exactly the L1 lookup latency, and
//! the checker proves it). The full space is `(P+1)^(m+1)` for period
//! `P` and `m` contenders; per-arbiter symmetry collapses it:
//!
//! * **rr / grr** — rotation symmetry: saturating contenders are
//!   interchangeable, so any contender offset assignment is a relabelling
//!   reachable by rotating the head pointer(s); the observed-gap sweep
//!   over a full rotation period visits every (head, phase) class.
//!   Contender offsets collapse to zero.
//! * **fp** — priority-level dominance: the observed core has top
//!   priority, so pending lower-priority requests never overtake it; only
//!   the in-flight transaction blocks. Contender offsets collapse to
//!   zero.
//! * **tdma** — slot-phase classes: grants depend only on `now mod Nc·s`
//!   and the owner's own request; contenders cannot delay the observed
//!   core at all. Only the observed gap (slot phase) is swept.
//! * **fifo** — queue-prefix canonicalisation: only the multiset of
//!   contender ready times relative to the observed request within one
//!   occupancy matters (identical contenders make permutations
//!   equivalent, and the gap sweep covers coarser shifts); the checker
//!   enumerates nondecreasing offset tuples over `0..=L`.
//!
//! The horizon bounds how many cycles each alignment is simulated; the
//! default auto horizon covers several rotation periods, which the
//! repo-level property test pins against the closed-form bounds.

use crate::bounds::{can_request, resource_models};
use crate::profile::CoreProfile;
use rrb_sim::{build_arbiter, ArbiterKind, MachineConfig, RequestView, ResourceKind};

/// Options for the bounded model checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerifyOptions {
    /// Cycles simulated per alignment; `0` picks an automatic horizon of
    /// several rotation periods (enough for every alignment's schedule to
    /// reach and repeat its worst phase).
    pub horizon: u64,
}

impl VerifyOptions {
    /// Explicit cycle horizon per alignment (`0` = auto).
    pub fn with_horizon(horizon: u64) -> Self {
        VerifyOptions { horizon }
    }

    fn effective_horizon(&self, period: u64, occupancy: u64) -> u64 {
        if self.horizon > 0 {
            self.horizon
        } else {
            period.saturating_mul(8).saturating_add(occupancy.saturating_mul(16)).saturating_add(64)
        }
    }
}

/// One request-arrival alignment of the abstract model.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Alignment {
    /// Cycles between an observed completion and its next post.
    observed_gap: u64,
    /// Initial ready offset per contender core (`1..Nc`); `None` for a
    /// core that never requests at this resource.
    offsets: Vec<Option<u64>>,
}

/// The adversarial alignment that achieves the exact worst-case delay:
/// everything needed to re-simulate it, here or on the full machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Resource the delay occurs at.
    pub resource: ResourceKind,
    /// Arbiter policy under test.
    pub arbiter: ArbiterKind,
    /// Number of cores in the model.
    pub num_cores: usize,
    /// Uniform worst-case occupancy the arbiter budgeted for.
    pub occupancy: u64,
    /// Observed core's repost gap (completion to next post).
    pub observed_gap: u64,
    /// Initial ready offset per contender core (`1..Nc`); `None` marks a
    /// core that never requests at this resource.
    pub contender_offsets: Vec<Option<u64>>,
    /// The exact worst-case delay this alignment achieves.
    pub delay: u64,
    /// Cycle horizon the alignment was explored to.
    pub horizon: u64,
}

impl Witness {
    /// Deterministically re-simulates the witness alignment in the
    /// abstract model and returns the worst delay it exhibits — by
    /// construction equal to [`Witness::delay`]. This is the cheap
    /// certificate check: a mismatch means the checker is broken.
    pub fn replay(&self) -> Option<u64> {
        let alignment =
            Alignment { observed_gap: self.observed_gap, offsets: self.contender_offsets.clone() };
        simulate_alignment(self.arbiter, self.num_cores, self.occupancy, &alignment, self.horizon)
    }

    /// Contender core indices (`1..Nc`) that post requests in this
    /// witness.
    pub fn requesting_contenders(&self) -> Vec<usize> {
        self.contender_offsets.iter().enumerate().filter_map(|(i, o)| o.map(|_| i + 1)).collect()
    }
}

/// The exact worst-case per-request delay at one resource, with the
/// witness that achieves it and the exploration accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactBound {
    /// Resource this bound covers.
    pub resource: ResourceKind,
    /// Arbiter policy the resource uses.
    pub arbiter: ArbiterKind,
    /// Number of cores in the model.
    pub num_cores: usize,
    /// Uniform worst-case occupancy.
    pub occupancy: u64,
    /// Exact worst-case `granted - ready` for the observed core; `None`
    /// when no grant is reachable (starvation).
    pub exact: Option<u64>,
    /// The maximising alignment, absent only when `exact` is `None` or
    /// trivially zero with no contention to witness.
    pub witness: Option<Witness>,
    /// Alignments actually simulated.
    pub explored: u64,
    /// Alignments eliminated by the per-arbiter symmetry arguments
    /// (the full space minus `explored`, saturating).
    pub pruned: u64,
    /// Why `exact` is `None`, when it is.
    pub reason: Option<String>,
}

/// Rotation period of the arbiter over `nc` cores: the cycle count after
/// which the grant schedule's phase classes repeat.
fn rotation_period(arbiter: ArbiterKind, nc: u64, occupancy: u64) -> u64 {
    let occ = occupancy.max(1);
    match arbiter {
        ArbiterKind::RoundRobin | ArbiterKind::Fifo | ArbiterKind::FixedPriority => {
            nc.saturating_mul(occ)
        }
        ArbiterKind::GroupedRoundRobin { group_size } => {
            let g = (group_size.max(1)) as u64;
            g.saturating_mul(nc.div_ceil(g)).saturating_mul(occ)
        }
        ArbiterKind::Tdma { slot_cycles } => nc.saturating_mul(slot_cycles.max(1)),
    }
}

/// Nondecreasing tuples of length `len` over `0..=max` — the canonical
/// representatives of contender offset multisets for FIFO.
fn nondecreasing_tuples(len: usize, max: u64) -> Vec<Vec<u64>> {
    fn rec(len: usize, max: u64, start: u64, cur: &mut Vec<u64>, out: &mut Vec<Vec<u64>>) {
        if cur.len() == len {
            out.push(cur.clone());
            return;
        }
        for v in start..=max {
            cur.push(v);
            rec(len, max, v, cur, out);
            cur.pop();
        }
    }
    let mut out = Vec::new();
    rec(len, max, 0, &mut Vec::new(), &mut out);
    out
}

/// Simulates one alignment: the real arbiter over the single-resource
/// abstract model, mirroring the machine's in-cycle phase order
/// (completion, repost, select). Returns the worst observed-core delay,
/// or `None` if the observed core is never granted within the horizon.
fn simulate_alignment(
    arbiter: ArbiterKind,
    num_cores: usize,
    occupancy: u64,
    alignment: &Alignment,
    horizon: u64,
) -> Option<u64> {
    let occ = occupancy.max(1);
    let mut arb = build_arbiter(arbiter, num_cores);
    let mut pending: Vec<Option<u64>> = Vec::with_capacity(num_cores);
    pending.push(Some(alignment.observed_gap));
    pending.extend(alignment.offsets.iter().copied());
    debug_assert_eq!(pending.len(), num_cores);
    let mut view: Vec<Option<RequestView>> = vec![None; num_cores];
    let mut active: Option<(usize, u64)> = None;
    let mut worst: Option<u64> = None;
    for now in 0..horizon {
        if let Some((core, until)) = active {
            if until == now {
                // Contenders saturate; the observed stream reposts after
                // its gap.
                pending[core] = Some(if core == 0 { now + alignment.observed_gap } else { now });
                active = None;
            }
        }
        if active.is_none() {
            for (slot, ready) in view.iter_mut().zip(pending.iter()) {
                *slot = ready.map(|ready| RequestView { ready, occupancy: occ });
            }
            if let Some(core) = arb.select(&view, now) {
                let ready = pending[core].take().unwrap_or(now);
                if core == 0 {
                    let gamma = now.saturating_sub(ready);
                    worst = Some(worst.map_or(gamma, |w| w.max(gamma)));
                }
                active = Some((core, now + occ));
            }
        }
    }
    worst
}

/// Enumerates the pruned alignment family for one resource, returning the
/// alignments plus the size of the *unpruned* space `(P+1)^(m+1)`.
///
/// The observed-gap sweep is floored at `gap_floor` — the observed
/// profile's [`CoreProfile::min_gap`], a sound lower bound on how fast
/// the real core can repost. Gaps below it are physically unreachable
/// (e.g. an in-order core always burns the L1 lookup before its next
/// request is ready), so excluding them keeps `exact` an upper bound on
/// anything the machine measures while certifying a *tighter* reachable
/// worst case than the gap-0 envelope.
fn alignment_family(
    arbiter: ArbiterKind,
    period: u64,
    occupancy: u64,
    gap_floor: u64,
    requesting: &[bool],
) -> (Vec<Alignment>, u64) {
    let m = requesting.iter().filter(|&&r| r).count();
    let place = |tuple: &[u64]| -> Vec<Option<u64>> {
        let mut offsets = Vec::with_capacity(requesting.len());
        let mut next = 0usize;
        for &req in requesting {
            if req {
                offsets.push(Some(tuple[next]));
                next += 1;
            } else {
                offsets.push(None);
            }
        }
        offsets
    };
    let tuples: Vec<Vec<u64>> = match arbiter {
        // Queue-prefix canonicalisation: offsets within one occupancy,
        // order-normalised.
        ArbiterKind::Fifo => nondecreasing_tuples(m, occupancy.max(1)),
        // Rotation symmetry / priority dominance / slot-phase classes:
        // contender offsets collapse to zero.
        _ => vec![vec![0; m]],
    };
    let mut family = Vec::with_capacity(tuples.len() * (period as usize + 1));
    for gap in gap_floor..=gap_floor.saturating_add(period) {
        for tuple in &tuples {
            family.push(Alignment { observed_gap: gap, offsets: place(tuple) });
        }
    }
    let unpruned =
        u64::try_from((u128::from(period) + 1).saturating_pow(m as u32 + 1)).unwrap_or(u64::MAX);
    (family, unpruned)
}

/// Computes the exact worst-case per-request delay for the observed core
/// (core 0) at every arbitrated resource of `cfg`, given one demand
/// profile per core (missing trailing cores are treated as idle).
///
/// Contenders whose profile can request at a resource are modelled as
/// saturating streams — the §3 measurement setup and the adversarial
/// envelope of any real contender behaviour — so `exact` is exact for
/// the worst admissible contention, and `exact <= static` must hold
/// against [`StaticBound::analyze`](crate::bounds::StaticBound::analyze)
/// on the same profiles.
pub fn exact_bounds(
    cfg: &MachineConfig,
    profiles: &[CoreProfile],
    opts: &VerifyOptions,
) -> Vec<ExactBound> {
    let num_cores = cfg.num_cores;
    let mut padded: Vec<CoreProfile> = profiles.to_vec();
    padded.resize(num_cores, CoreProfile::idle());

    resource_models(cfg)
        .iter()
        .map(|model| {
            let mut row = ExactBound {
                resource: model.kind,
                arbiter: model.arbiter,
                num_cores,
                occupancy: model.max_occ,
                exact: None,
                witness: None,
                explored: 0,
                pruned: 0,
                reason: None,
            };
            if !can_request(&padded[0], model.kind) {
                row.exact = Some(0);
                row.reason = Some(format!(
                    "observed core posts no {} requests; nothing to delay",
                    model.kind.slug()
                ));
                return row;
            }
            if let ArbiterKind::Tdma { slot_cycles } = model.arbiter {
                if slot_cycles < model.max_occ {
                    row.reason = Some(format!(
                        "tdma slot {slot_cycles} cannot fit the worst {} occupancy {}; \
                         the observed request starves",
                        model.kind.slug(),
                        model.max_occ
                    ));
                    return row;
                }
            }
            if let ArbiterKind::GroupedRoundRobin { group_size: 0 } = model.arbiter {
                row.reason = Some(String::from("grouped round-robin group size 0 is invalid"));
                return row;
            }
            let requesting: Vec<bool> =
                padded[1..num_cores].iter().map(|p| can_request(p, model.kind)).collect();
            let period = rotation_period(model.arbiter, num_cores as u64, model.max_occ);
            // Floor the observed-gap sweep at the observed profile's
            // minimum repost gap. A floor beyond one full rotation is
            // folded back to its phase class one period up: by then the
            // saturating contenders have rebuilt the same arbiter state,
            // so only the phase (and "slower than a rotation") matter.
            let min_gap = padded[0].min_gap;
            let gap_floor = if min_gap > period {
                period.saturating_add(min_gap % period.max(1))
            } else {
                min_gap
            };
            let horizon = opts
                .effective_horizon(period, model.max_occ)
                .saturating_add(gap_floor.saturating_mul(8));
            let (family, unpruned) =
                alignment_family(model.arbiter, period, model.max_occ, gap_floor, &requesting);
            row.explored = family.len() as u64;
            row.pruned = unpruned.saturating_sub(row.explored);
            for alignment in &family {
                let Some(delay) =
                    simulate_alignment(model.arbiter, num_cores, model.max_occ, alignment, horizon)
                else {
                    continue;
                };
                if row.exact.is_none_or(|e| delay > e) {
                    row.exact = Some(delay);
                    row.witness = Some(Witness {
                        resource: model.kind,
                        arbiter: model.arbiter,
                        num_cores,
                        occupancy: model.max_occ,
                        observed_gap: alignment.observed_gap,
                        contender_offsets: alignment.offsets.clone(),
                        delay,
                        horizon,
                    });
                }
            }
            if row.exact.is_none() {
                row.reason = Some(format!(
                    "observed core never granted at the {} within horizon {horizon}",
                    model.kind.slug()
                ));
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::StaticBound;
    use rrb_sim::McQueueConfig;

    fn saturating_profiles(nc: usize) -> Vec<CoreProfile> {
        vec![CoreProfile::saturating(); nc]
    }

    fn exact_total(rows: &[ExactBound]) -> Option<u64> {
        let mut total = 0u64;
        for r in rows {
            total = total.saturating_add(r.exact?);
        }
        Some(total)
    }

    #[test]
    fn round_robin_exact_matches_eq1() {
        for (nc, l) in [(2usize, 1u64), (2, 2), (4, 2), (4, 3), (6, 2)] {
            let cfg = MachineConfig::toy(nc, l);
            let rows = exact_bounds(&cfg, &saturating_profiles(nc), &VerifyOptions::default());
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0].exact, Some((nc as u64 - 1) * l), "nc={nc} l={l}");
        }
    }

    #[test]
    fn fifo_exact_matches_round_robin_envelope() {
        let mut cfg = MachineConfig::toy(4, 2);
        cfg.topology.bus.arbiter = ArbiterKind::Fifo;
        let rows = exact_bounds(&cfg, &saturating_profiles(4), &VerifyOptions::default());
        assert_eq!(rows[0].exact, Some(6));
    }

    #[test]
    fn fixed_priority_exact_is_blocking_only() {
        // The observed core has top priority: only the in-flight
        // transaction delays it, by at most L - 1 cycles.
        let mut cfg = MachineConfig::toy(4, 2);
        cfg.topology.bus.arbiter = ArbiterKind::FixedPriority;
        let rows = exact_bounds(&cfg, &saturating_profiles(4), &VerifyOptions::default());
        assert_eq!(rows[0].exact, Some(1));
    }

    #[test]
    fn tdma_exact_matches_slot_geometry() {
        let mut cfg = MachineConfig::toy(4, 2);
        cfg.topology.bus.arbiter = ArbiterKind::Tdma { slot_cycles: 5 };
        let rows = exact_bounds(&cfg, &saturating_profiles(4), &VerifyOptions::default());
        // (4-1)*5 + 2-1 = 16: the static tdma bound is tight.
        assert_eq!(rows[0].exact, Some(16));
    }

    #[test]
    fn tdma_starvation_has_no_exact_bound() {
        let mut cfg = MachineConfig::toy(4, 4);
        cfg.topology.bus.arbiter = ArbiterKind::Tdma { slot_cycles: 3 };
        let rows = exact_bounds(&cfg, &saturating_profiles(4), &VerifyOptions::default());
        assert_eq!(rows[0].exact, None);
        assert!(rows[0].reason.as_deref().unwrap_or("").contains("starves"));
    }

    #[test]
    fn grouped_rr_exact_counts_group_rotation() {
        let mut cfg = MachineConfig::toy(4, 2);
        cfg.topology.bus.arbiter = ArbiterKind::GroupedRoundRobin { group_size: 2 };
        let rows = exact_bounds(&cfg, &saturating_profiles(4), &VerifyOptions::default());
        assert_eq!(rows[0].exact, Some(6));
    }

    #[test]
    fn two_level_topology_gets_an_exact_bound_per_resource() {
        let mut cfg = MachineConfig::toy(4, 2);
        cfg.topology.mc = Some(McQueueConfig { service_occupancy: 3, arbiter: ArbiterKind::Fifo });
        let rows = exact_bounds(&cfg, &saturating_profiles(4), &VerifyOptions::default());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].exact, Some(6), "bus: (4-1)*2");
        assert_eq!(rows[1].exact, Some(9), "mc: (4-1)*3");
        assert_eq!(exact_total(&rows), Some(15));
    }

    #[test]
    fn exact_never_exceeds_static_on_the_same_profiles() {
        for arbiter in [
            ArbiterKind::RoundRobin,
            ArbiterKind::FixedPriority,
            ArbiterKind::Fifo,
            ArbiterKind::Tdma { slot_cycles: 6 },
            ArbiterKind::GroupedRoundRobin { group_size: 2 },
        ] {
            let mut cfg = MachineConfig::toy(4, 2);
            cfg.topology.bus.arbiter = arbiter;
            let profiles = saturating_profiles(4);
            let rows = exact_bounds(&cfg, &profiles, &VerifyOptions::default());
            let statics = StaticBound::analyze(&cfg, &profiles);
            for row in &rows {
                let stat = statics.resource(row.resource).and_then(|r| r.bound);
                if let (Some(exact), Some(stat)) = (row.exact, stat) {
                    assert!(exact <= stat, "{arbiter:?}: exact {exact} > static {stat}");
                }
            }
        }
    }

    #[test]
    fn witness_replay_reproduces_the_exact_delay() {
        for arbiter in [
            ArbiterKind::RoundRobin,
            ArbiterKind::FixedPriority,
            ArbiterKind::Fifo,
            ArbiterKind::Tdma { slot_cycles: 6 },
            ArbiterKind::GroupedRoundRobin { group_size: 2 },
        ] {
            let mut cfg = MachineConfig::toy(4, 2);
            cfg.topology.bus.arbiter = arbiter;
            let rows = exact_bounds(&cfg, &saturating_profiles(4), &VerifyOptions::default());
            let witness = rows[0].witness.as_ref().expect("witness");
            assert_eq!(witness.replay(), rows[0].exact, "{arbiter:?}");
            assert_eq!(Some(witness.delay), rows[0].exact, "{arbiter:?}");
        }
    }

    #[test]
    fn observed_min_gap_tightens_the_exact_bound() {
        let cfg = MachineConfig::toy(4, 2);
        let mut profiles = saturating_profiles(4);
        profiles[0].min_gap = 1;
        let rows = exact_bounds(&cfg, &profiles, &VerifyOptions::default());
        // Reposting in the completion cycle itself (gap 0) is the only
        // alignment reaching (Nc-1)*L = 6: flooring at the real core's
        // repost latency certifies the reachable worst case, one lower.
        assert_eq!(rows[0].exact, Some(5));
        assert!(rows[0].witness.as_ref().expect("witness").observed_gap >= 1);
    }

    #[test]
    fn huge_min_gap_folds_back_to_its_phase_class() {
        let cfg = MachineConfig::toy(4, 2);
        let mut profiles = saturating_profiles(4);
        profiles[0].min_gap = 1000; // sparse requester, far beyond a rotation
        let rows = exact_bounds(&cfg, &profiles, &VerifyOptions::default());
        let exact = rows[0].exact.expect("still granted");
        assert!(exact <= 6, "folded sweep stays within the envelope: {exact}");
        assert!(exact >= 4, "a sparse request still eats a near-full rotation: {exact}");
    }

    #[test]
    fn idle_observed_core_has_a_trivial_exact_bound() {
        let cfg = MachineConfig::toy(4, 2);
        let mut profiles = saturating_profiles(4);
        profiles[0] = CoreProfile::idle();
        let rows = exact_bounds(&cfg, &profiles, &VerifyOptions::default());
        assert_eq!(rows[0].exact, Some(0));
        assert!(rows[0].witness.is_none());
    }

    #[test]
    fn single_core_suffers_no_delay() {
        let cfg = MachineConfig::toy(1, 2);
        let rows = exact_bounds(&cfg, &saturating_profiles(1), &VerifyOptions::default());
        assert_eq!(rows[0].exact, Some(0));
    }

    #[test]
    fn pruning_is_accounted_for() {
        let cfg = MachineConfig::toy(4, 2);
        let rows = exact_bounds(&cfg, &saturating_profiles(4), &VerifyOptions::default());
        // Period 8: 9 gap values, contender offsets pruned to one tuple.
        assert_eq!(rows[0].explored, 9);
        assert_eq!(rows[0].pruned, (9u64.pow(4)) - 9);
    }
}
