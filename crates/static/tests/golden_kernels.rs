//! Golden-kernel pins: the cache classification's replay must agree with
//! the cycle-accurate simulator's DL1 / L2-partition hit-miss counters on
//! the paper's kernels, run alone (no contention can change a private
//! cache's behaviour, so run-alone is the ground truth for the replay).

use rrb_kernels::{rsk, rsk_capacity, rsk_l2_miss_nop, rsk_pointer_chase, AccessKind};
use rrb_sim::{CoreId, Machine, MachineConfig, Program, ResourceId};
use rrb_static::{classified_profile, classify_accesses, AccessClasses};

fn core0() -> CoreId {
    CoreId::new(0)
}

/// Rebuilds an endless kernel as a finite program so the replay covers
/// every iteration and the comparison with the machine run is exact.
fn finite(kernel: &Program, iterations: u64) -> Program {
    Program::from_body(kernel.body().to_vec(), iterations)
}

/// Runs `prog` alone on `cfg` and checks the model caches against the
/// simulator counter for counter.
fn pin_replay_against_machine(prog: &Program, cfg: &MachineConfig) -> (AccessClasses, Machine) {
    let c = classify_accesses(prog, cfg, core0());
    assert!(c.converged, "golden kernels must converge: {c:?}");
    assert!(c.fully_replayed, "finite-ised kernels must replay fully");

    let mut m = Machine::new(cfg.clone()).expect("valid config");
    m.load_program(core0(), prog.clone());
    let summary = m.run().expect("run-alone terminates");
    assert!(summary.core(core0()).completed());

    let dl1 = m.dl1_stats(core0());
    assert_eq!(
        (c.dl1_replay.hits, c.dl1_replay.misses),
        (dl1.hits, dl1.misses),
        "model DL1 diverged from the simulator"
    );
    let l2 = m.l2().stats(core0());
    assert_eq!(
        (c.l2_replay.hits, c.l2_replay.misses),
        (l2.hits, l2.misses),
        "model L2 partition diverged from the simulator"
    );
    (c, m)
}

#[test]
fn rsk_load_is_always_miss_at_dl1_and_always_hit_at_l2() {
    let cfg = MachineConfig::toy(4, 2);
    let prog = finite(&rsk(AccessKind::Load, &cfg, core0()), 20);
    let loads = prog.memory_ops_per_iteration();
    let (c, _m) = pin_replay_against_machine(&prog, &cfg);
    assert_eq!(c.dl1.always_miss, loads, "the rsk thrashes its DL1 set: {c:?}");
    assert_eq!(c.dl1.always_hit, 0);
    assert_eq!(c.l2.always_miss, 0, "after the cold fill the L2 absorbs it: {c:?}");
    assert_eq!(c.steady_mc_per_iter, 0, "the rsk never reaches the controller");
    assert!(c.steady_bus_per_iter >= loads, "every load crosses the bus");
}

#[test]
fn pointer_chase_misses_like_the_rsk_but_in_permuted_order() {
    let cfg = MachineConfig::toy(4, 2);
    let lines = u64::from(cfg.dl1.ways) + 1;
    let prog = finite(&rsk_pointer_chase(&cfg, core0(), lines, 7), 20);
    let loads = prog.memory_ops_per_iteration();
    let (c, _m) = pin_replay_against_machine(&prog, &cfg);
    assert_eq!(c.dl1.always_miss, loads, "{c:?}");
    assert_eq!(c.steady_mc_per_iter, 0, "chased lines stay L2-resident");
}

#[test]
fn capacity_kernel_streams_through_dl1_but_stays_in_the_partition() {
    let cfg = MachineConfig::ngmp_ref();
    let prog = finite(&rsk_capacity(AccessKind::Load, &cfg, core0(), 2), 4);
    let loads = prog.memory_ops_per_iteration();
    let (c, _m) = pin_replay_against_machine(&prog, &cfg);
    assert_eq!(c.dl1.always_miss, loads, "2x the DL1: every access evicted before reuse");
    assert_eq!(c.l2.always_miss, 0, "half the partition: L2-resident after cold fill");
    assert_eq!(c.steady_mc_per_iter, 0);
}

#[test]
fn l2_miss_kernel_reaches_the_controller_on_every_access() {
    let cfg = MachineConfig::ngmp_two_level();
    let prog = rsk_l2_miss_nop(&cfg, core0(), 2, 8);
    let loads = prog.memory_ops_per_iteration();
    let (c, m) = pin_replay_against_machine(&prog, &cfg);
    assert_eq!(c.dl1.always_miss, loads, "{c:?}");
    assert_eq!(c.l2.always_miss, loads, "the stride exceeds the partition: {c:?}");
    assert_eq!(c.steady_mc_per_iter, loads, "each L2 miss is one MC admission");
    // The strongest cross-layer pin: the classified profile's proven MC
    // total equals the machine's measured admission count exactly (loads
    // plus the cold instruction-fetch lines that also miss the L2).
    let p = classified_profile(&prog, &cfg, core0());
    let measured = m.pmc().core(core0()).requests_at(ResourceId::MEMORY_CONTROLLER);
    assert_eq!(p.mc_requests, Some(measured), "proven MC demand == measured admissions");
    assert!(measured >= loads * 8, "at least one admission per load per iteration");
}
