//! End-to-end daemon tests over real sockets: boot a [`Server`] on an
//! ephemeral port, talk to it with the crate's own minimal client, and
//! check the streaming protocol, the store-backed endpoints, error
//! containment, concurrent clients, and graceful shutdown.

use rrb::campaign::{CampaignGrid, GridScenario};
use rrb::json::Json;
use rrb::spec::ExperimentSpec;
use rrb::store::ResultStore;
use rrb_serve::{client, ServeConfig, ServeStats, Server};
use rrb_sim::MachineConfig;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("rrb-serve-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Daemon {
    addr: SocketAddr,
    store: Arc<ResultStore>,
    thread: JoinHandle<std::io::Result<ServeStats>>,
    _dir: TempDir,
}

impl Daemon {
    fn boot(tag: &str, workers: usize) -> Daemon {
        let dir = TempDir::new(tag);
        let store = Arc::new(ResultStore::open(dir.0.join("cache")).unwrap());
        let config =
            ServeConfig { addr: String::from("127.0.0.1:0"), workers, ..ServeConfig::default() };
        let server = Server::bind(config, Arc::clone(&store)).unwrap();
        let addr = server.local_addr().unwrap();
        let thread = std::thread::spawn(move || server.run());
        Daemon { addr, store, thread, _dir: dir }
    }

    /// Graceful shutdown via the endpoint, returning the final stats.
    fn shutdown(self) -> ServeStats {
        let resp = client::post(self.addr, "/v1/shutdown", "").unwrap();
        assert_eq!(resp.status, 200);
        self.thread.join().unwrap().unwrap()
    }
}

/// A small derive-grid spec (everything deduplicates through one plan).
fn small_spec() -> String {
    let grid = CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2))
        .iterations(vec![40])
        .max_k(8);
    ExperimentSpec::from_grid("serve-test", &grid).to_text()
}

/// The parsed `stats` trailer line of a campaign stream.
fn stats_line(body: &str) -> Json {
    let line = body
        .lines()
        .find(|l| l.contains("\"type\":\"stats\""))
        .expect("campaign stream has a stats line");
    Json::parse(line).unwrap()
}

fn u64_field(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or_else(|| panic!("no u64 `{key}` in {v:?}"))
}

/// Everything except the non-deterministic `stats` trailer.
fn deterministic_lines(body: &str) -> Vec<&str> {
    body.lines().filter(|l| !l.is_empty() && !l.contains("\"type\":\"stats\"")).collect()
}

#[test]
fn healthz_errors_and_unknown_routes() {
    let daemon = Daemon::boot("basic", 1);

    let ok = client::get(daemon.addr, "/healthz").unwrap();
    assert_eq!(ok.status, 200);
    assert_eq!(ok.body, "{\"status\":\"ok\"}");

    assert_eq!(client::get(daemon.addr, "/nope").unwrap().status, 404);
    assert_eq!(client::post(daemon.addr, "/healthz", "").unwrap().status, 405);
    assert_eq!(client::get(daemon.addr, "/v1/runs/zzz").unwrap().status, 400);
    assert_eq!(client::get(daemon.addr, "/v1/runs/0123456789abcdef").unwrap().status, 404);

    // Malformed and unrunnable specs are contained as status codes.
    assert_eq!(client::post(daemon.addr, "/v1/campaigns", "not json").unwrap().status, 422);
    let empty = "{\"version\":1,\"name\":\"x\",\"machine\":{},\"grid\":null,\"workloads\":[]}";
    let resp = client::post(daemon.addr, "/v1/campaigns", empty).unwrap();
    assert_eq!(resp.status, 422);
    assert!(resp.body.contains("error"));

    let stats = daemon.shutdown();
    assert_eq!(stats.campaigns, 0);
    assert_eq!(stats.runs_executed, 0);
}

#[test]
fn campaign_stream_cold_then_warm_and_point_queries() {
    let daemon = Daemon::boot("campaign", 2);
    let spec = small_spec();

    // Cold: every unique run simulates.
    let cold = client::post(daemon.addr, "/v1/campaigns", &spec).unwrap();
    assert_eq!(cold.status, 200);
    let header = Json::parse(cold.lines()[0]).unwrap();
    assert_eq!(header.get("type").and_then(Json::as_str), Some("campaign"));
    let unique = u64_field(&header, "unique_runs");
    assert!(unique > 0);
    let cold_stats = stats_line(&cold.body);
    assert_eq!(u64_field(&cold_stats, "executed_runs"), unique);
    assert_eq!(u64_field(&cold_stats, "store_hits"), 0);

    // Warm: byte-identical records, zero simulations.
    let warm = client::post(daemon.addr, "/v1/campaigns", &spec).unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(deterministic_lines(&cold.body), deterministic_lines(&warm.body));
    let warm_stats = stats_line(&warm.body);
    assert_eq!(u64_field(&warm_stats, "executed_runs"), 0);
    assert_eq!(u64_field(&warm_stats, "store_hits"), unique);

    // Every streamed run's content address answers a point query.
    let mut hashes: Vec<String> = cold
        .body
        .lines()
        .filter(|l| l.contains("\"type\":\"run\""))
        .filter_map(|l| Json::parse(l).ok())
        .filter_map(|v| spec_hash_of(&v))
        .collect();
    hashes.sort();
    hashes.dedup();
    assert!(!hashes.is_empty());
    for hash in &hashes {
        let resp = client::get(daemon.addr, &format!("/v1/runs/{hash}")).unwrap();
        assert_eq!(resp.status, 200, "point query for {hash}: {}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert!(v.get("payload").and_then(|p| p.get("measurement")).is_some());
    }

    // The store stats endpoint sees the entries and the counters.
    let stats = client::get(daemon.addr, "/v1/store/stats").unwrap();
    assert_eq!(stats.status, 200);
    let v = Json::parse(&stats.body).unwrap();
    assert_eq!(u64_field(&v, "entries"), unique);
    let server = v.get("server").unwrap();
    assert_eq!(u64_field(server, "campaigns"), 2);

    // The static analyzer endpoint works on the same body.
    let analyzed = client::post(daemon.addr, "/v1/analyze", &spec).unwrap();
    assert_eq!(analyzed.status, 200);
    assert!(!Json::parse(&analyzed.body)
        .unwrap()
        .get("cells")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());

    let final_stats = daemon.shutdown();
    assert_eq!(final_stats.campaigns, 2);
    assert_eq!(final_stats.runs_executed, unique);
    assert!(final_stats.point_queries >= hashes.len() as u64);
}

fn spec_hash_of(v: &Json) -> Option<String> {
    v.get("spec_hash").and_then(Json::as_str).map(str::to_owned)
}

#[test]
fn concurrent_clients_agree_and_the_store_verifies_clean() {
    let daemon = Daemon::boot("concurrent", 2);
    let spec = small_spec();

    // N racing clients posting the same overlapping spec.
    let responses: Vec<client::Response> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let spec = spec.clone();
                let addr = daemon.addr;
                scope.spawn(move || client::post(addr, "/v1/campaigns", &spec).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let header = Json::parse(responses[0].lines()[0]).unwrap();
    let unique = u64_field(&header, "unique_runs");

    // Byte-identical per-run records (and scenario/summary lines) for
    // every client, regardless of interleaving.
    let reference = deterministic_lines(&responses[0].body);
    for resp in &responses {
        assert_eq!(resp.status, 200);
        assert_eq!(deterministic_lines(&resp.body), reference);
    }

    // No duplicate simulations beyond the benign race window: every
    // client saw each unique run exactly once (hit or simulated), and
    // the store ends up complete — a follow-up pass simulates nothing.
    for resp in &responses {
        let stats = stats_line(&resp.body);
        assert_eq!(u64_field(&stats, "executed_runs") + u64_field(&stats, "store_hits"), unique);
    }
    let warm = client::post(daemon.addr, "/v1/campaigns", &spec).unwrap();
    assert_eq!(u64_field(&stats_line(&warm.body), "executed_runs"), 0);

    // The racing writes left a verifiably clean store.
    let report = daemon.store.verify();
    assert!(report.problems.is_empty(), "store problems: {:?}", report.problems);
    assert_eq!(
        u64_field(
            &Json::parse(&client::get(daemon.addr, "/v1/store/stats").unwrap().body).unwrap(),
            "entries"
        ),
        unique
    );

    daemon.shutdown();
}

#[test]
fn draining_shutdown_finishes_the_campaign_in_flight() {
    let daemon = Daemon::boot("drain", 1);
    let spec = small_spec();
    let addr = daemon.addr;

    // Start a campaign, wait until the daemon has accepted it (the
    // campaigns counter ticks at the start of the handler), then
    // request shutdown; the drain must let it finish, not cut it off.
    let campaign = std::thread::spawn(move || client::post(addr, "/v1/campaigns", &spec).unwrap());
    for _ in 0..1000 {
        let stats = client::get(daemon.addr, "/v1/store/stats").unwrap();
        let v = Json::parse(&stats.body).unwrap();
        if u64_field(v.get("server").unwrap(), "campaigns") >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let _ = client::post(daemon.addr, "/v1/shutdown", "");
    let resp = campaign.join().unwrap();
    assert_eq!(resp.status, 200);
    let stats = stats_line(&resp.body);
    let header = Json::parse(resp.lines()[0]).unwrap();
    assert_eq!(
        u64_field(&stats, "executed_runs") + u64_field(&stats, "store_hits"),
        u64_field(&header, "unique_runs")
    );
    let final_stats = daemon.thread.join().unwrap().unwrap();
    assert_eq!(final_stats.campaigns, 1);
}
