//! A minimal std-only HTTP/1.1 client for the daemon's own tests,
//! benchmarks, and smoke tooling. One request per connection
//! (`Connection: close`), fixed-length or chunked responses.
//!
//! This is test-support code, not a general HTTP client: it assumes the
//! well-formed responses `rrb serve` itself produces.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded response: status code and (de-chunked) body text.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The full body, chunked framing removed.
    pub body: String,
}

impl Response {
    /// The body's non-empty lines — an NDJSON stream's records.
    pub fn lines(&self) -> Vec<&str> {
        self.body.lines().filter(|l| !l.is_empty()).collect()
    }
}

/// Why a request failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connect/read/write failure.
    Io(std::io::Error),
    /// The response could not be decoded.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(why) => write!(f, "protocol error: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Sends one request and reads the full response (no timeout on the
/// body: campaign streams legitimately take as long as the simulations
/// they trigger).
///
/// # Errors
///
/// [`ClientError::Io`] on socket failures, [`ClientError::Protocol`]
/// when the response cannot be decoded.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<Response, ClientError> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(10))?;
    let body = body.unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: \
         {}\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    decode(&raw)
}

/// Convenience: `GET path`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: SocketAddr, path: &str) -> Result<Response, ClientError> {
    request(addr, "GET", path, None)
}

/// Convenience: `POST path` with a body.
///
/// # Errors
///
/// See [`request`].
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Result<Response, ClientError> {
    request(addr, "POST", path, Some(body))
}

fn decode(raw: &[u8]) -> Result<Response, ClientError> {
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| ClientError::Protocol(String::from("no header terminator")))?;
    let head = std::str::from_utf8(&raw[..header_end])
        .map_err(|_| ClientError::Protocol(String::from("headers are not UTF-8")))?;
    let mut lines = head.split("\r\n");
    let status_line =
        lines.next().ok_or_else(|| ClientError::Protocol(String::from("empty response")))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError::Protocol(format!("bad status line `{status_line}`")))?;
    let chunked = lines
        .any(|l| l.to_ascii_lowercase().starts_with("transfer-encoding:") && l.contains("chunked"));
    let payload = &raw[header_end + 4..];
    let body_bytes =
        if chunked { dechunk(payload).map_err(ClientError::Protocol)? } else { payload.to_vec() };
    let body = String::from_utf8(body_bytes)
        .map_err(|_| ClientError::Protocol(String::from("body is not UTF-8")))?;
    Ok(Response { status, body })
}

/// Removes `Transfer-Encoding: chunked` framing.
fn dechunk(raw: &[u8]) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(raw.len());
    let mut pos = 0usize;
    loop {
        let line_end = raw[pos..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .map(|p| pos + p)
            .ok_or("truncated chunk size line")?;
        let size_text =
            std::str::from_utf8(&raw[pos..line_end]).map_err(|_| "chunk size line is not UTF-8")?;
        let size_token = size_text.split(';').next().unwrap_or_default().trim();
        let size =
            usize::from_str_radix(size_token, 16).map_err(|_| "bad chunk size".to_string())?;
        if size == 0 {
            return Ok(out);
        }
        let start = line_end + 2;
        let end = start + size;
        if end > raw.len() {
            return Err(String::from("truncated chunk body"));
        }
        out.extend_from_slice(&raw[start..end]);
        pos = end + 2; // skip the chunk's trailing CRLF
        if pos > raw.len() {
            return Err(String::from("truncated chunk trailer"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_fixed_length_responses() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
        let resp = decode(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok");
    }

    #[test]
    fn decodes_chunked_responses() {
        let raw =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n3\r\nab\n\r\n2\r\ncd\r\n0\r\n\r\n";
        let resp = decode(raw).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ab\ncd");
        assert_eq!(resp.lines(), vec!["ab", "cd"]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(decode(b"not http"), Err(ClientError::Protocol(_))));
    }
}
