//! The daemon's worker pool: long-lived threads executing [`RunSpec`]s
//! through the `rrb` [`Executor`] against one shared [`ResultStore`].
//! Each worker keeps one warm [`MachineArena`] across jobs, so
//! back-to-back runs reset an existing machine instead of rebuilding
//! one — the daemon's steady-state fast path.
//!
//! Sharding model: every campaign request turns into one [`Job`] per
//! deduplicated run, all submitted to a single process-wide MPMC queue
//! (an `mpsc` channel behind a mutex-shared receiver). Workers pull
//! jobs in submission order, so concurrent campaigns interleave fairly
//! at run granularity; the content-addressed store is the only shared
//! state, and it already tolerates racing writers (atomic temp+rename
//! entries).
//!
//! Error containment: a panicking run is caught with
//! [`std::panic::catch_unwind`] and surfaces as a failed
//! [`RunDone::result`] — the worker thread survives and keeps serving.
//!
//! This module is on the lint-enforced no-panic path (`lint_sources`).

use rrb::campaign::{RunError, RunMeasurement, RunSource, RunSpec};
use rrb::executor::{Executor, MachineArena};
use rrb::store::ResultStore;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One unit of pool work: execute `spec` against `store` and report to
/// `reply` under the submitter's chosen index.
pub struct Job {
    /// The deduplicated run to execute.
    pub spec: RunSpec,
    /// The submitter's index for this run (position in its unique plan).
    pub index: usize,
    /// The shared persistent store (None executes uncached).
    pub store: Option<Arc<ResultStore>>,
    /// Where the outcome goes. Send failures are ignored: a client that
    /// disconnected mid-campaign no longer listens, but the result is
    /// already in the store for the next query.
    pub reply: Sender<RunDone>,
}

/// The outcome of one pool job.
pub struct RunDone {
    /// The submitter's index for this run.
    pub index: usize,
    /// The measurement, or why the run (or its worker) failed.
    pub result: Result<RunMeasurement, RunError>,
    /// Whether the run was simulated or answered from the store.
    pub source: RunSource,
    /// Non-fatal store warnings for this run.
    pub warnings: Vec<String>,
}

/// A fixed-size pool of worker threads draining a shared job queue.
pub struct WorkerPool {
    sender: Sender<Job>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

/// A cheap handle connection threads use to submit jobs.
#[derive(Clone)]
pub struct PoolHandle {
    sender: Sender<Job>,
}

impl PoolHandle {
    /// Enqueues one job. Fails only after [`WorkerPool::shutdown`].
    ///
    /// # Errors
    ///
    /// Returns the job back when the pool is no longer accepting work.
    pub fn submit(&self, job: Job) -> Result<(), Box<Job>> {
        self.sender.send(job).map_err(|e| Box::new(e.0))
    }
}

impl WorkerPool {
    /// Spawns `workers` (at least 1) threads draining a shared queue.
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || worker_loop(&receiver))
            })
            .collect();
        WorkerPool { sender, handles, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A submission handle for connection threads.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle { sender: self.sender.clone() }
    }

    /// Graceful shutdown: stops accepting jobs, lets the workers drain
    /// everything already queued, and joins them.
    pub fn shutdown(self) {
        // Dropping the last sender closes the queue; workers exit once
        // it is empty. Connection threads hold clones via PoolHandle,
        // so the accept loop must drain connections first.
        drop(self.sender);
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>) {
    let executor = Executor::new();
    let mut arena = MachineArena::new();
    loop {
        // Recover the receiver even if a previous holder panicked while
        // holding the lock (the channel itself is not corrupted).
        let guard = match receiver.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let job = guard.recv();
        drop(guard); // release the queue while simulating
        let Ok(job) = job else { return }; // queue closed: shutdown
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            executor.run_in(&mut arena, &job.spec, job.store.as_deref())
        }));
        let (result, source, warnings) = match outcome {
            Ok(outcome) => outcome,
            Err(panic) => {
                // A machine that panicked mid-run is in an unknown
                // state; drop it so the next job builds fresh.
                arena.clear();
                (
                    Err(RunError::Analysis(format!(
                        "worker caught a panic executing `{}`: {}",
                        job.spec.label,
                        panic_message(&panic)
                    ))),
                    RunSource::Simulated { recorded: false },
                    Vec::new(),
                )
            }
        };
        let _ = job.reply.send(RunDone { index: job.index, result, source, warnings });
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_kernels::KernelSpec;
    use rrb_sim::MachineConfig;

    fn toy_spec(label: &str, iterations: u64) -> RunSpec {
        let cfg = MachineConfig::toy(2, 2);
        RunSpec::from_kernels(label, cfg, &KernelSpec::Nop { iterations }, &[])
    }

    #[test]
    fn pool_executes_and_reports_by_index() {
        let pool = WorkerPool::new(2);
        let handle = pool.handle();
        let (tx, rx) = channel();
        for (i, iters) in [10u64, 20, 30].iter().enumerate() {
            let job = Job {
                spec: toy_spec(&format!("r{i}"), *iters),
                index: i,
                store: None,
                reply: tx.clone(),
            };
            assert!(handle.submit(job).is_ok());
        }
        drop(tx);
        let mut done: Vec<RunDone> = rx.iter().collect();
        done.sort_by_key(|d| d.index);
        assert_eq!(done.len(), 3);
        assert!(done.iter().all(|d| d.result.is_ok()));
        drop(handle); // shutdown joins workers, which wait on every live handle
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(1);
        let handle = pool.handle();
        let (tx, rx) = channel();
        for i in 0..8 {
            let job = Job {
                spec: toy_spec("q", 5 + i),
                index: i as usize,
                store: None,
                reply: tx.clone(),
            };
            assert!(handle.submit(job).is_ok());
        }
        drop(tx);
        drop(handle);
        pool.shutdown(); // must not lose the queued jobs
        assert_eq!(rx.iter().count(), 8);
    }
}
