//! Request routing and the streaming campaign handler.
//!
//! Connection model: one thread per connection, HTTP/1.1 keep-alive
//! until the client closes, the read timeout fires, a request fails to
//! parse, or the server starts draining. Campaign responses stream as
//! `Transfer-Encoding: chunked` NDJSON — one whole line per chunk.
//!
//! This module is on the lint-enforced no-panic path (`lint_sources`):
//! every request, however malformed, ends in a status code or a dropped
//! connection, never a worker or connection-thread panic.

use crate::http::{self, ChunkedWriter, HttpError, Request};
use crate::pool::{Job, PoolHandle, RunDone};
use crate::ServerState;
use rrb::campaign::{RunError, RunMeasurement, RunRecord, RunSource};
use rrb::json::Json;
use rrb::lint::{has_errors, lint_spec, LintFinding};
use rrb::scenario::RunOutcome;
use rrb::spec::ExperimentSpec;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::mpsc::channel;
use std::sync::Arc;

/// Serves one accepted connection to completion. Never panics; errors
/// drop the connection.
pub(crate) fn handle_connection(stream: TcpStream, state: &Arc<ServerState>, pool: &PoolHandle) {
    let _ = serve_connection(stream, state, pool);
}

fn serve_connection(
    mut stream: TcpStream,
    state: &Arc<ServerState>,
    pool: &PoolHandle,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(state.read_timeout))?;
    loop {
        match http::read_request(&mut stream, state.limits) {
            Ok(Some(request)) => {
                route(&mut stream, state, pool, &request)?;
                if request.close || state.draining() {
                    return Ok(());
                }
            }
            Ok(None) | Err(HttpError::Timeout) | Err(HttpError::Io(_)) => return Ok(()),
            Err(HttpError::BadRequest(why)) => {
                let _ = http::respond_json(&mut stream, 400, &error_json(&why));
                return Ok(());
            }
            Err(HttpError::PayloadTooLarge(limit)) => {
                let why = format!("request body exceeds the {limit}-byte limit");
                let _ = http::respond_json(&mut stream, 413, &error_json(&why));
                return Ok(());
            }
        }
    }
}

fn route(
    stream: &mut TcpStream,
    state: &Arc<ServerState>,
    pool: &PoolHandle,
    request: &Request,
) -> std::io::Result<()> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let body = Json::obj(vec![("status", Json::str("ok"))]).render_compact();
            http::respond_json(stream, 200, &body)
        }
        ("GET", "/v1/store/stats") => store_stats(stream, state),
        ("POST", "/v1/campaigns") => campaigns(stream, state, pool, &request.body),
        ("POST", "/v1/analyze") => analyze(stream, &request.body),
        ("POST", "/v1/shutdown") => {
            state.shutdown.store(true, Ordering::Relaxed);
            let body = Json::obj(vec![("status", Json::str("draining"))]).render_compact();
            http::respond_json(stream, 200, &body)
        }
        ("GET", path) if path.starts_with("/v1/runs/") => point_query(stream, state, path),
        (_, "/healthz" | "/v1/store/stats" | "/v1/campaigns" | "/v1/analyze" | "/v1/shutdown") => {
            http::respond_json(stream, 405, &error_json("method not allowed"))
        }
        (_, path) if path.starts_with("/v1/runs/") => {
            http::respond_json(stream, 405, &error_json("method not allowed"))
        }
        _ => http::respond_json(stream, 404, &error_json("no such endpoint")),
    }
}

// ---------------------------------------------------------------------
// Simple endpoints
// ---------------------------------------------------------------------

fn store_stats(stream: &mut TcpStream, state: &Arc<ServerState>) -> std::io::Result<()> {
    let stats = state.store.stats();
    let body = Json::obj(vec![
        ("dir", Json::str(stats.dir.display().to_string())),
        ("format", Json::U64(stats.format)),
        ("fingerprint", Json::str(format!("{:016x}", stats.fingerprint))),
        ("entries", Json::U64(stats.entries)),
        ("bytes", Json::U64(stats.bytes)),
        ("temp_files", Json::U64(stats.temp_files)),
        (
            "server",
            Json::obj(vec![
                ("workers", Json::U64(state.workers as u64)),
                ("campaigns", Json::U64(state.campaigns.load(Ordering::Relaxed))),
                ("point_queries", Json::U64(state.point_queries.load(Ordering::Relaxed))),
                ("runs_streamed", Json::U64(state.runs_streamed.load(Ordering::Relaxed))),
                ("runs_executed", Json::U64(state.runs_executed.load(Ordering::Relaxed))),
            ]),
        ),
    ])
    .render_compact();
    http::respond_json(stream, 200, &body)
}

fn point_query(
    stream: &mut TcpStream,
    state: &Arc<ServerState>,
    path: &str,
) -> std::io::Result<()> {
    state.point_queries.fetch_add(1, Ordering::Relaxed);
    let hex = path.trim_start_matches("/v1/runs/");
    let Ok(hash) = u64::from_str_radix(hex, 16) else {
        let why = format!("`{hex}` is not a 64-bit hex content address");
        return http::respond_json(stream, 400, &error_json(&why));
    };
    match state.store.entry_payload(hash) {
        Ok(Some(payload)) => {
            let body = Json::obj(vec![
                ("spec_hash", Json::str(format!("{hash:016x}"))),
                ("payload", payload),
            ])
            .render_compact();
            http::respond_json(stream, 200, &body)
        }
        Ok(None) => {
            let why = format!("no entry for {hash:016x}");
            http::respond_json(stream, 404, &error_json(&why))
        }
        Err(reason) => http::respond_json(stream, 500, &error_json(&reason)),
    }
}

fn analyze(stream: &mut TcpStream, body: &[u8]) -> std::io::Result<()> {
    let spec = match parse_spec(body) {
        Ok(spec) => spec,
        Err((status, body)) => return http::respond_json(stream, status, &body),
    };
    let cells = rrb::analyze::analyze_spec(&spec);
    let body = Json::obj(vec![
        ("spec", Json::str(spec.name.clone())),
        ("cells", Json::Arr(cells.iter().map(|c| c.to_json()).collect())),
    ])
    .render_compact();
    http::respond_json(stream, 200, &body)
}

// ---------------------------------------------------------------------
// The campaign handler
// ---------------------------------------------------------------------

fn parse_spec(body: &[u8]) -> Result<ExperimentSpec, (u16, String)> {
    let text = std::str::from_utf8(body)
        .map_err(|_| (400, error_json("request body is not valid UTF-8")))?;
    let spec = ExperimentSpec::parse(text)
        .map_err(|e| (422, error_json(&format!("spec rejected: {e}"))))?;
    spec.validate().map_err(|e| (422, error_json(&format!("spec rejected: {e}"))))?;
    Ok(spec)
}

fn findings_json(findings: &[LintFinding]) -> Json {
    Json::Arr(
        findings
            .iter()
            .map(|f| {
                Json::obj(vec![
                    ("severity", Json::str(f.severity.to_string())),
                    ("path", Json::str(f.path.clone())),
                    ("message", Json::str(f.message.clone())),
                ])
            })
            .collect(),
    )
}

/// `POST /v1/campaigns`: validate, lint, shard, stream.
///
/// Every deduplicated run becomes one pool job; the handler then emits
/// NDJSON lines in deterministic plan order, each line as one HTTP
/// chunk, waiting on the pool only when the next plan position is still
/// in flight. A client that disconnects mid-stream aborts the emission
/// loop, but already-queued runs still execute and land in the store.
fn campaigns(
    stream: &mut TcpStream,
    state: &Arc<ServerState>,
    pool: &PoolHandle,
    body: &[u8],
) -> std::io::Result<()> {
    let spec = match parse_spec(body) {
        Ok(spec) => spec,
        Err((status, body)) => return http::respond_json(stream, status, &body),
    };
    let findings = lint_spec(&spec);
    if has_errors(&findings) {
        let body = Json::obj(vec![
            ("error", Json::str("spec failed lint")),
            ("findings", findings_json(&findings)),
        ])
        .render_compact();
        return http::respond_json(stream, 422, &body);
    }
    state.campaigns.fetch_add(1, Ordering::Relaxed);

    // Shard: one job per deduplicated run, all into the shared queue.
    let campaign = spec.to_campaign_builder(1).build();
    let plan = campaign.plan();
    let unique = plan.unique_specs();
    let (reply, done) = channel::<RunDone>();
    let mut submitted = 0usize;
    for (index, run) in unique.iter().enumerate() {
        let job = Job {
            spec: run.clone(),
            index,
            store: Some(Arc::clone(&state.store)),
            reply: reply.clone(),
        };
        if pool.submit(job).is_err() {
            break; // pool already shut down; missing runs become error records
        }
        submitted += 1;
    }
    drop(reply);

    // Stream: header, then per-run and per-scenario lines in plan order.
    let mut writer = ChunkedWriter::begin(stream, 200, "application/x-ndjson")?;
    writer.chunk(&line(Json::obj(vec![
        ("type", Json::str("campaign")),
        ("name", Json::str(spec.name.clone())),
        ("spec_hash", Json::str(format!("{:016x}", spec.spec_hash()))),
        ("scenarios", Json::U64(plan.scenarios().len() as u64)),
        ("planned_runs", Json::U64(plan.planned_runs() as u64)),
        ("unique_runs", Json::U64(unique.len() as u64)),
    ])))?;

    let mut results: Vec<Option<Result<RunMeasurement, RunError>>> = Vec::new();
    results.resize_with(unique.len(), || None);
    let mut executed = 0u64;
    let mut store_hits = 0u64;
    let mut store_writes = 0u64;
    let mut warnings: Vec<String> = Vec::new();
    let mut failed_runs = 0usize;

    for (index, planned) in plan.scenarios().iter().enumerate() {
        let specs = match &planned.runs {
            Err(e) => {
                failed_runs += 1;
                let record = RunRecord::failed(&planned.name, "<plan>", e);
                writer.chunk(&run_line(&record, None))?;
                state.runs_streamed.fetch_add(1, Ordering::Relaxed);
                writer.chunk(&scenario_line(&plan.analyze(index, &[])))?;
                continue;
            }
            Ok(specs) => specs,
        };
        // Wait for this scenario's runs (earlier scenarios already
        // resolved everything they share with this one).
        for &idx in &planned.indices {
            while idx < results.len() && results[idx].is_none() {
                match done.recv() {
                    Ok(done) => {
                        if let Some(slot) = results.get_mut(done.index) {
                            match done.source {
                                RunSource::Store => store_hits += 1,
                                RunSource::Simulated { recorded } => {
                                    executed += 1;
                                    if recorded {
                                        store_writes += 1;
                                    }
                                }
                            }
                            warnings.extend(done.warnings);
                            *slot = Some(done.result);
                        }
                    }
                    // The pool died or refused jobs: whatever is still
                    // unresolved becomes an error record below.
                    Err(_) => break,
                }
            }
            if results.get(idx).is_some_and(Option::is_none) {
                break;
            }
        }
        let outcomes: Vec<RunOutcome> = specs
            .iter()
            .zip(&planned.indices)
            .map(|(run, &idx)| RunOutcome {
                label: run.label.clone(),
                result: results.get(idx).and_then(Clone::clone).unwrap_or_else(|| {
                    Err(RunError::Analysis(String::from(
                        "the worker pool delivered no result for this run",
                    )))
                }),
            })
            .collect();
        for (position, outcome) in outcomes.iter().enumerate() {
            let record = match &outcome.result {
                Ok(m) => RunRecord::ok(&planned.name, &outcome.label, m),
                Err(e) => {
                    failed_runs += 1;
                    RunRecord::failed(&planned.name, &outcome.label, e)
                }
            };
            let hash = specs.get(position).map(rrb::campaign::RunSpec::spec_hash);
            writer.chunk(&run_line(&record, hash))?;
            state.runs_streamed.fetch_add(1, Ordering::Relaxed);
        }
        writer.chunk(&scenario_line(&plan.analyze(index, &outcomes)))?;
    }

    // Anything still in flight (a disconnect would have aborted above;
    // here the plan is fully emitted) has already been accounted.
    writer.chunk(&line(Json::obj(vec![
        ("type", Json::str("summary")),
        ("scenarios", Json::U64(plan.scenarios().len() as u64)),
        ("planned_runs", Json::U64(plan.planned_runs() as u64)),
        ("unique_runs", Json::U64(unique.len() as u64)),
        ("failed_runs", Json::U64(failed_runs as u64)),
    ])))?;
    writer.chunk(&line(Json::obj(vec![
        ("type", Json::str("stats")),
        ("submitted_runs", Json::U64(submitted as u64)),
        ("executed_runs", Json::U64(executed)),
        ("store_hits", Json::U64(store_hits)),
        ("store_writes", Json::U64(store_writes)),
        ("warnings", Json::Arr(warnings.iter().map(Json::str).collect())),
    ])))?;
    state.runs_executed.fetch_add(executed, Ordering::Relaxed);
    writer.finish()
}

// ---------------------------------------------------------------------
// NDJSON line builders
// ---------------------------------------------------------------------

fn line(json: Json) -> Vec<u8> {
    let mut text = json.render_compact();
    text.push('\n');
    text.into_bytes()
}

/// A `run` line: the record's own fields prefixed with the line type
/// and the run's content address (absent for plan failures), so clients
/// can follow up with `GET /v1/runs/{spec_hash}`.
fn run_line(record: &RunRecord, spec_hash: Option<u64>) -> Vec<u8> {
    let mut fields = vec![
        (String::from("type"), Json::str("run")),
        (String::from("spec_hash"), Json::option(spec_hash, |h| Json::str(format!("{h:016x}")))),
    ];
    if let Json::Obj(pairs) = record.to_json() {
        fields.extend(pairs);
    }
    line(Json::Obj(fields))
}

fn scenario_line(report: &rrb::scenario::ScenarioReport) -> Vec<u8> {
    let mut fields = vec![(String::from("type"), Json::str("scenario"))];
    if let Json::Obj(pairs) = report.to_json() {
        fields.extend(pairs);
    }
    line(Json::Obj(fields))
}

fn error_json(message: &str) -> String {
    Json::obj(vec![("error", Json::str(message))]).render_compact()
}
