//! A deliberately tiny HTTP/1.1 subset: exactly what the `rrb serve`
//! daemon needs and nothing more.
//!
//! * Requests: one request line, headers, and an optional
//!   `Content-Length` body. No chunked *request* bodies, no multipart,
//!   no compression.
//! * Responses: fixed-length bodies, or `Transfer-Encoding: chunked`
//!   via [`ChunkedWriter`] for streaming campaign output.
//! * Hard limits everywhere: the header section is capped at
//!   [`MAX_HEADER_BYTES`], bodies at [`Limits::max_body_bytes`], and
//!   every read sits behind the socket's read timeout. A malicious or
//!   broken client can waste one connection, never the daemon.
//!
//! This module is on the lint-enforced no-panic path (see the
//! `lint_sources` gate): every failure is an [`HttpError`] the
//! connection handler turns into a status code or a dropped connection.

use std::io::{ErrorKind, Read, Write};

/// Upper bound on the request line + headers, in bytes.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Default cap on request bodies (an `ExperimentSpec` is a few KiB;
/// 8 MiB leaves two orders of magnitude of headroom).
pub const DEFAULT_MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Per-connection request limits.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest accepted `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_body_bytes: DEFAULT_MAX_BODY_BYTES }
    }
}

/// One parsed request: method, target path, connection intent, body.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub path: String,
    /// Whether the client asked for `Connection: close`.
    pub close: bool,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed or the socket failed mid-request.
    Io(std::io::Error),
    /// The read timeout elapsed (idle keep-alive connection).
    Timeout,
    /// The bytes were not a parseable HTTP/1.x request.
    BadRequest(String),
    /// The declared body exceeds [`Limits::max_body_bytes`].
    PayloadTooLarge(usize),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Timeout => write!(f, "read timeout"),
            HttpError::BadRequest(why) => write!(f, "bad request: {why}"),
            HttpError::PayloadTooLarge(limit) => {
                write!(f, "request body exceeds the {limit}-byte limit")
            }
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Reads one request from `stream`.
///
/// Returns `Ok(None)` on a clean EOF before any byte of a request — the
/// normal end of a keep-alive connection.
///
/// # Errors
///
/// [`HttpError::Timeout`] when the socket's read timeout fires,
/// [`HttpError::BadRequest`] / [`HttpError::PayloadTooLarge`] for
/// malformed or oversized requests, [`HttpError::Io`] otherwise.
pub fn read_request(stream: &mut impl Read, limits: Limits) -> Result<Option<Request>, HttpError> {
    // Accumulate until the header terminator. `MAX_HEADER_BYTES` bounds
    // the buffer, the socket read timeout bounds the wait.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_terminator(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(HttpError::BadRequest(format!(
                "header section exceeds {MAX_HEADER_BYTES} bytes"
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) if buf.is_empty() => return Ok(None),
            Ok(0) => return Err(HttpError::BadRequest(String::from("truncated header section"))),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    };

    let header_text = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| HttpError::BadRequest(String::from("headers are not valid UTF-8")))?;
    let mut lines = header_text.split("\r\n");
    let request_line =
        lines.next().ok_or_else(|| HttpError::BadRequest(String::from("empty header section")))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("malformed request line `{request_line}`")));
    }

    let mut content_length = 0usize;
    let mut close = version == "HTTP/1.0";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length `{value}`")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(HttpError::PayloadTooLarge(limits.max_body_bytes));
    }

    // The body: whatever followed the terminator, then the remainder.
    let mut body = buf.split_off((header_end + 4).min(buf.len()));
    body.truncate(content_length);
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::BadRequest(String::from("truncated body"))),
            Ok(n) => {
                let take = n.min(content_length - body.len());
                body.extend_from_slice(&chunk[..take]);
            }
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(Some(Request { method, path, close, body }))
}

/// Position of the `\r\n\r\n` header terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase for the handful of status codes the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response.
///
/// # Errors
///
/// Propagates socket write errors (the caller drops the connection).
pub fn respond(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// [`respond`] with a JSON body (the body must already be rendered).
///
/// # Errors
///
/// Propagates socket write errors.
pub fn respond_json(stream: &mut impl Write, status: u16, json: &str) -> std::io::Result<()> {
    respond(stream, status, "application/json", json.as_bytes())
}

/// A `Transfer-Encoding: chunked` response in progress. Every
/// [`ChunkedWriter::chunk`] becomes exactly one HTTP chunk, so a
/// line-per-chunk writer gives clients whole NDJSON lines as they land.
pub struct ChunkedWriter<'a, W: Write> {
    stream: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Writes the response head and returns the chunk writer.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn begin(
        stream: &'a mut W,
        status: u16,
        content_type: &str,
    ) -> std::io::Result<ChunkedWriter<'a, W>> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: \
             chunked\r\n\r\n",
            reason(status),
        );
        stream.write_all(head.as_bytes())?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk and flushes it to the client.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors (a disconnected client aborts the
    /// stream; in-flight runs still land in the store).
    pub fn chunk(&mut self, data: &[u8]) -> std::io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Writes the terminating zero-length chunk.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn finish(self) -> std::io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        let mut cursor = std::io::Cursor::new(bytes.to_vec());
        read_request(&mut cursor, Limits::default())
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert!(!req.close);
    }

    #[test]
    fn parses_a_post_with_body_and_close() {
        let req = parse(
            b"POST /v1/campaigns HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"abcd");
        assert!(req.close);
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse(b"").unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert!(matches!(parse(b"NONSENSE\r\n\r\n"), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn rejects_truncated_header_section() {
        assert!(matches!(parse(b"GET / HTTP/1.1\r\n"), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn rejects_oversized_header_section() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'x', MAX_HEADER_BYTES + 16));
        assert!(matches!(parse(&raw), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn rejects_oversized_body_by_declared_length() {
        let mut cursor =
            std::io::Cursor::new(b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\nxx".to_vec());
        let got = read_request(&mut cursor, Limits { max_body_bytes: 8 });
        assert!(matches!(got, Err(HttpError::PayloadTooLarge(8))));
    }

    #[test]
    fn rejects_truncated_body() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn chunked_writer_frames_each_chunk() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::begin(&mut out, 200, "application/x-ndjson").unwrap();
        w.chunk(b"{\"a\":1}\n").unwrap();
        w.chunk(b"").unwrap(); // ignored, must not terminate the stream
        w.chunk(b"{\"b\":2}\n").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
