//! # rrb-serve — a sharded derivation service over the run store
//!
//! The paper's methodology is embarrassingly memoizable: every grid
//! cell is a pure function of its `RunSpec`, and the content-addressed
//! [`ResultStore`] already answers warm queries ~30× faster than the
//! cold simulation path. This crate turns that store into a *service*:
//! a long-running daemon where the store is a shared, ever-growing memo
//! table and derivation is a thin scheduler over it.
//!
//! The daemon is std-only, like the rest of the workspace: a hand-rolled
//! HTTP/1.1 subset ([`http`]), a fixed worker pool draining one
//! process-wide job queue ([`pool`]), and a router ([`router`]) exposing:
//!
//! | endpoint | what it does |
//! |----------|--------------|
//! | `POST /v1/campaigns` | validate + lint an [`ExperimentSpec`](rrb::spec::ExperimentSpec), shard its deduplicated runs across the pool, stream NDJSON records |
//! | `GET /v1/runs/{spec_hash}` | point query straight from the store (16-hex-digit content address) |
//! | `GET /v1/store/stats` | store facts plus server counters |
//! | `POST /v1/analyze` | static per-cell bounds via `rrb-static`, no simulation |
//! | `GET /healthz` | liveness |
//! | `POST /v1/shutdown` | graceful drain (same as SIGTERM) |
//!
//! Campaign responses stream one JSON object per line, in deterministic
//! plan order: a `campaign` header, one `run` line per planned run
//! (emitted as soon as its result — and every earlier plan position —
//! has landed), one `scenario` line per analysed scenario, a `summary`
//! line, and a final `stats` line. Everything *except* the `stats` line
//! is byte-identical across worker counts, cache states, and racing
//! clients, exactly like `Campaign::run` output.
//!
//! ```no_run
//! use rrb::store::ResultStore;
//! use rrb_serve::{ServeConfig, Server};
//! use std::sync::Arc;
//!
//! # fn main() -> std::io::Result<()> {
//! let store = Arc::new(ResultStore::open(".rrb-cache").map_err(std::io::Error::other)?);
//! let server = Server::bind(ServeConfig::default(), store)?;
//! rrb_serve::trap_termination_signals();
//! let stats = server.run()?; // blocks until SIGTERM or POST /v1/shutdown
//! eprintln!("served {} campaigns", stats.campaigns);
//! # Ok(())
//! # }
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod pool;
pub mod router;

use pool::WorkerPool;
use rrb::campaign::clamped_jobs;
use rrb::store::ResultStore;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Daemon configuration. [`ServeConfig::default`] matches the CLI
/// defaults (`rrb serve` with no flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7077` (port 0 picks a free one).
    pub addr: String,
    /// Worker threads; 0 means every available CPU. Either way the
    /// count is clamped to the machine's available parallelism —
    /// oversubscribing a pure-CPU simulator pool only adds scheduling
    /// overhead.
    pub workers: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Socket read timeout (bounds idle keep-alive connections and the
    /// shutdown drain).
    pub read_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: String::from("127.0.0.1:7077"),
            workers: 0,
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// Counters the daemon reports on exit and under `/v1/store/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Campaign requests accepted.
    pub campaigns: u64,
    /// Point queries answered.
    pub point_queries: u64,
    /// Run records streamed to clients.
    pub runs_streamed: u64,
    /// Runs actually simulated (the rest were store hits).
    pub runs_executed: u64,
}

/// Shared server state: the store, the limits, and the counters.
pub(crate) struct ServerState {
    pub(crate) store: Arc<ResultStore>,
    pub(crate) workers: usize,
    pub(crate) limits: http::Limits,
    pub(crate) read_timeout: Duration,
    pub(crate) shutdown: AtomicBool,
    pub(crate) campaigns: AtomicU64,
    pub(crate) point_queries: AtomicU64,
    pub(crate) runs_streamed: AtomicU64,
    pub(crate) runs_executed: AtomicU64,
}

impl ServerState {
    pub(crate) fn draining(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal::terminated()
    }
}

/// A handle for stopping a running [`Server`] from another thread —
/// what `POST /v1/shutdown` and the signal handler do, made available
/// to embedding code (tests, benches).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Requests a graceful drain: stop accepting connections, finish
    /// in-flight requests, drain queued runs, then return from
    /// [`Server::run`].
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
    }
}

/// The daemon: a bound listener, its worker pool, and shared state.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    pool: WorkerPool,
}

impl Server {
    /// Binds the listener and spawns the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, permission, ...).
    pub fn bind(config: ServeConfig, store: Arc<ResultStore>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let requested = if config.workers == 0 { None } else { Some(config.workers) };
        let (workers, _) = clamped_jobs(requested);
        let state = Arc::new(ServerState {
            store,
            workers,
            limits: http::Limits { max_body_bytes: config.max_body_bytes },
            read_timeout: config.read_timeout,
            shutdown: AtomicBool::new(false),
            campaigns: AtomicU64::new(0),
            point_queries: AtomicU64::new(0),
            runs_streamed: AtomicU64::new(0),
            runs_executed: AtomicU64::new(0),
        });
        Ok(Server { listener, state, pool: WorkerPool::new(workers) })
    }

    /// The bound address (resolves port 0 to the actual port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Worker threads in the pool (after clamping).
    pub fn workers(&self) -> usize {
        self.state.workers
    }

    /// A shutdown handle for embedding code.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { state: Arc::clone(&self.state) }
    }

    /// Accepts connections until a graceful-shutdown request arrives
    /// (SIGTERM/SIGINT via [`trap_termination_signals`], or
    /// `POST /v1/shutdown`), then drains: every in-flight connection is
    /// joined — streaming campaigns run to completion — and the worker
    /// pool finishes everything already queued before this returns.
    ///
    /// # Errors
    ///
    /// Propagates listener failures; per-connection errors only drop
    /// that connection.
    pub fn run(self) -> std::io::Result<ServeStats> {
        self.listener.set_nonblocking(true)?;
        let mut connections: Vec<JoinHandle<()>> = Vec::new();
        while !self.state.draining() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let state = Arc::clone(&self.state);
                    let submit = self.pool.handle();
                    connections.push(std::thread::spawn(move || {
                        router::handle_connection(stream, &state, &submit);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // Short enough to keep connection pickup (and thus
                    // point-query latency) in the low milliseconds.
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            connections.retain(|c| !c.is_finished());
        }
        for connection in connections {
            let _ = connection.join();
        }
        self.pool.shutdown();
        Ok(ServeStats {
            campaigns: self.state.campaigns.load(Ordering::Relaxed),
            point_queries: self.state.point_queries.load(Ordering::Relaxed),
            runs_streamed: self.state.runs_streamed.load(Ordering::Relaxed),
            runs_executed: self.state.runs_executed.load(Ordering::Relaxed),
        })
    }
}

/// Installs SIGTERM/SIGINT handlers that request a graceful drain of
/// every [`Server::run`] loop in the process (a no-op off Unix). Safe
/// to call more than once.
pub fn trap_termination_signals() {
    signal::trap();
}

#[cfg(unix)]
mod signal {
    //! The one unsafe corner: registering C signal handlers without a
    //! libc dependency. The handler only stores to an atomic, which is
    //! async-signal-safe.
    #![allow(unsafe_code)]

    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_terminate(_signum: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    pub(crate) fn trap() {
        // SAFETY: `signal` replaces the process disposition for
        // SIGTERM/SIGINT with a handler that performs a single atomic
        // store — async-signal-safe per POSIX.
        unsafe {
            signal(SIGTERM, on_terminate);
            signal(SIGINT, on_terminate);
        }
    }

    pub(crate) fn terminated() -> bool {
        TERMINATED.load(Ordering::Relaxed)
    }
}

#[cfg(not(unix))]
mod signal {
    pub(crate) fn trap() {}

    pub(crate) fn terminated() -> bool {
        false
    }
}
