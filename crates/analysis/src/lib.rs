//! # rrb-analysis — synchrony-effect analytics for round-robin buses
//!
//! The mathematical layer of the reproduction, independent of any
//! simulator:
//!
//! * [`gamma`] — the paper's Eq. 2 model of per-request contention
//!   `γ(δ)` under the synchrony effect, and Eq. 1 (`ubd = (Nc-1)·l_bus`);
//! * [`sawtooth`] — recovery of the saw-tooth period (and hence `ubd`)
//!   from a measured slowdown series `d_bus(k)`, including the
//!   `δ_nop > 1` sampled case of §4.2;
//! * [`histogram`] — integer histograms for the Fig. 6 plots;
//! * [`stats`] — small summary-statistics helpers;
//! * [`etb`] — execution-time-bound padding (`pad = nr × ubd_m`, §4.3).
//!
//! ## Example: the γ(δ) saw-tooth
//!
//! ```
//! use rrb_analysis::gamma::GammaModel;
//!
//! let model = GammaModel::new(27); // ubd of the NGMP configuration
//! assert_eq!(model.gamma(0), 27);  // δ = 0 is the only way to suffer ubd
//! assert_eq!(model.gamma(1), 26);
//! assert_eq!(model.gamma(27), 0);
//! assert_eq!(model.gamma(28), 26); // period ubd
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// CI runs `clippy -W clippy::pedantic -D warnings` on this crate; the
// allowlist below names the pedantic lints we deliberately accept.
// must_use_candidate: pervasive on a read-only analytics API whose every
// getter "could be" #[must_use] — the annotation noise outweighs the
// footgun. The cast lints: u64↔f64 conversions are inherent to the
// statistics here (means, quantiles, confidences); counts stay far below
// 2^53 and the truncating directions are all explicit rounding.
#![allow(
    clippy::must_use_candidate,
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss
)]

pub mod consensus;
pub mod etb;
pub mod gamma;
pub mod histogram;
pub mod sawtooth;
pub mod stats;

pub use consensus::{period_consensus, Consensus};
pub use etb::EtbPadding;
pub use gamma::{ubd_from_parameters, GammaModel};
pub use histogram::Histogram;
pub use sawtooth::{
    detect_period, first_tooth_length, peak_positions, peak_spacing, ubd_candidates,
    PeriodEstimate, PeriodMethod,
};
pub use stats::{max_u64, mean, min_u64, percentile, variance};
