//! The analytic contention model of §3 (Eq. 1 and Eq. 2).

/// Eq. 1: the worst-case (upper-bound) delay of one bus request on a
/// round-robin bus with `num_cores` requesters and a per-transaction
/// occupancy of `l_bus` cycles.
///
/// ```
/// use rrb_analysis::ubd_from_parameters;
/// assert_eq!(ubd_from_parameters(4, 9), 27); // the NGMP configuration
/// assert_eq!(ubd_from_parameters(4, 2), 6);  // the toy bus of Figs. 2–3
/// ```
///
/// # Panics
///
/// Panics if `num_cores` is zero.
pub fn ubd_from_parameters(num_cores: u64, l_bus: u64) -> u64 {
    assert!(num_cores > 0, "a bus needs at least one requester");
    (num_cores - 1) * l_bus
}

/// The synchrony-effect contention model (Eq. 2): on a fully loaded
/// round-robin bus, a request issued `δ` cycles after the previous
/// request's completion suffers a fixed contention delay `γ(δ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GammaModel {
    ubd: u64,
}

impl GammaModel {
    /// A model for a bus whose upper-bound delay is `ubd`.
    ///
    /// # Panics
    ///
    /// Panics if `ubd` is zero (a zero-latency bus has no contention to
    /// model).
    pub fn new(ubd: u64) -> Self {
        assert!(ubd > 0, "ubd must be positive");
        GammaModel { ubd }
    }

    /// The model's `ubd`.
    pub fn ubd(&self) -> u64 {
        self.ubd
    }

    /// Eq. 2:
    ///
    /// ```text
    /// γ(δ) = ubd                              if δ = 0
    ///      = (ubd - (δ mod ubd)) mod ubd      otherwise
    /// ```
    pub fn gamma(&self, delta: u64) -> u64 {
        if delta == 0 {
            self.ubd
        } else {
            (self.ubd - (delta % self.ubd)) % self.ubd
        }
    }

    /// The saw-tooth period of `γ(δ)` — exactly `ubd`, for any δ offset
    /// (§4.1: "the period of the saw-tooth is exactly the ubd value
    /// regardless of `δ_rsk`").
    pub fn period(&self) -> u64 {
        self.ubd
    }

    /// The largest γ reachable with strictly positive injection time:
    /// `ubd - 1` (§4.1). Only δ = 0 reaches `ubd` itself.
    pub fn max_gamma_positive_delta(&self) -> u64 {
        self.ubd - 1
    }

    /// Samples the saw-tooth over nop counts `0..len`, with base injection
    /// time `delta_rsk` and per-nop latency `delta_nop` — the analytic
    /// counterpart of a `rsk-nop` k-sweep (Fig. 4).
    pub fn sweep(&self, delta_rsk: u64, delta_nop: u64, len: usize) -> Vec<u64> {
        (0..len as u64).map(|k| self.gamma(delta_rsk + k * delta_nop)).collect()
    }

    /// The slowdown a scua with `requests` bus requests, all with
    /// injection time `delta`, suffers against saturating contenders —
    /// the analytic prediction for `d_bus(t, k)` of §4.2.
    pub fn slowdown(&self, requests: u64, delta: u64) -> u64 {
        requests * self.gamma(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_matrix_values() {
        // The δ → γ matrix of Fig. 3 (ubd = 6).
        let m = GammaModel::new(6);
        let expected = [6, 5, 4, 3, 2, 1, 0, 5, 4, 3, 2, 1, 0, 5];
        for (delta, &gamma) in expected.iter().enumerate() {
            assert_eq!(m.gamma(delta as u64), gamma, "delta = {delta}");
        }
    }

    #[test]
    fn only_delta_zero_reaches_ubd() {
        let m = GammaModel::new(27);
        assert_eq!(m.gamma(0), 27);
        for delta in 1..200 {
            assert!(m.gamma(delta) < 27, "delta = {delta}");
        }
        assert_eq!(m.max_gamma_positive_delta(), 26);
    }

    #[test]
    fn gamma_is_periodic_in_delta() {
        let m = GammaModel::new(27);
        for delta in 1..100u64 {
            assert_eq!(m.gamma(delta), m.gamma(delta + 27));
            assert_eq!(m.gamma(delta), m.gamma(delta + 54));
        }
    }

    #[test]
    fn peaks_sit_one_past_each_multiple_of_ubd() {
        // §3.2: at δ = ubd + 1 the contention is ubd - 1 again.
        let m = GammaModel::new(27);
        assert_eq!(m.gamma(1), 26);
        assert_eq!(m.gamma(28), 26);
        assert_eq!(m.gamma(27), 0);
        assert_eq!(m.gamma(54), 0);
    }

    #[test]
    fn sweep_matches_pointwise_evaluation() {
        let m = GammaModel::new(6);
        let s = m.sweep(1, 1, 14);
        for (k, &v) in s.iter().enumerate() {
            assert_eq!(v, m.gamma(1 + k as u64));
        }
    }

    #[test]
    fn sweep_with_slow_nops_subsamples() {
        let m = GammaModel::new(27);
        let s = m.sweep(1, 3, 10);
        assert_eq!(s[0], m.gamma(1));
        assert_eq!(s[1], m.gamma(4));
        assert_eq!(s[9], m.gamma(28));
    }

    #[test]
    fn slowdown_scales_with_requests() {
        let m = GammaModel::new(27);
        assert_eq!(m.slowdown(10_000, 1), 260_000);
        assert_eq!(m.slowdown(10_000, 27), 0);
    }

    #[test]
    fn eq1_matches_paper_setups() {
        assert_eq!(ubd_from_parameters(4, 9), 27);
        assert_eq!(ubd_from_parameters(2, 9), 9);
        assert_eq!(ubd_from_parameters(8, 9), 63);
        assert_eq!(ubd_from_parameters(1, 9), 0, "single core: no contention");
    }

    #[test]
    #[should_panic(expected = "ubd must be positive")]
    fn zero_ubd_panics() {
        let _ = GammaModel::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one requester")]
    fn zero_cores_panics() {
        let _ = ubd_from_parameters(0, 9);
    }
}
