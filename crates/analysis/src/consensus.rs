//! Consensus across repeated derivations — the "increasing confidence"
//! layer the paper's title promises.
//!
//! A single k-sweep yields one period estimate. Industrial practice (and
//! the paper's framing around trustworthiness) calls for repetition:
//! re-run the sweep with different kernel phases, different iteration
//! counts, or different contender types, and accept the bound only when
//! the estimates agree. This module aggregates such repeated estimates
//! into a consensus verdict.

use crate::sawtooth::PeriodEstimate;
use std::collections::BTreeMap;
use std::fmt;

/// The outcome of aggregating several period estimates.
#[derive(Debug, Clone, PartialEq)]
pub enum Consensus {
    /// Every estimate agreed.
    Unanimous {
        /// The agreed period.
        period: u64,
        /// Number of estimates.
        votes: u64,
    },
    /// A strict majority agreed; dissenting estimates are listed.
    Majority {
        /// The winning period.
        period: u64,
        /// Votes for the winner.
        votes: u64,
        /// Total estimates.
        total: u64,
        /// The dissenting periods and their counts.
        dissent: Vec<(u64, u64)>,
    },
    /// No period reached a strict majority — the measurements are not
    /// trustworthy and must not be used for an ETB.
    Inconclusive {
        /// All observed periods and their counts.
        tally: Vec<(u64, u64)>,
    },
}

impl Consensus {
    /// The consensus period, if any.
    pub fn period(&self) -> Option<u64> {
        match self {
            Consensus::Unanimous { period, .. } | Consensus::Majority { period, .. } => {
                Some(*period)
            }
            Consensus::Inconclusive { .. } => None,
        }
    }

    /// Agreement ratio in `[0, 1]` (zero when inconclusive).
    pub fn agreement(&self) -> f64 {
        match self {
            Consensus::Unanimous { .. } => 1.0,
            Consensus::Majority { votes, total, .. } => *votes as f64 / *total as f64,
            Consensus::Inconclusive { .. } => 0.0,
        }
    }
}

impl fmt::Display for Consensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Consensus::Unanimous { period, votes } => {
                write!(f, "unanimous: period {period} ({votes} estimates)")
            }
            Consensus::Majority { period, votes, total, .. } => {
                write!(f, "majority: period {period} ({votes}/{total} estimates)")
            }
            Consensus::Inconclusive { tally } => {
                write!(f, "inconclusive: {tally:?}")
            }
        }
    }
}

/// Aggregates period estimates into a [`Consensus`].
///
/// Returns [`Consensus::Inconclusive`] for an empty input.
pub fn period_consensus<'a, I>(estimates: I) -> Consensus
where
    I: IntoIterator<Item = &'a PeriodEstimate>,
{
    let mut tally: BTreeMap<u64, u64> = BTreeMap::new();
    for e in estimates {
        *tally.entry(e.period).or_insert(0) += 1;
    }
    let total: u64 = tally.values().sum();
    if total == 0 {
        return Consensus::Inconclusive { tally: Vec::new() };
    }
    let Some((&winner, &votes)) = tally.iter().max_by_key(|&(p, n)| (*n, std::cmp::Reverse(*p)))
    else {
        return Consensus::Inconclusive { tally: Vec::new() };
    };
    if votes == total {
        Consensus::Unanimous { period: winner, votes }
    } else if votes * 2 > total {
        Consensus::Majority {
            period: winner,
            votes,
            total,
            dissent: tally.into_iter().filter(|&(p, _)| p != winner).collect(),
        }
    } else {
        Consensus::Inconclusive { tally: tally.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sawtooth::PeriodMethod;

    fn est(period: u64) -> PeriodEstimate {
        PeriodEstimate { period, method: PeriodMethod::Exact, confidence: 1.0 }
    }

    #[test]
    fn unanimous_agreement() {
        let es = vec![est(27), est(27), est(27)];
        let c = period_consensus(&es);
        assert_eq!(c, Consensus::Unanimous { period: 27, votes: 3 });
        assert_eq!(c.period(), Some(27));
        assert_eq!(c.agreement(), 1.0);
    }

    #[test]
    fn majority_with_dissent() {
        let es = vec![est(27), est(27), est(27), est(9)];
        let c = period_consensus(&es);
        match &c {
            Consensus::Majority { period, votes, total, dissent } => {
                assert_eq!(*period, 27);
                assert_eq!((*votes, *total), (3, 4));
                assert_eq!(dissent, &vec![(9, 1)]);
            }
            other => panic!("expected majority, got {other:?}"),
        }
        assert_eq!(c.period(), Some(27));
        assert!(c.agreement() > 0.7);
    }

    #[test]
    fn split_is_inconclusive() {
        let es = vec![est(27), est(9)];
        let c = period_consensus(&es);
        assert!(matches!(c, Consensus::Inconclusive { .. }));
        assert_eq!(c.period(), None);
        assert_eq!(c.agreement(), 0.0);
    }

    #[test]
    fn empty_is_inconclusive() {
        let es: Vec<PeriodEstimate> = Vec::new();
        assert!(matches!(period_consensus(&es), Consensus::Inconclusive { .. }));
    }

    #[test]
    fn tie_breaks_to_smaller_period() {
        // Conservative: among equally voted periods the smaller one wins
        // the tally (a smaller period would be caught by the gamma-max
        // disambiguation later, so surfacing it is the safe choice) —
        // but a 50/50 split is inconclusive anyway, so exercise 2-2-1.
        let es = vec![est(27), est(27), est(9), est(9), est(54)];
        let c = period_consensus(&es);
        assert!(matches!(c, Consensus::Inconclusive { .. }));
    }

    #[test]
    fn display_formats() {
        assert!(period_consensus(&[est(6), est(6)]).to_string().contains("unanimous"));
        assert!(period_consensus(&[est(6), est(6), est(5)]).to_string().contains("majority"));
    }
}
