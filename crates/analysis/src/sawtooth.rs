//! Saw-tooth period detection — the heart of the methodology (§4.2).
//!
//! Given the measured slowdown series `d_bus(t, k)` for `k = 0, 1, 2, …`
//! nops, the paper recovers `ubd` as the period of the saw-tooth (Eq. 3):
//!
//! ```text
//! ubd(t) = |ki − kj| : (ki ≠ kj) and (d_bus(t, ki) = d_bus(t, kj))
//! ```
//!
//! Real measurements carry small perturbations (cold-start transients,
//! loop boundaries), so beyond the exact Eq. 3 matcher this module
//! provides a tolerance-based matcher and an autocorrelation fallback,
//! combined by [`detect_period`].
//!
//! When the nop latency `δ_nop` exceeds one cycle, a k-sweep *samples*
//! the δ-space saw-tooth every `δ_nop` cycles; [`ubd_candidates`] inverts
//! that sampling once `δ_nop` has been calibrated (§4.2).

use std::fmt;

/// How a period was established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeriodMethod {
    /// All samples matched exactly one period apart (Eq. 3).
    Exact,
    /// Samples matched within the configured tolerance.
    Tolerant,
    /// Autocorrelation peak (noisiest data).
    Autocorrelation,
}

impl fmt::Display for PeriodMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeriodMethod::Exact => write!(f, "exact"),
            PeriodMethod::Tolerant => write!(f, "tolerant"),
            PeriodMethod::Autocorrelation => write!(f, "autocorrelation"),
        }
    }
}

/// A detected saw-tooth period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodEstimate {
    /// The period, in samples (k steps).
    pub period: u64,
    /// The matcher that produced it.
    pub method: PeriodMethod,
    /// Fraction of sample pairs one period apart that matched (1.0 for
    /// exact detection).
    pub confidence: f64,
}

/// The smallest period `p >= 2` such that `values[i] == values[i + p]`
/// for every valid `i` — the literal Eq. 3.
///
/// Returns `None` for series shorter than two periods of any candidate
/// or for constant/aperiodic series. Requires at least `2 * p` samples
/// to accept `p`, so the match is witnessed over a full period.
pub fn exact_period(values: &[u64]) -> Option<u64> {
    let n = values.len();
    for p in 2..=(n / 2) {
        if (0..n - p).all(|i| values[i] == values[i + p]) && !is_constant(&values[..p]) {
            return Some(p as u64);
        }
    }
    None
}

/// Like [`exact_period`] but allowing `|a − b| <= tolerance` per pair.
pub fn tolerant_period(values: &[u64], tolerance: u64) -> Option<(u64, f64)> {
    let n = values.len();
    for p in 2..=(n / 2) {
        let pairs = n - p;
        let matched =
            (0..pairs).filter(|&i| values[i].abs_diff(values[i + p]) <= tolerance).count();
        if matched == pairs && !is_constant(&values[..p]) {
            return Some((p as u64, 1.0));
        }
    }
    None
}

/// Autocorrelation-based fallback: the lag in `[2, n/2]` with the highest
/// normalised autocorrelation of the *first-differenced* series.
///
/// Differencing removes flat offsets and linear trends — a monotone ramp
/// has a constant derivative and is correctly reported as aperiodic —
/// while a saw-tooth's derivative (a train of `-1` steps with one big
/// positive jump per tooth) stays strongly periodic.
pub fn autocorrelation_period(values: &[u64]) -> Option<(u64, f64)> {
    let n = values.len();
    if n < 8 {
        return None;
    }
    let diffs: Vec<f64> = values.windows(2).map(|w| w[1] as f64 - w[0] as f64).collect();
    if diffs.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9) {
        return None; // flat or pure trend
    }
    let m = diffs.len();
    let mean = diffs.iter().sum::<f64>() / m as f64;
    let centred: Vec<f64> = diffs.iter().map(|&d| d - mean).collect();
    let energy: f64 = centred.iter().map(|x| x * x).sum();
    if energy == 0.0 {
        return None;
    }
    let mut best: Option<(u64, f64)> = None;
    for lag in 2..=(m / 2) {
        let score: f64 = (0..m - lag).map(|i| centred[i] * centred[i + lag]).sum::<f64>() / energy
            * m as f64
            / (m - lag) as f64;
        match best {
            // Strictly-greater keeps the *smallest* lag among equal peaks,
            // so harmonics (2p, 3p, …) do not displace the fundamental.
            Some((_, s)) if score <= s => {}
            _ => best = Some((lag as u64, score)),
        }
    }
    best.filter(|&(_, s)| s > 0.5)
}

fn is_constant(values: &[u64]) -> bool {
    values.windows(2).all(|w| w[0] == w[1])
}

/// Detects the saw-tooth period of a slowdown series, trying the exact
/// Eq. 3 matcher first, then a tolerance of `tolerance` cycles, then
/// autocorrelation.
///
/// Returns `None` when no matcher finds a credible period (series too
/// short, constant, or aperiodic) — which the methodology reports as
/// "bus is not behaving like a loaded round-robin bus".
pub fn detect_period(values: &[u64], tolerance: u64) -> Option<PeriodEstimate> {
    if let Some(p) = exact_period(values) {
        return Some(PeriodEstimate { period: p, method: PeriodMethod::Exact, confidence: 1.0 });
    }
    if tolerance > 0 {
        if let Some((p, c)) = tolerant_period(values, tolerance) {
            return Some(PeriodEstimate {
                period: p,
                method: PeriodMethod::Tolerant,
                confidence: c,
            });
        }
    }
    autocorrelation_period(values).map(|(p, c)| PeriodEstimate {
        period: p,
        method: PeriodMethod::Autocorrelation,
        confidence: c.min(1.0),
    })
}

/// Inverts `δ_nop` sampling (§4.2): given an observed k-space period
/// `k_period` and the calibrated per-nop latency `delta_nop`, returns
/// every `ubd` consistent with the observation, in increasing order.
///
/// A sweep stepping δ by `q = delta_nop` samples a saw-tooth of true
/// period `ubd` with apparent period `ubd / gcd(q, ubd)`; all `ubd` in
/// `[2, k_period · q]` with that apparent period are returned. With
/// `q = 1` the answer is always exactly `{k_period}`.
///
/// The methodology disambiguates multiple candidates with the largest
/// observed per-request contention (`ubd > γ_max`).
///
/// # Panics
///
/// Panics if `k_period < 2` (a saw-tooth period is at least 2) or
/// `delta_nop == 0` (nops cannot be free).
pub fn ubd_candidates(k_period: u64, delta_nop: u64) -> Vec<u64> {
    assert!(k_period >= 2, "a saw-tooth period is at least 2");
    assert!(delta_nop >= 1, "nops cannot be free");
    (2..=k_period * delta_nop).filter(|&c| c / gcd(delta_nop, c) == k_period).collect()
}

/// Positions of the series' peaks: samples within `rel_tol` (a fraction
/// of the maximum) of the global maximum. On a clean saw-tooth the peaks
/// sit one period apart, giving the Eq. 3 reading "ubd = |ki - kj|" that
/// Fig. 7(a) annotates ("27 = 54 - 27" on ref, "27 = 51 - 24" on var).
///
/// # Panics
///
/// Panics if `rel_tol` is outside `[0, 1]`.
pub fn peak_positions(series: &[u64], rel_tol: f64) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&rel_tol), "rel_tol must be in [0, 1]");
    let max = series.iter().max().copied().unwrap_or(0);
    let threshold = max.saturating_sub((max as f64 * rel_tol).round() as u64);
    series.iter().enumerate().filter(|&(_, &v)| v >= threshold && v > 0).map(|(k, _)| k).collect()
}

/// The spacing between consecutive peaks, if they are evenly spaced —
/// the direct Eq. 3 period reading.
pub fn peak_spacing(series: &[u64], rel_tol: f64) -> Option<u64> {
    let peaks = peak_positions(series, rel_tol);
    if peaks.len() < 2 {
        return None;
    }
    let gaps: Vec<u64> = peaks.windows(2).map(|w| (w[1] - w[0]) as u64).collect();
    let first = gaps[0];
    gaps.iter().all(|&g| g == first).then_some(first)
}

/// Length of the *first tooth* of a one-tooth series — the Fig. 7(b)
/// store reading: a store rsk-nop's slowdown decays over one period and
/// then collapses to (near) zero because the store buffer hides the bus
/// latency. The paper reads `ubd` off the span of that single tooth
/// ("the first period spans k in [1..28], whose length matches the ubd",
/// modulo a small buffer-dependent shift).
///
/// Returns the first index `k` after the global maximum at which the
/// series drops below `threshold_frac` of its maximum and never rises
/// above it again. `None` if the series never collapses (no store-buffer
/// hiding — e.g. the load series, which stays periodic).
///
/// # Panics
///
/// Panics if `threshold_frac` is outside `(0, 1)`.
pub fn first_tooth_length(series: &[u64], threshold_frac: f64) -> Option<u64> {
    assert!(threshold_frac > 0.0 && threshold_frac < 1.0, "threshold_frac must be in (0, 1)");
    let max = series.iter().max().copied()?;
    if max == 0 {
        return None;
    }
    let threshold = (max as f64 * threshold_frac) as u64;
    let peak = series.iter().position(|&v| v == max)?;
    let collapse = (peak..series.len()).find(|&i| series[i] <= threshold)?;
    // The collapse must be final: a second tooth (values climbing back
    // toward the peak) means the series is periodic, not one-shot. A
    // slowly creeping residual tail — second-order measurement overhead
    // that grows with k — is tolerated up to half the tooth height.
    if series[collapse..].iter().any(|&v| v > max / 2) {
        return None;
    }
    Some(collapse as u64)
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::GammaModel;

    fn sawtooth(ubd: u64, delta0: u64, step: u64, len: usize) -> Vec<u64> {
        GammaModel::new(ubd).sweep(delta0, step, len)
    }

    #[test]
    fn exact_recovers_clean_period() {
        let s = sawtooth(27, 1, 1, 90);
        assert_eq!(exact_period(&s), Some(27));
        let s6 = sawtooth(6, 1, 1, 30);
        assert_eq!(exact_period(&s6), Some(6));
    }

    #[test]
    fn exact_period_independent_of_offset() {
        // §4.1: the period is ubd regardless of δ_rsk.
        for delta0 in [1u64, 2, 4, 9, 26] {
            let s = sawtooth(27, delta0, 1, 100);
            assert_eq!(exact_period(&s), Some(27), "delta0 = {delta0}");
        }
    }

    #[test]
    fn exact_rejects_constant_series() {
        assert_eq!(exact_period(&[5; 40]), None);
    }

    #[test]
    fn exact_rejects_too_short_series() {
        let s = sawtooth(27, 1, 1, 40); // < 2 periods
        assert_eq!(exact_period(&s), None);
    }

    #[test]
    fn tolerant_absorbs_bounded_noise() {
        let mut s = sawtooth(27, 1, 1, 90);
        // Deterministic perturbation whose own period (5) does not divide
        // the tooth period, so exact matching cannot succeed by accident.
        for (i, v) in s.iter_mut().enumerate() {
            *v += ((i * i) % 5) as u64;
        }
        assert_eq!(exact_period(&s), None, "noise defeats exact matching");
        let (p, _) = tolerant_period(&s, 4).expect("tolerant must recover");
        assert_eq!(p, 27);
    }

    #[test]
    fn autocorrelation_handles_scaled_series() {
        // Slowdown series = per-request gamma * request count.
        let s: Vec<u64> = sawtooth(27, 1, 1, 120).iter().map(|g| g * 10_000).collect();
        let (p, score) = autocorrelation_period(&s).expect("periodic");
        assert_eq!(p, 27);
        assert!(score > 0.9);
    }

    #[test]
    fn detect_period_prefers_exact() {
        let s = sawtooth(6, 1, 1, 40);
        let est = detect_period(&s, 3).expect("periodic");
        assert_eq!(est.period, 6);
        assert_eq!(est.method, PeriodMethod::Exact);
        assert_eq!(est.confidence, 1.0);
    }

    #[test]
    fn detect_period_none_for_flat_or_random() {
        assert!(detect_period(&[7; 50], 0).is_none());
        // A monotone ramp has no period.
        let ramp: Vec<u64> = (0..50).collect();
        assert!(detect_period(&ramp, 0).is_none());
    }

    #[test]
    fn candidates_with_unit_nop_are_exact() {
        assert_eq!(ubd_candidates(27, 1), vec![27]);
        assert_eq!(ubd_candidates(6, 1), vec![6]);
    }

    #[test]
    fn candidates_with_slow_nops_include_truth() {
        // δ_nop = 3, ubd = 27: sampled period is 27/gcd(3,27) = 9.
        let s = sawtooth(27, 1, 3, 40);
        let p = exact_period(&s).expect("sampled saw-tooth is periodic");
        assert_eq!(p, 9);
        let cands = ubd_candidates(p, 3);
        assert!(cands.contains(&27), "candidates: {cands:?}");
        // Disambiguation: γ up to 26 is observed, so ubd = 9 is excluded.
        let max_gamma = s.iter().max().copied().expect("non-empty");
        let resolved: Vec<u64> = cands.into_iter().filter(|&c| c > max_gamma).collect();
        assert_eq!(resolved, vec![27]);
    }

    #[test]
    fn candidates_with_coprime_nop_latency() {
        // δ_nop = 2, ubd = 27 (coprime): apparent period is still 27.
        let s = sawtooth(27, 1, 2, 80);
        let p = exact_period(&s).expect("periodic");
        assert_eq!(p, 27);
        let cands = ubd_candidates(p, 2);
        assert_eq!(cands, vec![27, 54]);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_candidate_period_panics() {
        let _ = ubd_candidates(1, 1);
    }

    #[test]
    fn method_display() {
        assert_eq!(PeriodMethod::Exact.to_string(), "exact");
        assert_eq!(PeriodMethod::Autocorrelation.to_string(), "autocorrelation");
    }

    #[test]
    fn peaks_of_clean_sawtooth_sit_one_period_apart() {
        // ref-style: δ0 = 1 peaks at k ≡ 0 (mod 27).
        let s = sawtooth(27, 1, 1, 82);
        assert_eq!(peak_positions(&s, 0.0), vec![0, 27, 54, 81]);
        assert_eq!(peak_spacing(&s, 0.0), Some(27));
        // var-style: δ0 = 4 peaks at k ≡ 24 (mod 27) — "27 = 51 - 24".
        let v = sawtooth(27, 4, 1, 80);
        assert_eq!(peak_positions(&v, 0.0), vec![24, 51, 78]);
        assert_eq!(peak_spacing(&v, 0.0), Some(27));
    }

    #[test]
    fn peak_tolerance_admits_near_peaks() {
        // Realistic scale: slowdown = γ × requests, so the tooth step is
        // large and a small relative tolerance re-admits a slightly
        // depressed peak without swallowing its neighbours.
        let mut s: Vec<u64> = sawtooth(27, 1, 1, 60).iter().map(|g| g * 1000).collect();
        s[27] -= 10; // measurement jitter on one peak
        assert_eq!(peak_positions(&s, 0.0), vec![0, 54]);
        assert_eq!(peak_spacing(&s, 0.001), Some(27));
    }

    #[test]
    fn uneven_peaks_yield_no_spacing() {
        assert_eq!(peak_spacing(&[9, 0, 9, 0, 0, 9], 0.0), None);
        assert_eq!(peak_spacing(&[1, 2, 3], 0.0), None, "single peak");
    }

    #[test]
    #[should_panic(expected = "rel_tol")]
    fn bad_tolerance_panics() {
        let _ = peak_positions(&[1], 2.0);
    }

    #[test]
    fn first_tooth_length_reads_store_series() {
        // Synthetic Fig. 7(b): decays 28000, 27000, …, 0 and stays near
        // zero from k = 28 on.
        let mut s: Vec<u64> = (0..29).rev().map(|v| (v as u64) * 1000).collect();
        s.extend(std::iter::repeat_n(40u64, 40)); // noisy near-zero tail
        assert_eq!(first_tooth_length(&s, 0.02), Some(28));
    }

    #[test]
    fn first_tooth_rejects_periodic_series() {
        // The load series keeps re-peaking: no single tooth.
        let s: Vec<u64> = sawtooth(27, 1, 1, 80).iter().map(|g| g * 1000).collect();
        assert_eq!(first_tooth_length(&s, 0.05), None);
    }

    #[test]
    fn first_tooth_none_for_flat_zero() {
        assert_eq!(first_tooth_length(&[0; 10], 0.1), None);
        assert_eq!(first_tooth_length(&[], 0.1), None);
    }

    #[test]
    #[should_panic(expected = "threshold_frac")]
    fn first_tooth_bad_threshold_panics() {
        let _ = first_tooth_length(&[1, 0], 1.5);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(27, 3), 3);
        assert_eq!(gcd(2, 27), 1);
        assert_eq!(gcd(12, 18), 6);
    }
}
