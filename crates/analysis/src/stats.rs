//! Small summary-statistics helpers used across the experiments.

/// Arithmetic mean of a slice of `u64` samples; `None` when empty.
///
/// ```
/// use rrb_analysis::mean;
/// assert_eq!(mean(&[2, 4, 6]), Some(4.0));
/// assert_eq!(mean(&[]), None);
/// ```
pub fn mean(values: &[u64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64)
    }
}

/// Population variance; `None` when empty.
pub fn variance(values: &[u64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|&v| (v as f64 - m).powi(2)).sum::<f64>() / values.len() as f64)
}

/// Maximum; `None` when empty.
pub fn max_u64(values: &[u64]) -> Option<u64> {
    values.iter().max().copied()
}

/// Minimum; `None` when empty.
pub fn min_u64(values: &[u64]) -> Option<u64> {
    values.iter().min().copied()
}

/// The `q`-quantile (nearest-rank) of the samples, `q` in `[0, 1]`.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
pub fn percentile(values: &[u64], q: f64) -> Option<u64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[1, 2, 3, 4]), Some(2.5));
        assert_eq!(variance(&[5, 5, 5]), Some(0.0));
        let v = variance(&[2, 4]).expect("non-empty");
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extremes() {
        assert_eq!(max_u64(&[3, 9, 1]), Some(9));
        assert_eq!(min_u64(&[3, 9, 1]), Some(1));
        assert_eq!(max_u64(&[]), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = [10, 20, 30, 40, 50];
        assert_eq!(percentile(&v, 0.0), Some(10));
        assert_eq!(percentile(&v, 0.5), Some(30));
        assert_eq!(percentile(&v, 0.9), Some(50));
        assert_eq!(percentile(&v, 1.0), Some(50));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_percentile_panics() {
        let _ = percentile(&[1], 2.0);
    }
}
