//! Execution-time-bound padding (§4.3, "Using `ubd_m`").
//!
//! With measurement-based timing analysis, the analyst determines an
//! upper bound `nr` on the number of bus requests the software component
//! performs and pads its execution-time bound with `pad = nr × ubd_m`.
//!
//! All arithmetic here **saturates** at `u64::MAX`: request bounds are
//! analyst-supplied and can be astronomically conservative, and a bound
//! that silently wraps (release) or aborts the analysis (debug) is worse
//! than one that pins to "unboundedly large". Saturation keeps the
//! results sound — an over-estimate is always a valid upper bound.

use std::fmt;

/// The contention padding of one software component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EtbPadding {
    /// Upper bound on bus requests of the component.
    pub requests: u64,
    /// The measured upper-bound delay per request.
    pub ubd_m: u64,
}

impl EtbPadding {
    /// A padding for `requests` requests at `ubd_m` cycles each.
    pub fn new(requests: u64, ubd_m: u64) -> Self {
        EtbPadding { requests, ubd_m }
    }

    /// `pad = nr × ubd_m`, saturating at `u64::MAX` for very large
    /// request bounds instead of wrapping (release) or panicking (debug).
    pub fn pad(&self) -> u64 {
        self.requests.saturating_mul(self.ubd_m)
    }

    /// The execution-time bound: isolation time plus the pad
    /// (saturating; a pinned `u64::MAX` stays a sound upper bound).
    ///
    /// ```
    /// use rrb_analysis::EtbPadding;
    /// let p = EtbPadding::new(10_000, 27);
    /// assert_eq!(p.etb(1_000_000), 1_270_000);
    /// ```
    pub fn etb(&self, isolation_time: u64) -> u64 {
        isolation_time.saturating_add(self.pad())
    }

    /// How much an underestimated `ubd_m` undercuts the true bound, in
    /// cycles: `nr × (ubd − ubd_m)`, saturating in both the difference
    /// and the product. This is the paper's motivation — a naive `ubd_m`
    /// of 26 instead of 27 leaves every request one cycle short, and the
    /// resulting ETB is unsound by `nr` cycles.
    pub fn shortfall_against(&self, true_ubd: u64) -> u64 {
        self.requests.saturating_mul(true_ubd.saturating_sub(self.ubd_m))
    }
}

impl fmt::Display for EtbPadding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pad = {} requests x {} cycles = {} cycles",
            self.requests,
            self.ubd_m,
            self.pad()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_is_product() {
        assert_eq!(EtbPadding::new(0, 27).pad(), 0);
        assert_eq!(EtbPadding::new(1000, 27).pad(), 27_000);
    }

    #[test]
    fn etb_adds_isolation_time() {
        assert_eq!(EtbPadding::new(100, 6).etb(500), 1100);
    }

    #[test]
    fn shortfall_quantifies_unsoundness() {
        // The naive ref-architecture estimate: ubd_m = 26, truth 27.
        let naive = EtbPadding::new(10_000, 26);
        assert_eq!(naive.shortfall_against(27), 10_000);
        // The methodology's estimate is exact: no shortfall.
        let exact = EtbPadding::new(10_000, 27);
        assert_eq!(exact.shortfall_against(27), 0);
        // Overestimates are safe (never negative).
        let over = EtbPadding::new(10_000, 30);
        assert_eq!(over.shortfall_against(27), 0);
    }

    #[test]
    fn huge_bounds_saturate_instead_of_wrapping() {
        // A maximally conservative request bound must pin the pad (and
        // everything downstream of it) to u64::MAX, not wrap to a small
        // — unsound — number.
        let p = EtbPadding::new(u64::MAX, 27);
        assert_eq!(p.pad(), u64::MAX);
        assert_eq!(p.etb(1_000_000), u64::MAX);
        assert_eq!(p.shortfall_against(u64::MAX), u64::MAX);
        // Saturation in the difference still reports zero shortfall for
        // overestimates.
        assert_eq!(EtbPadding::new(u64::MAX, 30).shortfall_against(27), 0);
        // The boundary product that just fits is exact.
        let exact = EtbPadding::new(u64::MAX / 27, 27);
        assert_eq!(exact.pad(), (u64::MAX / 27) * 27);
    }

    #[test]
    fn display_is_informative() {
        let s = EtbPadding::new(2, 3).to_string();
        assert!(s.contains("2 requests"));
        assert!(s.contains("6 cycles"));
    }
}
