//! Integer histograms for the Fig. 6 plots.

use std::collections::BTreeMap;
use std::fmt;

/// A histogram over `u64` values.
///
/// ```
/// use rrb_analysis::Histogram;
/// let h: Histogram = [3u64, 3, 3, 5, 9].into_iter().collect();
/// assert_eq!(h.count(3), 3);
/// assert_eq!(h.mode(), Some(3));
/// assert_eq!(h.max(), Some(9));
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    bins: BTreeMap<u64, u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds directly from pre-counted bins.
    pub fn from_bins<I: IntoIterator<Item = (u64, u64)>>(bins: I) -> Self {
        Histogram { bins: bins.into_iter().filter(|&(_, n)| n > 0).collect() }
    }

    /// Adds one observation.
    pub fn add(&mut self, value: u64) {
        *self.bins.entry(value).or_insert(0) += 1;
    }

    /// Adds `count` observations of `value`.
    pub fn add_n(&mut self, value: u64, count: u64) {
        if count > 0 {
            *self.bins.entry(value).or_insert(0) += count;
        }
    }

    /// Occurrences of `value`.
    pub fn count(&self, value: u64) -> u64 {
        self.bins.get(&value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.bins.values().sum()
    }

    /// Largest observed value.
    pub fn max(&self) -> Option<u64> {
        self.bins.keys().next_back().copied()
    }

    /// Smallest observed value.
    pub fn min(&self) -> Option<u64> {
        self.bins.keys().next().copied()
    }

    /// Observations strictly above `threshold` — e.g. per-request delays
    /// exceeding a static bound when cross-checking analyzer soundness.
    pub fn count_above(&self, threshold: u64) -> u64 {
        use std::ops::Bound;
        self.bins.range((Bound::Excluded(threshold), Bound::Unbounded)).map(|(_, &n)| n).sum()
    }

    /// Most frequent value (ties break toward the larger value, matching
    /// the conservative reading a timing analyst would take).
    pub fn mode(&self) -> Option<u64> {
        self.bins.iter().max_by_key(|&(v, n)| (*n, *v)).map(|(&v, _)| v)
    }

    /// Fraction of observations equal to `value`, in `[0, 1]`.
    pub fn fraction(&self, value: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(value) as f64 / total as f64
        }
    }

    /// The smallest value `v` such that at least `q` (in `[0,1]`) of the
    /// observations are `<= v`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let total = self.total();
        if total == 0 {
            return None;
        }
        let threshold = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (&v, &n) in &self.bins {
            seen += n;
            if seen >= threshold {
                return Some(v);
            }
        }
        self.max()
    }

    /// Mean of the observations.
    pub fn mean(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let sum: u64 = self.bins.iter().map(|(&v, &n)| v * n).sum();
        Some(sum as f64 / total as f64)
    }

    /// Iterates `(value, count)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bins.iter().map(|(&v, &n)| (v, n))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, n) in other.iter() {
            self.add_n(v, n);
        }
    }

    /// Renders an ASCII bar chart, one row per bin, scaled to `width`
    /// characters for the largest bin.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let peak = self.bins.values().max().copied().unwrap_or(0);
        if peak == 0 {
            return String::from("(empty)\n");
        }
        let mut out = String::new();
        for (v, n) in self.iter() {
            let bar = (n as f64 / peak as f64 * width as f64).round() as usize;
            let _ = writeln!(out, "{v:>6} | {:<width$} {n}", "#".repeat(bar));
        }
        out
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_total() {
        let h: Histogram = [1u64, 1, 2, 9].into_iter().collect();
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(9));
    }

    #[test]
    fn mode_ties_break_high() {
        let h: Histogram = [1u64, 1, 5, 5].into_iter().collect();
        assert_eq!(h.mode(), Some(5));
    }

    #[test]
    fn count_above_is_a_strict_tail_count() {
        let h: Histogram = [1u64, 1, 2, 9].into_iter().collect();
        assert_eq!(h.count_above(0), 4);
        assert_eq!(h.count_above(1), 2);
        assert_eq!(h.count_above(2), 1);
        assert_eq!(h.count_above(9), 0);
        assert_eq!(h.count_above(u64::MAX), 0);
        assert_eq!(Histogram::new().count_above(0), 0);
    }

    #[test]
    fn quantiles() {
        let h: Histogram = (1u64..=100).collect();
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(1.0), Some(100));
        assert_eq!(h.quantile(0.0), Some(1));
    }

    #[test]
    fn empty_histogram_behaviour() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.mode(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.fraction(3), 0.0);
        assert_eq!(h.render(10), "(empty)\n");
    }

    #[test]
    fn merge_accumulates() {
        let mut a: Histogram = [1u64, 2].into_iter().collect();
        let b: Histogram = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(2), 2);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn from_bins_skips_empty() {
        let h = Histogram::from_bins([(4, 2), (7, 0)]);
        assert_eq!(h.count(4), 2);
        assert_eq!(h.count(7), 0);
        assert_eq!(h.max(), Some(4));
    }

    #[test]
    fn mean_is_weighted() {
        let h = Histogram::from_bins([(10, 3), (20, 1)]);
        assert_eq!(h.mean(), Some(12.5));
    }

    #[test]
    fn fraction_of_mode_measures_synchrony() {
        // The §5.2 observation: 98 % of requests share one delay.
        let mut h = Histogram::from_bins([(26, 98), (20, 1), (13, 1)]);
        assert!(h.fraction(26) > 0.97);
        h.add(26);
        assert_eq!(h.count(26), 99);
    }

    #[test]
    fn render_scales_bars() {
        let h = Histogram::from_bins([(1, 10), (2, 5)]);
        let r = h.render(10);
        assert!(r.contains("##########"));
        assert!(r.contains("#####"));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn bad_quantile_panics() {
        let h: Histogram = [1u64].into_iter().collect();
        let _ = h.quantile(1.5);
    }
}
