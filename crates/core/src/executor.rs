//! The unified batch-execution front end: a warm [`MachineArena`]
//! behind one [`Executor`].
//!
//! Every measurement in this crate is a [`RunSpec`] — one machine, one
//! workload — and until the `Executor` redesign five free functions
//! (`execute_run`, `execute_run_stored`, `execute_plan`,
//! `execute_plan_stored`, `execute_plan_deduped`) each re-implemented a
//! slice of the same pipeline. They survive as deprecated wrappers; the
//! single execution path now lives here:
//!
//! ```
//! use rrb::campaign::RunSpec;
//! use rrb::executor::Executor;
//! use rrb_kernels::{rsk_nop, AccessKind};
//! use rrb_sim::{CoreId, MachineConfig};
//!
//! let cfg = MachineConfig::toy(4, 2);
//! let scua = rsk_nop(AccessKind::Load, 1, &cfg, CoreId::new(0), 60);
//! let specs: Vec<RunSpec> = (0..4)
//!     .map(|k| RunSpec::contended_rsk(format!("k={k}"), cfg.clone(), scua.clone(), AccessKind::Load))
//!     .collect();
//! let (results, _usage) = Executor::new().jobs(2).execute(&specs);
//! assert!(results.iter().all(Result::is_ok));
//! ```
//!
//! ## The arena
//!
//! A [`MachineArena`] owns at most one [`Machine`] and re-targets it at
//! each incoming spec with [`Machine::reset_to`], which rewinds cores,
//! caches, shared resources, DRAM, PMCs and trace buffers to their
//! just-built state *without reallocating*. The reset is semantically
//! indistinguishable from building a fresh machine — the property test
//! in `tests/prop_arena_reset.rs` pins cycle-for-cycle equality of the
//! two paths over randomized configurations and workloads — so batched
//! runs reuse one warm machine per worker instead of paying an
//! allocator round trip per run. [`Executor::arena`] turns the reuse
//! off (every run then builds a fresh machine); output is byte-identical
//! either way.
//!
//! ## What the executor strips
//!
//! A [`RunMeasurement`] exposes aggregate counters and histograms only —
//! nothing in it can observe per-request [`RequestRecord`]s or trace
//! events. The executor therefore disables `record_requests` and
//! `record_trace` on the machines it drives: observationally identical
//! through this API, and it lets the simulator's steady-state
//! fast-forward engage (which refuses to skip when it would have to
//! synthesize per-request records for the skipped periods). Drive a
//! [`Machine`] directly when you need the records or the trace.
//!
//! [`RequestRecord`]: rrb_sim::RequestRecord

use crate::campaign::{DedupTable, RunError, RunMeasurement, RunSource, RunSpec, StoreUsage};
use crate::store::{ResultStore, StoreLookup};
use rrb_analysis::Histogram;
use rrb_sim::{CoreId, Machine, MachineConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One run's full outcome against an optional persistent store: the
/// measurement (or failure), where it came from, and any non-fatal
/// store warnings.
pub type StoredOutcome = (Result<RunMeasurement, RunError>, RunSource, Vec<String>);

/// A reusable machine slot: executes [`RunSpec`]s back to back on one
/// warm [`Machine`], rebuilding only when the slot is still empty.
///
/// The arena is deliberately dumb — no scheduling, no store, no
/// threads; one mutable slot. [`Executor`] composes arenas into worker
/// pools; the `rrb-serve` daemon keeps one per worker thread across
/// jobs.
#[derive(Debug, Default)]
pub struct MachineArena {
    machine: Option<Machine>,
}

impl MachineArena {
    /// An empty (cold) arena.
    pub fn new() -> Self {
        MachineArena { machine: None }
    }

    /// Whether the arena holds a machine from a previous run.
    pub fn is_warm(&self) -> bool {
        self.machine.is_some()
    }

    /// Drops the warm machine, forcing the next run to build afresh.
    pub fn clear(&mut self) {
        self.machine = None;
    }

    /// Executes one spec, resetting the warm machine when one is held.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] when the configuration is invalid, the
    /// workload does not fit the machine, the cycle budget is
    /// exhausted, or the scua never terminates. A failed run leaves the
    /// arena usable: the next call resets (or rebuilds) as usual.
    pub fn execute(&mut self, spec: &RunSpec) -> Result<RunMeasurement, RunError> {
        let cfg = execution_config(&spec.cfg);
        let machine = match self.machine.take() {
            Some(mut m) => match m.reset_to(cfg) {
                Ok(()) => self.machine.insert(m),
                Err(e) => {
                    // Validation failed before any mutation: keep the
                    // warm machine for the next (valid) spec.
                    self.machine = Some(m);
                    return Err(e.into());
                }
            },
            None => self.machine.insert(Machine::new(cfg)?),
        };
        machine.try_load_program(CoreId::new(0), spec.scua.clone())?;
        for (i, contender) in spec.contenders.iter().enumerate() {
            machine.try_load_program(CoreId::new(i + 1), contender.clone())?;
        }
        let summary = machine.run()?;
        let scua = CoreId::new(0);
        let core = summary.core(scua);
        let execution_time = core.execution_time().ok_or(RunError::NonTerminatingScua)?;
        let pmc = machine.pmc().core(scua);
        Ok(RunMeasurement {
            execution_time,
            bus_requests: core.bus_requests,
            instructions: core.instructions,
            gamma_histogram: Histogram::from_bins(
                pmc.gamma_histogram.iter().map(|(&g, &n)| (g, n)),
            ),
            mc_gamma_histogram: Histogram::from_bins(
                pmc.mc_gamma_histogram.iter().map(|(&g, &n)| (g, n)),
            ),
            contender_histogram: Histogram::from_bins(
                pmc.contender_histogram.iter().map(|(&c, &n)| (u64::from(c), n)),
            ),
            bus_utilization: summary.bus_utilization,
            mc_utilization: summary.mc_utilization,
        })
    }

    /// [`MachineArena::execute`] behind an optional persistent store: a
    /// valid, structurally confirmed entry skips simulation entirely; a
    /// missing, corrupt, stale, or colliding entry simulates (recording
    /// a warning when the entry existed but could not be trusted) and
    /// persists the fresh measurement on success.
    pub fn execute_stored(&mut self, spec: &RunSpec, store: Option<&ResultStore>) -> StoredOutcome {
        let mut warnings = Vec::new();
        if let Some(store) = store {
            match store.lookup(spec) {
                StoreLookup::Hit(m) => return (Ok(m), RunSource::Store, warnings),
                StoreLookup::Miss => {}
                StoreLookup::Rejected(reason) => warnings
                    .push(format!("cache entry rejected, re-executing `{}`: {reason}", spec.label)),
            }
        }
        let result = self.execute(spec);
        let mut recorded = false;
        if let (Some(store), Ok(m)) = (store, &result) {
            match store.insert(spec, m) {
                Ok(written) => recorded = written,
                Err(e) => warnings.push(format!("failed to cache `{}`: {e}", spec.label)),
            }
        }
        (result, RunSource::Simulated { recorded }, warnings)
    }
}

/// The machine configuration a spec actually executes under: identical
/// timing, with the two pure-observability features a
/// [`RunMeasurement`] cannot expose turned off (see the module docs).
fn execution_config(cfg: &MachineConfig) -> MachineConfig {
    let mut cfg = cfg.clone();
    cfg.record_requests = false;
    cfg.record_trace = false;
    cfg
}

/// The unified batch executor: plans in, plan-ordered results out.
///
/// Builder options select the worker-thread count ([`Executor::jobs`]),
/// structural run deduplication ([`Executor::dedup`]), machine reuse
/// ([`Executor::arena`]) and a persistent result store
/// ([`Executor::store`]). Whatever the options, the returned results
/// are **indexed by plan position** and byte-identical: scheduling,
/// caching and reuse can change how fast the answer arrives, never what
/// it is.
#[derive(Clone)]
pub struct Executor {
    jobs: usize,
    dedup: bool,
    arena: bool,
    store: Option<Arc<ResultStore>>,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// A serial executor: one job, no deduplication, arena reuse on, no
    /// persistent store.
    pub fn new() -> Self {
        Executor { jobs: 1, dedup: false, arena: true, store: None }
    }

    /// Sets the worker-thread count (1 = serial; clamped to the plan
    /// size at execution).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Enables structural deduplication: each distinct (configuration,
    /// workload) pair executes once, its result scattered back to every
    /// plan position that asked for it. Labels are ignored, exactly as
    /// in a [`Campaign`](crate::campaign::Campaign).
    #[must_use]
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Enables (default) or disables machine reuse. With reuse off,
    /// every run builds a fresh [`Machine`]; output is byte-identical
    /// either way — `campaign_throughput` asserts it, and the arena
    /// property test pins the underlying reset equivalence.
    #[must_use]
    pub fn arena(mut self, arena: bool) -> Self {
        self.arena = arena;
        self
    }

    /// Attaches a persistent [`ResultStore`]: warm entries skip
    /// simulation entirely, fresh results are recorded for the next
    /// batch. Output is byte-identical with or without a store.
    #[must_use]
    pub fn store(mut self, store: Arc<ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Executes one spec and returns its measurement, consulting the
    /// configured store if any.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] as [`MachineArena::execute`] does.
    pub fn run(&self, spec: &RunSpec) -> Result<RunMeasurement, RunError> {
        self.run_in(&mut MachineArena::new(), spec, self.store.as_deref()).0
    }

    /// Executes one spec in a caller-owned arena against a per-call
    /// store — the entry point for external schedulers that keep their
    /// own long-lived arenas (the `rrb-serve` worker pool keeps one per
    /// worker thread across jobs). Honours [`Executor::arena`]: with
    /// reuse disabled the arena is cleared first, so the run builds
    /// fresh.
    pub fn run_in(
        &self,
        arena: &mut MachineArena,
        spec: &RunSpec,
        store: Option<&ResultStore>,
    ) -> StoredOutcome {
        if !self.arena {
            arena.clear();
        }
        arena.execute_stored(spec, store)
    }

    /// Executes a plan under this executor's options and the configured
    /// store. Results come back **indexed by plan position** with the
    /// plan-ordered [`StoreUsage`] aggregate.
    pub fn execute(
        &self,
        specs: &[RunSpec],
    ) -> (Vec<Result<RunMeasurement, RunError>>, StoreUsage) {
        self.execute_with(specs, self.store.as_deref())
    }

    /// [`Executor::execute`] with the store supplied per call instead of
    /// owned — for callers holding only a reference (the deprecated
    /// free functions route through this).
    pub fn execute_with(
        &self,
        specs: &[RunSpec],
        store: Option<&ResultStore>,
    ) -> (Vec<Result<RunMeasurement, RunError>>, StoreUsage) {
        if !self.dedup {
            return self.execute_unique(specs, store);
        }
        let mut unique: Vec<RunSpec> = Vec::new();
        let mut seen = DedupTable::default();
        let indices: Vec<usize> = specs.iter().map(|spec| seen.intern(spec, &mut unique)).collect();
        let (results, usage) = self.execute_unique(&unique, store);
        let scattered = indices
            .into_iter()
            .map(|idx| {
                results.get(idx).cloned().unwrap_or_else(|| {
                    Err(RunError::Analysis(String::from("deduplicated result missing")))
                })
            })
            .collect();
        (scattered, usage)
    }

    /// The execution core: spreads `specs` over the worker threads, one
    /// arena per worker, and aggregates store usage in plan order
    /// (independent of worker scheduling).
    fn execute_unique(
        &self,
        specs: &[RunSpec],
        store: Option<&ResultStore>,
    ) -> (Vec<Result<RunMeasurement, RunError>>, StoreUsage) {
        let jobs = self.jobs.min(specs.len().max(1));
        let outcomes: Vec<StoredOutcome> = if jobs == 1 {
            let mut arena = MachineArena::new();
            specs.iter().map(|spec| self.run_in(&mut arena, spec, store)).collect()
        } else {
            let slots: Vec<Mutex<Option<StoredOutcome>>> =
                specs.iter().map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    scope.spawn(|| {
                        let mut arena = MachineArena::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(spec) = specs.get(i) else { break };
                            let outcome = self.run_in(&mut arena, spec, store);
                            *slots[i].lock().unwrap_or_else(PoisonError::into_inner) =
                                Some(outcome);
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    // A panicking worker propagates out of the scope
                    // above, so every slot is filled here; the fallback
                    // keeps this path panic-free regardless.
                    slot.into_inner().unwrap_or_else(PoisonError::into_inner).unwrap_or_else(|| {
                        (
                            Err(RunError::Analysis(String::from(
                                "worker delivered no result for this run",
                            ))),
                            RunSource::Simulated { recorded: false },
                            Vec::new(),
                        )
                    })
                })
                .collect()
        };
        let mut usage = StoreUsage::default();
        let results = outcomes
            .into_iter()
            .map(|(result, source, warnings)| {
                match source {
                    RunSource::Store => usage.hits += 1,
                    RunSource::Simulated { recorded: true } => usage.writes += 1,
                    RunSource::Simulated { recorded: false } => {}
                }
                usage.warnings.extend(warnings);
                result
            })
            .collect();
        (results, usage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_kernels::{rsk, rsk_nop, AccessKind};
    use rrb_sim::{ArbiterKind, SimError};

    fn toy() -> MachineConfig {
        MachineConfig::toy(4, 2)
    }

    fn plan(n: usize) -> Vec<RunSpec> {
        let cfg = toy();
        (0..n)
            .map(|k| {
                RunSpec::contended_rsk(
                    format!("k={k}"),
                    cfg.clone(),
                    rsk_nop(AccessKind::Load, k, &cfg, CoreId::new(0), 40),
                    AccessKind::Load,
                )
            })
            .collect()
    }

    #[test]
    fn warm_arena_matches_cold_runs() {
        let specs = plan(5);
        let mut arena = MachineArena::new();
        for spec in &specs {
            let warm = arena.execute(spec).expect("warm run");
            let cold = MachineArena::new().execute(spec).expect("cold run");
            assert_eq!(warm, cold, "arena reuse must not change `{}`", spec.label);
        }
        assert!(arena.is_warm());
    }

    #[test]
    fn arena_survives_a_failed_run() {
        let mut arena = MachineArena::new();
        let good = &plan(1)[0];
        let warm = arena.execute(good).expect("first run");
        let mut bad_cfg = toy();
        bad_cfg.topology.bus.arbiter = ArbiterKind::Tdma { slot_cycles: 1 };
        let bad = RunSpec::isolated("bad", bad_cfg, good.scua.clone());
        assert!(matches!(arena.execute(&bad), Err(RunError::Sim(SimError::Config(_)))));
        assert!(arena.is_warm(), "an invalid spec must not cost the warm machine");
        assert_eq!(arena.execute(good).expect("after failure"), warm);
    }

    #[test]
    fn arena_off_is_byte_identical_to_arena_on() {
        let specs = plan(6);
        let on = Executor::new().execute(&specs).0;
        let off = Executor::new().arena(false).execute(&specs).0;
        assert_eq!(on, off);
    }

    #[test]
    fn parallel_matches_serial_with_arenas() {
        let specs = plan(6);
        let serial = Executor::new().execute(&specs).0;
        let parallel = Executor::new().jobs(4).execute(&specs).0;
        assert_eq!(serial, parallel);
    }

    #[test]
    fn dedup_scatters_shared_results() {
        let cfg = toy();
        let scua = rsk_nop(AccessKind::Load, 1, &cfg, CoreId::new(0), 40);
        let a = RunSpec::isolated("a", cfg.clone(), scua.clone());
        let b = RunSpec::isolated("b", cfg, scua);
        let specs = vec![a.clone(), b, a.clone(), a];
        let deduped = Executor::new().dedup(true).execute(&specs).0;
        let plain = Executor::new().execute(&specs).0;
        assert_eq!(deduped, plain);
        assert_eq!(deduped.len(), 4);
    }

    #[test]
    fn arena_resizes_across_core_counts_and_topologies() {
        let mut arena = MachineArena::new();
        for cfg in [
            MachineConfig::toy(2, 2),
            MachineConfig::ngmp_two_level(),
            MachineConfig::toy(4, 3),
            MachineConfig::ngmp_ref(),
        ] {
            let scua = rsk_nop(AccessKind::Load, 1, &cfg, CoreId::new(0), 30);
            let spec = RunSpec::contended_rsk("r", cfg, scua, AccessKind::Load);
            let warm = arena.execute(&spec).expect("warm");
            let cold = MachineArena::new().execute(&spec).expect("cold");
            assert_eq!(warm, cold);
        }
    }

    #[test]
    fn endless_scua_is_reported_and_leaves_arena_usable() {
        let cfg = toy();
        let mut arena = MachineArena::new();
        let endless =
            RunSpec::isolated("endless", cfg.clone(), rsk(AccessKind::Load, &cfg, CoreId::new(0)));
        assert!(matches!(arena.execute(&endless), Err(RunError::NonTerminatingScua)));
        let good = &plan(1)[0];
        assert_eq!(
            arena.execute(good).expect("run"),
            MachineArena::new().execute(good).expect("run")
        );
    }
}
