//! Cross-validation of the cycle-accurate machine against the analytic
//! synchrony model (Eq. 2) — the reproduction's equivalent of the paper's
//! simulator-vs-board validation campaign (§5.1 reports < 3 % deviation
//! against the N2X board; here the reference is the closed-form model,
//! and the agreement is exact by construction of the timing semantics).

use rrb_analysis::GammaModel;
use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, Machine, MachineConfig, SimError};
use std::fmt;

/// One δ point of a validation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaComparison {
    /// Nop count used.
    pub k: u64,
    /// The injection time this k produces (`dl1.latency + k·δ_nop`).
    pub delta: u64,
    /// Eq. 2's prediction.
    pub predicted: u64,
    /// The machine's dominant per-request γ.
    pub measured: u64,
    /// Fraction of requests at the dominant γ (synchrony strength).
    pub mode_fraction: f64,
}

impl GammaComparison {
    /// Whether model and machine agree at this point.
    pub fn agrees(&self) -> bool {
        self.predicted == self.measured
    }
}

/// Result of a full validation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Per-k comparisons.
    pub points: Vec<GammaComparison>,
}

impl ValidationReport {
    /// Whether every point agreed.
    pub fn all_agree(&self) -> bool {
        self.points.iter().all(GammaComparison::agrees)
    }

    /// The points where model and machine diverge.
    pub fn disagreements(&self) -> Vec<GammaComparison> {
        self.points.iter().copied().filter(|p| !p.agrees()).collect()
    }

    /// The weakest synchrony observed (smallest mode fraction).
    pub fn min_mode_fraction(&self) -> f64 {
        self.points.iter().map(|p| p.mode_fraction).fold(1.0, f64::min)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  k  delta  predicted  measured  mode%  agree")?;
        for p in &self.points {
            writeln!(
                f,
                "{:>3}  {:>5}  {:>9}  {:>8}  {:>4.0}%  {}",
                p.k,
                p.delta,
                p.predicted,
                p.measured,
                p.mode_fraction * 100.0,
                if p.agrees() { "yes" } else { "NO" }
            )?;
        }
        Ok(())
    }
}

/// Sweeps `k = 0..=max_k` with `rsk-nop(load, k)` against saturating load
/// rsk on a machine built from `cfg`, comparing the machine's dominant γ
/// against Eq. 2 at every point.
///
/// Uses the configuration's ground-truth `ubd` for the model — this is a
/// *white-box* validation of the simulator, not a blind derivation.
///
/// # Errors
///
/// Returns [`SimError`] if any run fails.
pub fn validate_gamma_model(
    cfg: &MachineConfig,
    max_k: u64,
    iterations: u64,
) -> Result<ValidationReport, SimError> {
    let model = GammaModel::new(cfg.ubd());
    let mut points = Vec::with_capacity(max_k as usize + 1);
    for k in 0..=max_k {
        let mut machine = Machine::new(cfg.clone())?;
        machine.load_program(
            CoreId::new(0),
            rsk_nop(AccessKind::Load, k as usize, cfg, CoreId::new(0), iterations),
        );
        for i in 1..cfg.num_cores {
            machine.load_program(CoreId::new(i), rsk(AccessKind::Load, cfg, CoreId::new(i)));
        }
        machine.run()?;
        let pmc = machine.pmc().core(CoreId::new(0));
        let (measured, count) = pmc.mode_gamma().expect("scua made requests");
        let delta = cfg.dl1.latency + k * cfg.nop_latency;
        points.push(GammaComparison {
            k,
            delta,
            predicted: model.gamma(delta),
            measured,
            mode_fraction: count as f64 / pmc.bus_requests() as f64,
        });
    }
    Ok(ValidationReport { points })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_machine_matches_model_over_two_periods() {
        let cfg = MachineConfig::toy(4, 2);
        let r = validate_gamma_model(&cfg, 13, 250).expect("sweep");
        assert!(r.all_agree(), "disagreements: {:?}", r.disagreements());
        assert!(r.min_mode_fraction() > 0.9, "synchrony must dominate");
    }

    #[test]
    fn ngmp_ref_matches_model_at_salient_points() {
        // Full 0..=80 sweeps live in the bench target; unit tests check
        // the tooth's edges.
        let cfg = MachineConfig::ngmp_ref();
        let r = validate_gamma_model(&cfg, 2, 150).expect("sweep");
        assert!(r.all_agree(), "disagreements: {:?}", r.disagreements());
        assert_eq!(r.points[0].predicted, 26);
    }

    #[test]
    fn report_renders_table() {
        let cfg = MachineConfig::toy(4, 2);
        let r = validate_gamma_model(&cfg, 3, 100).expect("sweep");
        let text = r.to_string();
        assert!(text.contains("predicted"));
        assert!(text.contains("yes"));
    }

    #[test]
    fn variant_delta_includes_dl1_latency() {
        let cfg = MachineConfig::ngmp_var();
        let r = validate_gamma_model(&cfg, 1, 100).expect("sweep");
        assert_eq!(r.points[0].delta, 4);
        assert_eq!(r.points[1].delta, 5);
        assert!(r.all_agree());
    }
}
