//! Cross-validation of the cycle-accurate machine against the analytic
//! synchrony model (Eq. 2) — the reproduction's equivalent of the paper's
//! simulator-vs-board validation campaign (§5.1 reports < 3 % deviation
//! against the N2X board; here the reference is the closed-form model,
//! and the agreement is exact by construction of the timing semantics).
//!
//! The sweep is packaged as [`GammaValidationScenario`], a
//! [`Scenario`] of one contended run per `k`,
//! so a [`Campaign`](crate::campaign::Campaign) can validate many
//! configurations in parallel; [`validate_gamma_model`] is the serial
//! wrapper.

use crate::campaign::{RunError, RunSpec};
use crate::executor::Executor;
use crate::scenario::{MetricValue, RunOutcome, Scenario, ScenarioError, ScenarioReport};
use rrb_analysis::GammaModel;
use rrb_kernels::{AccessKind, KernelSpec};
use rrb_sim::{MachineConfig, SimError};
use std::fmt;

/// One δ point of a validation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaComparison {
    /// Nop count used.
    pub k: u64,
    /// The injection time this k produces (`dl1.latency + k·δ_nop`).
    pub delta: u64,
    /// Eq. 2's prediction.
    pub predicted: u64,
    /// The machine's dominant per-request γ.
    pub measured: u64,
    /// Fraction of requests at the dominant γ (synchrony strength).
    pub mode_fraction: f64,
}

impl GammaComparison {
    /// Whether model and machine agree at this point.
    pub fn agrees(&self) -> bool {
        self.predicted == self.measured
    }
}

/// Result of a full validation sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Per-k comparisons.
    pub points: Vec<GammaComparison>,
}

impl ValidationReport {
    /// Whether every point agreed.
    pub fn all_agree(&self) -> bool {
        self.points.iter().all(GammaComparison::agrees)
    }

    /// The points where model and machine diverge.
    pub fn disagreements(&self) -> Vec<GammaComparison> {
        self.points.iter().copied().filter(|p| !p.agrees()).collect()
    }

    /// The weakest synchrony observed (smallest mode fraction).
    pub fn min_mode_fraction(&self) -> f64 {
        self.points.iter().map(|p| p.mode_fraction).fold(1.0, f64::min)
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "  k  delta  predicted  measured  mode%  agree")?;
        for p in &self.points {
            writeln!(
                f,
                "{:>3}  {:>5}  {:>9}  {:>8}  {:>4.0}%  {}",
                p.k,
                p.delta,
                p.predicted,
                p.measured,
                p.mode_fraction * 100.0,
                if p.agrees() { "yes" } else { "NO" }
            )?;
        }
        Ok(())
    }
}

/// The Eq. 2 white-box validation as a campaign-ready scenario: one
/// contended `rsk-nop(load, k)` run per `k`, each compared against the
/// model built from the configuration's ground-truth `ubd`.
#[derive(Debug, Clone, PartialEq)]
pub struct GammaValidationScenario {
    /// Scenario name (campaign record key).
    pub name: String,
    /// The platform under test.
    pub machine: MachineConfig,
    /// Largest nop count swept.
    pub max_k: u64,
    /// Iterations of the scua body per run.
    pub iterations: u64,
}

impl GammaValidationScenario {
    /// A scenario with the default name `"validate-gamma"`.
    pub fn new(machine: MachineConfig, max_k: u64, iterations: u64) -> Self {
        GammaValidationScenario { name: String::from("validate-gamma"), machine, max_k, iterations }
    }

    /// Renames the scenario (builder style).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Reduces the outcomes of [`Scenario::plan`] to a validation report.
    ///
    /// # Errors
    ///
    /// Returns the first failed run's [`RunError`], or
    /// [`RunError::NoBusRequests`] if a scua made no requests.
    pub fn report(&self, outcomes: &[RunOutcome]) -> Result<ValidationReport, RunError> {
        // Eq. 2 models the *bus*: on two-level topologies the controller
        // queue has its own term, so the model is built from the bus's
        // share of the bound, not the topology total.
        let model = GammaModel::new(self.machine.bus_ubd());
        let mut points = Vec::with_capacity(outcomes.len());
        for (k, outcome) in outcomes.iter().enumerate() {
            let k = k as u64;
            let m = outcome.measurement()?;
            let measured = m.mode_gamma().ok_or(RunError::NoBusRequests)?;
            let delta = self.machine.dl1.latency + k * self.machine.nop_latency;
            points.push(GammaComparison {
                k,
                delta,
                predicted: model.gamma(delta),
                measured,
                mode_fraction: m.mode_fraction(),
            });
        }
        Ok(ValidationReport { points })
    }
}

impl Scenario for GammaValidationScenario {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn plan(&self) -> Result<Vec<RunSpec>, ScenarioError> {
        self.machine.validate().map_err(SimError::from)?;
        let contenders = vec![
            KernelSpec::Rsk { access: AccessKind::Load };
            self.machine.num_cores.saturating_sub(1)
        ];
        let mut specs = Vec::with_capacity(self.max_k as usize + 1);
        for k in 0..=self.max_k {
            let scua = KernelSpec::RskNop {
                access: AccessKind::Load,
                nops: k,
                iterations: self.iterations,
            };
            specs.push(RunSpec::from_kernels(
                format!("k={k}/contended"),
                self.machine.clone(),
                &scua,
                &contenders,
            ));
        }
        Ok(specs)
    }

    fn analyze(&self, outcomes: &[RunOutcome]) -> ScenarioReport {
        match self.report(outcomes) {
            Ok(r) => {
                let disagreements = r.disagreements().len() as u64;
                ScenarioReport::success(
                    self.name(),
                    if r.all_agree() {
                        format!("machine matches Eq. 2 at all {} points", r.points.len())
                    } else {
                        format!("{disagreements} of {} points disagree with Eq. 2", r.points.len())
                    },
                )
                .with("points", MetricValue::U64(r.points.len() as u64))
                .with("disagreements", MetricValue::U64(disagreements))
                .with("min_mode_fraction", MetricValue::F64(r.min_mode_fraction()))
                .with(
                    "measured",
                    MetricValue::Series(r.points.iter().map(|p| p.measured).collect()),
                )
            }
            Err(e) => ScenarioReport::failure(self.name(), e),
        }
    }
}

/// Sweeps `k = 0..=max_k` with `rsk-nop(load, k)` against saturating load
/// rsk on a machine built from `cfg`, comparing the machine's dominant γ
/// against Eq. 2 at every point.
///
/// Uses the configuration's ground-truth `ubd` for the model — this is a
/// *white-box* validation of the simulator, not a blind derivation. The
/// serial wrapper over [`GammaValidationScenario`].
///
/// # Errors
///
/// Returns [`RunError`] if any run fails.
pub fn validate_gamma_model(
    cfg: &MachineConfig,
    max_k: u64,
    iterations: u64,
) -> Result<ValidationReport, RunError> {
    let scenario = GammaValidationScenario::new(cfg.clone(), max_k, iterations);
    let specs = scenario.plan().map_err(|e| match e {
        ScenarioError::Config(e) => RunError::Sim(e),
        ScenarioError::Analysis(msg) => RunError::Analysis(msg),
    })?;
    let results = Executor::new().execute(&specs).0;
    let outcomes: Vec<RunOutcome> = specs
        .into_iter()
        .zip(results)
        .map(|(spec, result)| RunOutcome { label: spec.label, result })
        .collect();
    scenario.report(&outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_machine_matches_model_over_two_periods() {
        let cfg = MachineConfig::toy(4, 2);
        let r = validate_gamma_model(&cfg, 13, 250).expect("sweep");
        assert!(r.all_agree(), "disagreements: {:?}", r.disagreements());
        assert!(r.min_mode_fraction() > 0.9, "synchrony must dominate");
    }

    #[test]
    fn ngmp_ref_matches_model_at_salient_points() {
        // Full 0..=80 sweeps live in the bench target; unit tests check
        // the tooth's edges.
        let cfg = MachineConfig::ngmp_ref();
        let r = validate_gamma_model(&cfg, 2, 150).expect("sweep");
        assert!(r.all_agree(), "disagreements: {:?}", r.disagreements());
        assert_eq!(r.points[0].predicted, 26);
    }

    #[test]
    fn report_renders_table() {
        let cfg = MachineConfig::toy(4, 2);
        let r = validate_gamma_model(&cfg, 3, 100).expect("sweep");
        let text = r.to_string();
        assert!(text.contains("predicted"));
        assert!(text.contains("yes"));
    }

    #[test]
    fn variant_delta_includes_dl1_latency() {
        let cfg = MachineConfig::ngmp_var();
        let r = validate_gamma_model(&cfg, 1, 100).expect("sweep");
        assert_eq!(r.points[0].delta, 4);
        assert_eq!(r.points[1].delta, 5);
        assert!(r.all_agree());
    }

    #[test]
    fn scenario_analyze_reports_agreement() {
        let cfg = MachineConfig::toy(4, 2);
        let scenario = GammaValidationScenario::new(cfg, 6, 120).named("toy-validate");
        let specs = scenario.plan().expect("plan");
        let results = Executor::new().jobs(2).execute(&specs).0;
        let outcomes: Vec<RunOutcome> = specs
            .into_iter()
            .zip(results)
            .map(|(s, result)| RunOutcome { label: s.label, result })
            .collect();
        let report = scenario.analyze(&outcomes);
        assert!(report.is_ok());
        assert_eq!(report.metric_u64("disagreements"), Some(0));
        assert_eq!(report.metric_u64("points"), Some(7));
    }
}
