//! Plain-text reporting for derivations and comparisons.
//!
//! The figure regenerators in `rrb-bench` print through these helpers so
//! every experiment's output has the same shape: a header, the series or
//! histogram, and the paper-vs-measured verdict line.

use crate::methodology::UbdDerivation;
use crate::naive::NaiveEstimate;
use rrb_analysis::Histogram;
use std::fmt::Write as _;

/// Renders a derivation as a human-readable audit report, including the
/// per-resource breakdown of the bound (which sums to the reported
/// total by construction).
pub fn render_derivation(d: &UbdDerivation) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "ubd_m               : {} cycles", d.ubd_m);
    if d.resource_contributions.len() > 1 {
        let split = d
            .resource_contributions
            .iter()
            .map(|c| format!("{} {}", c.resource, c.ubd_m))
            .collect::<Vec<_>>()
            .join(" + ");
        let _ = writeln!(out, "per-resource ubd_m  : {split} = {} cycles", d.total_ubd_m());
    }
    let _ = writeln!(out, "delta_nop           : {} cycle(s)", d.delta_nop);
    let _ = writeln!(
        out,
        "saw-tooth period    : {} k-steps ({} match, confidence {:.2})",
        d.k_period, d.period_estimate.method, d.period_estimate.confidence
    );
    let _ = writeln!(out, "candidates          : {:?}", d.candidates);
    let _ = writeln!(out, "max observed gamma  : {}", d.max_observed_gamma);
    let _ = writeln!(out, "min bus utilisation : {:.3}", d.min_bus_utilization);
    let _ = writeln!(out, "scua bus requests   : {}", d.scua_requests);
    out
}

/// Renders the slowdown series as an indexed table (`k`, `d_bus`), the
/// raw material of Fig. 7.
pub fn render_slowdown_series(slowdowns: &[u64]) -> String {
    let mut out = String::from("  k  d_bus(k)\n");
    for (k, d) in slowdowns.iter().enumerate() {
        let _ = writeln!(out, "{k:>3}  {d}");
    }
    out
}

/// Renders an ASCII saw-tooth plot of the slowdown series (Fig. 7 shape),
/// `height` rows tall.
pub fn render_sawtooth(slowdowns: &[u64], height: usize) -> String {
    let max = slowdowns.iter().max().copied().unwrap_or(0);
    if max == 0 || height == 0 {
        return String::from("(flat)\n");
    }
    let mut rows = vec![String::new(); height];
    for &d in slowdowns {
        let level = ((d as f64 / max as f64) * (height - 1) as f64).round() as usize;
        for (r, row) in rows.iter_mut().enumerate() {
            let y = height - 1 - r;
            row.push(if level >= y && (level == y || y == 0) { '#' } else { ' ' });
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        let _ =
            writeln!(out, "{:>10} |{row}", if r == 0 { format!("{max}") } else { String::new() });
    }
    let _ = writeln!(out, "{:>10} +{}", "k ->", "-".repeat(slowdowns.len()));
    out
}

/// Renders a comparison of the naive estimate against the methodology's
/// derivation and the configuration truth. `true_ubd` must be the
/// *bus* term of the bound (`MachineConfig::bus_ubd`): both estimators
/// measure bus contention, so comparing against a two-level topology
/// total would report a spurious mismatch.
pub fn render_comparison(
    naive: &NaiveEstimate,
    derivation: &UbdDerivation,
    true_ubd: u64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "true ubd (Eq. 1, hidden from the analyses) : {true_ubd}");
    let _ = writeln!(
        out,
        "naive rsk-vs-rsk ubd_m                     : {} (det/nr {}, max gamma {})",
        naive.ubd_m(),
        naive.ubd_m_det_over_nr,
        naive.ubd_m_max_gamma
    );
    let _ = writeln!(out, "rsk-nop methodology ubd_m                  : {}", derivation.ubd_m);
    let verdict = if derivation.ubd_m == true_ubd && naive.ubd_m() < true_ubd {
        "methodology exact, naive estimate unsound — as the paper reports"
    } else if derivation.ubd_m == true_ubd {
        "methodology exact"
    } else {
        "MISMATCH: methodology failed to recover ubd"
    };
    let _ = writeln!(out, "verdict                                    : {verdict}");
    out
}

/// Renders a histogram with a title (Fig. 6 helper).
pub fn render_histogram(title: &str, h: &Histogram) -> String {
    format!("{title}\n{}", h.render(50))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrb_analysis::sawtooth::{PeriodEstimate, PeriodMethod};

    use crate::methodology::ResourceContribution;

    fn derivation() -> UbdDerivation {
        UbdDerivation {
            ubd_m: 27,
            resource_contributions: vec![
                ResourceContribution { resource: "bus".into(), ubd_m: 27 },
                ResourceContribution { resource: "mc".into(), ubd_m: 4 },
            ],
            delta_nop: 1,
            k_period: 27,
            period_estimate: PeriodEstimate {
                period: 27,
                method: PeriodMethod::Exact,
                confidence: 1.0,
            },
            candidates: vec![27],
            slowdowns: vec![26, 25, 24],
            max_observed_gamma: 26,
            min_bus_utilization: 0.99,
            scua_requests: 2500,
        }
    }

    #[test]
    fn derivation_report_mentions_key_numbers() {
        let r = render_derivation(&derivation());
        assert!(r.contains("ubd_m               : 27"));
        assert!(r.contains("per-resource ubd_m  : bus 27 + mc 4 = 31 cycles"));
        assert!(r.contains("exact match"));
        assert!(r.contains("0.990"));
    }

    #[test]
    fn single_resource_derivation_omits_breakdown_line() {
        let mut d = derivation();
        d.resource_contributions.truncate(1);
        let r = render_derivation(&d);
        assert!(!r.contains("per-resource"));
    }

    #[test]
    fn series_table_has_one_row_per_k() {
        let r = render_slowdown_series(&[5, 4, 3]);
        assert_eq!(r.lines().count(), 4);
        assert!(r.contains("  2  3"));
    }

    #[test]
    fn sawtooth_plot_is_non_empty_and_flat_case_handled() {
        let s: Vec<u64> = (0..30).map(|k| 26 - (k % 27).min(26)).collect();
        let plot = render_sawtooth(&s, 8);
        assert!(plot.contains('#'));
        assert_eq!(render_sawtooth(&[0, 0], 8), "(flat)\n");
    }

    #[test]
    fn histogram_report_includes_title() {
        let h: Histogram = [26u64, 26, 23].into_iter().collect();
        let r = render_histogram("Fig 6(b)", &h);
        assert!(r.starts_with("Fig 6(b)\n"));
        assert!(r.contains("26"));
    }
}
