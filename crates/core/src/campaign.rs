//! The [`Campaign`] batch runner: grid expansion, run deduplication, and
//! parallel execution of [`Scenario`] plans.
//!
//! The paper's methodology is inherently a sweep — the same
//! scua/contender workload at many nop paddings, arbiters, core counts
//! and access kinds — and runs are independent, so a measurement
//! campaign is embarrassingly parallel. This module turns a set of
//! scenarios into one deduplicated run plan, executes it through the
//! [`Executor`] (each worker thread reusing one warm machine), and
//! hands each scenario its outcomes *in plan order*, which makes
//! campaign output **bit-identical between serial and parallel
//! execution**:
//!
//! ```
//! use rrb::campaign::{Campaign, CampaignGrid, GridScenario};
//! use rrb_sim::MachineConfig;
//!
//! let grid = CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2))
//!     .iterations(vec![60, 80]);
//! let serial = Campaign::builder().grid(&grid).jobs(1).build().run();
//! let parallel = Campaign::builder().grid(&grid).jobs(4).build().run();
//! assert_eq!(serial.to_json(), parallel.to_json());
//! assert_eq!(serial.reports[0].metric_u64("ubd_m"), Some(6));
//! ```

use crate::executor::{Executor, MachineArena};
use crate::json::{csv_field, Fnv64Hasher, Json};
use crate::methodology::{MethodologyConfig, UbdScenario};
use crate::naive::NaiveScenario;
use crate::scenario::{RunOutcome, Scenario, ScenarioError, ScenarioReport, SweepScenario};
use crate::store::ResultStore;
use crate::validation::GammaValidationScenario;
use rrb_analysis::Histogram;
use rrb_kernels::{rsk_nop, AccessKind, KernelSpec};
use rrb_sim::{ArbiterKind, CoreId, MachineConfig, Program, SimError};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Run specification and measurement
// ---------------------------------------------------------------------

/// One unit of machine work: a full workload executed on a fresh
/// machine. The scua runs on core 0 and is observed; `contenders[i]`
/// runs on core `i + 1`; cores beyond the contender list idle.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Plan label, unique within a scenario (e.g. `"k=3/contended"`).
    pub label: String,
    /// Machine configuration for this run.
    pub cfg: MachineConfig,
    /// The observed program, on core 0.
    pub scua: Program,
    /// Programs for cores `1..=contenders.len()`.
    pub contenders: Vec<Program>,
}

impl RunSpec {
    /// A run of `scua` alone on core 0.
    pub fn isolated(label: impl Into<String>, cfg: MachineConfig, scua: Program) -> Self {
        RunSpec { label: label.into(), cfg, scua, contenders: Vec::new() }
    }

    /// A run of `scua` against explicit contender programs.
    pub fn contended(
        label: impl Into<String>,
        cfg: MachineConfig,
        scua: Program,
        contenders: Vec<Program>,
    ) -> Self {
        RunSpec { label: label.into(), cfg, scua, contenders }
    }

    /// A run of `scua` against `Nc - 1` saturating rsk contenders of the
    /// given access kind — the measurement setup of §3–§5.
    pub fn contended_rsk(
        label: impl Into<String>,
        cfg: MachineConfig,
        scua: Program,
        access: AccessKind,
    ) -> Self {
        let spec = KernelSpec::Rsk { access };
        let contenders = (1..cfg.num_cores).map(|i| spec.build(&cfg, CoreId::new(i))).collect();
        RunSpec { label: label.into(), cfg, scua, contenders }
    }

    /// A run built entirely from declarative [`KernelSpec`]s: the scua
    /// spec materialises on core 0, `contenders[i]` on core `i + 1`.
    /// This is how experiment files enter the runner — the spec is data,
    /// the programs are derived here.
    pub fn from_kernels(
        label: impl Into<String>,
        cfg: MachineConfig,
        scua: &KernelSpec,
        contenders: &[KernelSpec],
    ) -> Self {
        let scua_program = scua.build(&cfg, CoreId::new(0));
        let contender_programs =
            contenders.iter().enumerate().map(|(i, k)| k.build(&cfg, CoreId::new(i + 1))).collect();
        RunSpec { label: label.into(), cfg, scua: scua_program, contenders: contender_programs }
    }

    /// A run that replays a model-checker [`Witness`] on the full
    /// simulator: core 0 runs a finite kernel that posts at the witness
    /// resource with `nops` padding per iteration, and every contender
    /// core the witness marks as requesting runs an endless kernel that
    /// saturates the same resource (non-requesting cores in between get a
    /// tiny finite nop program so the slot indices line up). The nop
    /// padding plays the §4 saw-tooth role: sweeping it over one rotation
    /// period drives the observed stream through every arrival alignment
    /// class the witness's abstract gap denotes, so the worst measured γ
    /// over the sweep is the replayed delay.
    ///
    /// [`Witness`]: rrb_static::Witness
    pub fn from_witness(
        label: impl Into<String>,
        cfg: MachineConfig,
        witness: &rrb_static::Witness,
        nops: u64,
        iterations: u64,
    ) -> Self {
        use rrb_kernels::{nop_kernel, rsk, rsk_l2_miss, rsk_l2_miss_nop};
        use rrb_sim::ResourceKind;
        let requesting = witness.requesting_contenders();
        let last = requesting.iter().copied().max().unwrap_or(0);
        let mut contenders = Vec::new();
        for core in 1..=last.min(cfg.num_cores.saturating_sub(1)) {
            let program = if requesting.contains(&core) {
                match witness.resource {
                    ResourceKind::Bus => rsk(AccessKind::Load, &cfg, CoreId::new(core)),
                    ResourceKind::MemoryController => rsk_l2_miss(&cfg, CoreId::new(core)),
                }
            } else {
                nop_kernel(&cfg, 1)
            };
            contenders.push(program);
        }
        let scua = match witness.resource {
            ResourceKind::Bus => {
                rsk_nop(AccessKind::Load, nops as usize, &cfg, CoreId::new(0), iterations)
            }
            ResourceKind::MemoryController => {
                rsk_l2_miss_nop(&cfg, CoreId::new(0), nops, iterations)
            }
        };
        RunSpec { label: label.into(), cfg, scua, contenders }
    }

    /// The deduplication key: a 64-bit FNV-1a digest of everything that
    /// determines the (fully deterministic) measurement — configuration
    /// and workload, but **not** the label. Two runs with equal hashes
    /// *and* equal measurement fields are executed once and share the
    /// result (the dedup tables confirm equality on every hash hit, so a
    /// collision costs one extra comparison, never a wrong measurement);
    /// the digest has no random state, so it is stable across processes
    /// on one platform.
    pub fn spec_hash(&self) -> u64 {
        let mut h = Fnv64Hasher::new();
        self.cfg.hash(&mut h);
        self.scua.hash(&mut h);
        self.contenders.hash(&mut h);
        h.finish()
    }

    /// Whether two specs describe the same measurement (labels ignored) —
    /// the equality that [`RunSpec::spec_hash`] approximates.
    fn same_measurement(&self, other: &RunSpec) -> bool {
        self.cfg == other.cfg && self.scua == other.scua && self.contenders == other.contenders
    }
}

/// The deduplication table behind campaign planning and
/// [`Executor::dedup`](crate::executor::Executor::dedup): specs keyed by
/// [`RunSpec::spec_hash`], with a structural [`RunSpec::same_measurement`]
/// check on every hash hit so an FNV collision can only cost an extra
/// comparison, never alias two different runs onto one measurement.
#[derive(Default)]
pub(crate) struct DedupTable {
    by_hash: HashMap<u64, Vec<usize>>,
}

impl DedupTable {
    /// Returns the index of `spec` in `unique`, appending it if no
    /// equal-measurement spec is present yet.
    pub(crate) fn intern(&mut self, spec: &RunSpec, unique: &mut Vec<RunSpec>) -> usize {
        let candidates = self.by_hash.entry(spec.spec_hash()).or_default();
        if let Some(&idx) = candidates.iter().find(|&&idx| unique[idx].same_measurement(spec)) {
            return idx;
        }
        let idx = unique.len();
        unique.push(spec.clone());
        candidates.push(idx);
        idx
    }
}

/// Everything measured about the scua in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeasurement {
    /// Scua execution time in cycles.
    pub execution_time: u64,
    /// Scua bus requests.
    pub bus_requests: u64,
    /// Scua instructions retired.
    pub instructions: u64,
    /// Histogram of per-request **bus** contention delays (γ) of the scua.
    pub gamma_histogram: Histogram,
    /// Histogram of per-request contention delays of the scua at the
    /// memory-controller queue (empty on single-bus topologies).
    pub mc_gamma_histogram: Histogram,
    /// Histogram of ready-time contender counts of the scua (Fig. 6(a)).
    pub contender_histogram: Histogram,
    /// Overall bus utilisation during the run.
    pub bus_utilization: f64,
    /// Memory-controller-queue utilisation, when the topology chains one.
    pub mc_utilization: Option<f64>,
}

impl RunMeasurement {
    /// Largest observed per-request bus contention delay.
    pub fn max_gamma(&self) -> Option<u64> {
        self.gamma_histogram.max()
    }

    /// Largest observed contention delay at the memory-controller queue.
    pub fn max_gamma_mc(&self) -> Option<u64> {
        self.mc_gamma_histogram.max()
    }

    /// Most frequent per-request contention delay.
    pub fn mode_gamma(&self) -> Option<u64> {
        self.gamma_histogram.mode()
    }

    /// Fraction of requests at the dominant γ (synchrony strength).
    pub fn mode_fraction(&self) -> f64 {
        match self.mode_gamma() {
            Some(mode) => self.gamma_histogram.fraction(mode),
            None => 0.0,
        }
    }
}

/// Why a single run failed. Runs fail *individually*: the campaign
/// records the error and keeps executing the rest of the plan.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The simulator rejected the configuration or run.
    Sim(SimError),
    /// The scua program never terminates, so it has no execution time.
    NonTerminatingScua,
    /// An estimator needed bus requests but the scua made none.
    NoBusRequests,
    /// Scenario-level analysis failed for a reason other than a run.
    Analysis(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation failed: {e}"),
            RunError::NonTerminatingScua => {
                write!(f, "scua program is endless and has no execution time")
            }
            RunError::NoBusRequests => write!(f, "scua made no bus requests"),
            RunError::Analysis(msg) => write!(f, "scenario analysis failed: {msg}"),
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// Executes one spec on a fresh machine.
///
/// # Errors
///
/// Returns [`RunError`] when the configuration is invalid, the workload
/// does not fit the machine, the cycle budget is exhausted, or the scua
/// never terminates.
#[deprecated(
    note = "use `Executor::new().run(spec)` — see the migration table in crates/README.md"
)]
pub fn execute_run(spec: &RunSpec) -> Result<RunMeasurement, RunError> {
    Executor::new().run(spec)
}

/// Where one run's measurement came from, when executing against an
/// optional persistent [`ResultStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSource {
    /// Executed on a fresh machine. `recorded` says whether the result
    /// was written to the store (false with no store, on failed runs,
    /// and for non-finite measurements the JSON round trip cannot keep
    /// bit-exact).
    Simulated {
        /// Whether the measurement was persisted.
        recorded: bool,
    },
    /// Answered by the persistent store — no machine was built.
    Store,
}

/// Persistent-store activity during one plan execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreUsage {
    /// Runs answered from the store without simulating.
    pub hits: usize,
    /// Entries written after simulating.
    pub writes: usize,
    /// Non-fatal store problems, in plan order. Every warning caused a
    /// re-execution or a skipped write — never a wrong or missing
    /// result — so campaign output is identical with or without them.
    pub warnings: Vec<String>,
}

/// [`execute_run`] behind an optional persistent store: a valid,
/// structurally confirmed entry skips simulation entirely; a missing,
/// corrupt, stale, or colliding entry simulates (recording a warning
/// when the entry existed but could not be trusted) and persists the
/// fresh measurement on success.
#[deprecated(
    note = "use `Executor::run_in` with a caller-owned `MachineArena` — see crates/README.md"
)]
pub fn execute_run_stored(
    spec: &RunSpec,
    store: Option<&ResultStore>,
) -> (Result<RunMeasurement, RunError>, RunSource, Vec<String>) {
    Executor::new().run_in(&mut MachineArena::new(), spec, store)
}

/// Executes a plan, spreading runs over `jobs` scoped worker threads.
///
/// Results come back **indexed by plan position**, so the output is
/// independent of scheduling: `execute_plan(specs, 8)` returns exactly
/// what `execute_plan(specs, 1)` returns. Workers pull the next index
/// from a shared atomic counter, each reusing one warm machine.
#[deprecated(note = "use `Executor::new().jobs(jobs).execute(specs)` — see crates/README.md")]
pub fn execute_plan(specs: &[RunSpec], jobs: usize) -> Vec<Result<RunMeasurement, RunError>> {
    Executor::new().jobs(jobs).execute_with(specs, None).0
}

/// [`execute_plan`] against an optional persistent store: the returned
/// [`StoreUsage`] aggregates hits, writes, and warnings **in plan
/// order** (independent of worker scheduling).
#[deprecated(
    note = "use `Executor::new().jobs(jobs).store(store).execute(specs)` — see crates/README.md"
)]
pub fn execute_plan_stored(
    specs: &[RunSpec],
    jobs: usize,
    store: Option<&ResultStore>,
) -> (Vec<Result<RunMeasurement, RunError>>, StoreUsage) {
    Executor::new().jobs(jobs).execute_with(specs, store)
}

/// [`execute_plan`] with identical specs deduplicated first: each
/// distinct (configuration, workload) executes once and its result is
/// scattered back to every plan position that asked for it. Labels are
/// ignored for deduplication, exactly as in a [`Campaign`].
#[deprecated(
    note = "use `Executor::new().jobs(jobs).dedup(true).execute(specs)` — see crates/README.md"
)]
pub fn execute_plan_deduped(
    specs: &[RunSpec],
    jobs: usize,
) -> Vec<Result<RunMeasurement, RunError>> {
    Executor::new().jobs(jobs).dedup(true).execute_with(specs, None).0
}

// ---------------------------------------------------------------------
// Records and results
// ---------------------------------------------------------------------

/// A flat, serialisable record of one executed (or failed) run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Owning scenario name.
    pub scenario: String,
    /// Run label within the scenario (`"<plan>"` for plan failures).
    pub label: String,
    /// The error message for failed runs.
    pub error: Option<String>,
    /// Scua execution time in cycles.
    pub execution_time: Option<u64>,
    /// Scua bus requests.
    pub bus_requests: Option<u64>,
    /// Scua instructions retired.
    pub instructions: Option<u64>,
    /// Overall bus utilisation.
    pub bus_utilization: Option<f64>,
    /// Largest observed bus γ.
    pub max_gamma: Option<u64>,
    /// Dominant bus γ.
    pub mode_gamma: Option<u64>,
    /// Largest observed γ at the memory-controller queue (None when the
    /// topology has no queue or the scua never missed L2).
    pub max_gamma_mc: Option<u64>,
}

impl RunRecord {
    /// A success record for one measured run. Public so external
    /// schedulers (the `rrb-serve` daemon) can emit the exact records a
    /// whole-campaign [`Campaign::run`] would have produced.
    pub fn ok(scenario: &str, label: &str, m: &RunMeasurement) -> Self {
        RunRecord {
            scenario: scenario.to_string(),
            label: label.to_string(),
            error: None,
            execution_time: Some(m.execution_time),
            bus_requests: Some(m.bus_requests),
            instructions: Some(m.instructions),
            bus_utilization: Some(m.bus_utilization),
            max_gamma: m.max_gamma(),
            mode_gamma: m.mode_gamma(),
            max_gamma_mc: m.max_gamma_mc(),
        }
    }

    /// An error record for a run (or plan) that failed.
    pub fn failed(scenario: &str, label: &str, error: impl fmt::Display) -> Self {
        RunRecord {
            scenario: scenario.to_string(),
            label: label.to_string(),
            error: Some(error.to_string()),
            execution_time: None,
            bus_requests: None,
            instructions: None,
            bus_utilization: None,
            max_gamma: None,
            mode_gamma: None,
            max_gamma_mc: None,
        }
    }

    /// Whether the run succeeded.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// The record as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("scenario", Json::str(self.scenario.clone())),
            ("label", Json::str(self.label.clone())),
            ("error", Json::option(self.error.clone(), Json::Str)),
            ("execution_time", Json::option(self.execution_time, Json::U64)),
            ("bus_requests", Json::option(self.bus_requests, Json::U64)),
            ("instructions", Json::option(self.instructions, Json::U64)),
            ("bus_utilization", Json::option(self.bus_utilization, Json::F64)),
            ("max_gamma", Json::option(self.max_gamma, Json::U64)),
            ("mode_gamma", Json::option(self.mode_gamma, Json::U64)),
            ("max_gamma_mc", Json::option(self.max_gamma_mc, Json::U64)),
        ])
    }
}

/// Execution statistics of a campaign. Not part of the serialised
/// output: the JSON/CSV payloads must be identical across `jobs` and
/// caching settings, while these numbers legitimately differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignStats {
    /// Scenarios in the campaign.
    pub scenarios: usize,
    /// Runs across all scenario plans, before deduplication.
    pub planned_runs: usize,
    /// Runs actually **simulated** on a fresh machine — what the
    /// campaign cost. A fully warm persistent store drives this to 0.
    pub executed_runs: usize,
    /// Runs answered from the in-memory deduplication cache (shared
    /// baselines within this campaign).
    pub cache_hits: usize,
    /// Distinct runs answered from the persistent result store without
    /// simulating (0 when the campaign has no store).
    pub store_hits: usize,
    /// Distinct run results written to the persistent store.
    pub store_writes: usize,
    /// Runs that ended in an error record.
    pub failed_runs: usize,
    /// Worker threads used.
    pub jobs: usize,
}

/// The collected output of a campaign: per-run records in deterministic
/// plan order plus one analysed report per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Per-run records, ordered by (scenario, plan position).
    pub records: Vec<RunRecord>,
    /// Per-scenario analysis reports, in scenario order.
    pub reports: Vec<ScenarioReport>,
    /// Execution statistics (excluded from serialised output).
    pub stats: CampaignStats,
    /// Persistent-store warnings, in plan order (excluded from
    /// serialised output: every warning only caused a re-execution or a
    /// skipped cache write, never a different result).
    pub warnings: Vec<String>,
}

impl CampaignResult {
    /// The serialisable payload as pretty-printed JSON. Byte-identical
    /// across serial/parallel execution and cache settings.
    pub fn to_json(&self) -> String {
        Json::obj(vec![
            ("runs", Json::Arr(self.records.iter().map(RunRecord::to_json).collect())),
            ("scenarios", Json::Arr(self.reports.iter().map(ScenarioReport::to_json).collect())),
        ])
        .render_pretty()
    }

    /// The per-run records as CSV (RFC 4180), one row per record.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,label,status,error,execution_time,bus_requests,instructions,bus_utilization,max_gamma,mode_gamma,max_gamma_mc\n",
        );
        for r in &self.records {
            let opt_u64 = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
            let row = [
                csv_field(&r.scenario),
                csv_field(&r.label),
                String::from(if r.is_ok() { "ok" } else { "error" }),
                csv_field(r.error.as_deref().unwrap_or("")),
                opt_u64(r.execution_time),
                opt_u64(r.bus_requests),
                opt_u64(r.instructions),
                r.bus_utilization.map(|u| format!("{u}")).unwrap_or_default(),
                opt_u64(r.max_gamma),
                opt_u64(r.mode_gamma),
                opt_u64(r.max_gamma_mc),
            ];
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// A human-readable summary: one line per scenario plus the stats.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for report in &self.reports {
            let _ = writeln!(out, "{:<40} {}", report.scenario, report.summary);
            for metric in &report.metrics {
                let _ = writeln!(out, "    {:<24} {}", metric.name, metric.value);
            }
        }
        // Only plan-determined numbers appear here: the text format is
        // byte-identical across --jobs and across cold/warm caches, so
        // execution statistics (simulated runs, cache hits, workers) go
        // to [`CampaignStats`] and, in the CLI, to stderr.
        let s = &self.stats;
        let _ = writeln!(
            out,
            "campaign: {} scenario(s), {} run(s) planned, {} failed",
            s.scenarios, s.planned_runs, s.failed_runs
        );
        out
    }
}

// ---------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------

/// Builder for a [`Campaign`].
pub struct CampaignBuilder {
    scenarios: Vec<Box<dyn Scenario + Send + Sync>>,
    jobs: usize,
    dedup: bool,
    arena: bool,
    store: Option<Arc<ResultStore>>,
}

impl Default for CampaignBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CampaignBuilder {
    /// An empty builder (serial execution, deduplication on, machine
    /// reuse on, no persistent store).
    pub fn new() -> Self {
        CampaignBuilder { scenarios: Vec::new(), jobs: 1, dedup: true, arena: true, store: None }
    }

    /// Adds one scenario.
    #[must_use]
    pub fn scenario(mut self, scenario: impl Scenario + Send + Sync + 'static) -> Self {
        self.scenarios.push(Box::new(scenario));
        self
    }

    /// Adds an already boxed scenario.
    #[must_use]
    pub fn boxed(mut self, scenario: Box<dyn Scenario + Send + Sync>) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Adds every cell of a parameter grid.
    #[must_use]
    pub fn grid(mut self, grid: &CampaignGrid) -> Self {
        self.scenarios.extend(grid.scenarios());
        self
    }

    /// Sets the worker-thread count (1 = serial; values are clamped to
    /// the plan size at execution).
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Enables or disables run deduplication (the shared-baseline
    /// cache). On by default; turning it off re-executes every planned
    /// run and must produce identical output.
    #[must_use]
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Enables (default) or disables worker machine reuse
    /// ([`Executor::arena`]). Off builds a fresh machine per run;
    /// output is byte-identical either way.
    #[must_use]
    pub fn arena(mut self, arena: bool) -> Self {
        self.arena = arena;
        self
    }

    /// Attaches a persistent [`ResultStore`]: warm entries skip
    /// simulation entirely, fresh results are recorded for the next
    /// campaign. Output is byte-identical with or without a store.
    #[must_use]
    pub fn store(mut self, store: Arc<ResultStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Finalises the campaign.
    pub fn build(self) -> Campaign {
        Campaign {
            scenarios: self.scenarios,
            jobs: self.jobs,
            dedup: self.dedup,
            arena: self.arena,
            store: self.store,
        }
    }
}

/// A batch of scenarios executed as one deduplicated, parallel run plan.
pub struct Campaign {
    scenarios: Vec<Box<dyn Scenario + Send + Sync>>,
    jobs: usize,
    dedup: bool,
    arena: bool,
    store: Option<Arc<ResultStore>>,
}

impl Campaign {
    /// Starts a builder.
    pub fn builder() -> CampaignBuilder {
        CampaignBuilder::new()
    }

    /// Number of scenarios in the campaign.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the campaign has no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Plans, deduplicates, executes, and analyses every scenario.
    ///
    /// Failures are contained at the finest grain available: a scenario
    /// that cannot be planned yields a single error record; a run that
    /// fails yields an error outcome for its scenario's analysis. The
    /// campaign itself always completes.
    pub fn run(&self) -> CampaignResult {
        let plan = self.plan();
        let executor = Executor::new().jobs(self.jobs).arena(self.arena);
        let (results, usage) = executor.execute_with(plan.unique_specs(), self.store.as_deref());
        plan.finish(&results, usage, self.jobs)
    }

    /// Phases 1–2 of [`Campaign::run`] as a standalone step: plans every
    /// scenario (pure, serial) and builds the deduplicated execution
    /// plan. Runs are keyed by their stable FNV spec hash (label
    /// excluded) with a structural confirm, so identical (configuration,
    /// workload) pairs — shared isolated baselines in particular —
    /// appear once in [`CampaignPlan::unique_specs`].
    ///
    /// An external scheduler (the `rrb-serve` worker pool, a remote
    /// queue) can execute the unique specs in any order and at any pace,
    /// then reassemble the exact whole-campaign output with
    /// [`CampaignPlan::outcomes`], [`CampaignPlan::analyze`], and
    /// [`CampaignPlan::finish`].
    pub fn plan(&self) -> CampaignPlan<'_> {
        let mut unique: Vec<RunSpec> = Vec::new();
        let mut seen = DedupTable::default();
        let mut scenarios = Vec::with_capacity(self.scenarios.len());
        let mut planned_runs = 0usize;
        for scenario in &self.scenarios {
            let runs = scenario.plan();
            let mut indices = Vec::new();
            if let Ok(specs) = &runs {
                planned_runs += specs.len();
                for spec in specs {
                    let idx = if self.dedup {
                        seen.intern(spec, &mut unique)
                    } else {
                        let idx = unique.len();
                        unique.push(spec.clone());
                        idx
                    };
                    indices.push(idx);
                }
            }
            scenarios.push(PlannedScenario { name: scenario.name(), runs, indices });
        }
        CampaignPlan { campaign: self, scenarios, unique, planned_runs }
    }
}

// ---------------------------------------------------------------------
// Incremental plans
// ---------------------------------------------------------------------

/// One scenario's slice of a [`CampaignPlan`]: its name, its planned
/// runs (or the planning error), and — for every planned run — the
/// index of its deduplicated entry in [`CampaignPlan::unique_specs`].
pub struct PlannedScenario {
    /// Scenario name, stable across planning and analysis.
    pub name: String,
    /// The planned runs in scenario plan order, or why planning failed.
    pub runs: Result<Vec<RunSpec>, ScenarioError>,
    /// For each planned run, its index into the campaign-wide unique
    /// list (empty when planning failed).
    pub indices: Vec<usize>,
}

/// The deduplicated execution plan of a [`Campaign`]: phases 1–2 of
/// [`Campaign::run`] split from phases 3–4 so a scheduler can drive the
/// unique runs *incrementally* — out of order, across its own worker
/// pool, streaming per-run records as they land — instead of only
/// whole-campaign. [`Campaign::run`] itself is now a thin
/// `plan → execute → finish` composition, so both paths produce
/// byte-identical output by construction.
pub struct CampaignPlan<'a> {
    campaign: &'a Campaign,
    scenarios: Vec<PlannedScenario>,
    unique: Vec<RunSpec>,
    planned_runs: usize,
}

impl CampaignPlan<'_> {
    /// The deduplicated runs to execute, in first-appearance order.
    /// Result vectors handed back to [`CampaignPlan::outcomes`] and
    /// [`CampaignPlan::finish`] must be indexed like this slice.
    pub fn unique_specs(&self) -> &[RunSpec] {
        &self.unique
    }

    /// Per-scenario plan slices, in campaign order.
    pub fn scenarios(&self) -> &[PlannedScenario] {
        &self.scenarios
    }

    /// Total runs across all scenario plans, before deduplication.
    pub fn planned_runs(&self) -> usize {
        self.planned_runs
    }

    /// Builds scenario `index`'s [`RunOutcome`]s by scattering
    /// per-unique-run `results` back into that scenario's plan order.
    /// A result the scheduler never delivered surfaces as a failed
    /// outcome, never a panic; an out-of-range `index` or a failed plan
    /// yields no outcomes.
    pub fn outcomes(
        &self,
        index: usize,
        results: &[Result<RunMeasurement, RunError>],
    ) -> Vec<RunOutcome> {
        let Some(scenario) = self.scenarios.get(index) else { return Vec::new() };
        let Ok(specs) = &scenario.runs else { return Vec::new() };
        specs
            .iter()
            .zip(&scenario.indices)
            .map(|(spec, &idx)| RunOutcome {
                label: spec.label.clone(),
                result: results.get(idx).cloned().unwrap_or_else(|| {
                    Err(RunError::Analysis(String::from(
                        "scheduler delivered no result for this run",
                    )))
                }),
            })
            .collect()
    }

    /// Runs scenario `index`'s analysis over `outcomes` (usually the
    /// vector [`CampaignPlan::outcomes`] built once that scenario's runs
    /// all completed). A scenario whose *plan* failed reports that
    /// failure regardless of `outcomes`.
    pub fn analyze(&self, index: usize, outcomes: &[RunOutcome]) -> ScenarioReport {
        match (self.campaign.scenarios.get(index), self.scenarios.get(index)) {
            (Some(scenario), Some(planned)) => match &planned.runs {
                Err(e) => ScenarioReport::failure(planned.name.clone(), e),
                Ok(_) => scenario.analyze(outcomes),
            },
            _ => ScenarioReport::failure(
                String::from("<campaign>"),
                format!("scenario index {index} out of range"),
            ),
        }
    }

    /// Phase 4 of [`Campaign::run`]: scatters per-unique-run `results`
    /// back into plan order and analyses every scenario, producing the
    /// same records, reports, and statistics that a whole-campaign
    /// [`Campaign::run`] would have. `results` must be indexed like
    /// [`CampaignPlan::unique_specs`]; `usage` and `jobs` only feed the
    /// (non-serialised) statistics.
    pub fn finish(
        &self,
        results: &[Result<RunMeasurement, RunError>],
        usage: StoreUsage,
        jobs: usize,
    ) -> CampaignResult {
        let mut records = Vec::with_capacity(self.planned_runs);
        let mut reports = Vec::with_capacity(self.scenarios.len());
        let mut failed_runs = 0usize;
        for (index, planned) in self.scenarios.iter().enumerate() {
            match &planned.runs {
                Err(e) => {
                    failed_runs += 1;
                    records.push(RunRecord::failed(&planned.name, "<plan>", e));
                    reports.push(ScenarioReport::failure(planned.name.clone(), e));
                }
                Ok(_) => {
                    let outcomes = self.outcomes(index, results);
                    for outcome in &outcomes {
                        records.push(match &outcome.result {
                            Ok(m) => RunRecord::ok(&planned.name, &outcome.label, m),
                            Err(e) => {
                                failed_runs += 1;
                                RunRecord::failed(&planned.name, &outcome.label, e)
                            }
                        });
                    }
                    reports.push(self.analyze(index, &outcomes));
                }
            }
        }
        CampaignResult {
            records,
            reports,
            stats: CampaignStats {
                scenarios: self.scenarios.len(),
                planned_runs: self.planned_runs,
                executed_runs: self.unique.len().saturating_sub(usage.hits),
                cache_hits: self.planned_runs - self.unique.len(),
                store_hits: usage.hits,
                store_writes: usage.writes,
                failed_runs,
                jobs,
            },
            warnings: usage.warnings,
        }
    }
}

/// Clamps a requested worker count to the machine's available
/// parallelism, returning the effective count and — when the request
/// was lowered — a human-readable warning for stderr. On a 1-CPU
/// container, oversubscription is pure scheduling overhead
/// (`BENCH_campaign.json` records a 0.88× parallel "speedup" for 2 jobs
/// there), so both the CLI `--jobs` flag and the `rrb serve` worker
/// pool route through this. `None` (and `Some(0)`) mean "use every
/// available CPU".
pub fn clamped_jobs(requested: Option<usize>) -> (usize, Option<String>) {
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    match requested {
        None | Some(0) => (available, None),
        Some(n) if n <= available => (n, None),
        Some(n) => (
            available,
            Some(format!(
                "{n} jobs requested but only {available} CPU(s) available; \
                 clamping to {available} (oversubscription only adds scheduling overhead)"
            )),
        ),
    }
}

// ---------------------------------------------------------------------
// Parameter grids
// ---------------------------------------------------------------------

/// Which scenario a [`CampaignGrid`] instantiates per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridScenario {
    /// Full rsk-nop ubd derivation (§4).
    Derive,
    /// The naive rsk-vs-rsk estimate (§3).
    Naive,
    /// A raw saw-tooth slowdown sweep (Fig. 7).
    Sweep,
    /// White-box γ-model validation (Eq. 2 vs machine).
    ValidateGamma,
}

impl GridScenario {
    fn slug(self) -> &'static str {
        match self {
            GridScenario::Derive => "derive",
            GridScenario::Naive => "naive",
            GridScenario::Sweep => "sweep",
            GridScenario::ValidateGamma => "validate",
        }
    }
}

impl fmt::Display for GridScenario {
    /// The canonical token (`derive`, `naive`, `sweep`, `validate`)
    /// used in scenario names, CLI flags, and experiment files;
    /// round-tripped by [`GridScenario::from_str`].
    ///
    /// [`GridScenario::from_str`]: std::str::FromStr::from_str
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.slug())
    }
}

/// A scenario token that `GridScenario::from_str` could not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGridScenarioError {
    /// The offending token.
    pub token: String,
}

impl ParseGridScenarioError {
    /// The canonical tokens, for error messages and CLI help.
    pub const ALLOWED: &'static str = "derive, naive, sweep, validate";
}

impl fmt::Display for ParseGridScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown scenario `{}` (expected one of: {})", self.token, Self::ALLOWED)
    }
}

impl Error for ParseGridScenarioError {}

impl std::str::FromStr for GridScenario {
    type Err = ParseGridScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "derive" => Ok(GridScenario::Derive),
            "naive" => Ok(GridScenario::Naive),
            "sweep" => Ok(GridScenario::Sweep),
            "validate" => Ok(GridScenario::ValidateGamma),
            other => Err(ParseGridScenarioError { token: other.to_string() }),
        }
    }
}

/// The canonical arbiter token used in scenario names and records —
/// `ArbiterKind`'s `Display` form (`rr`, `fp`, `fifo`, `tdma:<slot>`,
/// `grr:<group>`), which `ArbiterKind::from_str` round-trips, so a name
/// fragment can be parsed straight back into a policy.
pub fn arbiter_slug(kind: ArbiterKind) -> String {
    kind.to_string()
}

/// A short name for an access kind.
pub fn access_slug(kind: AccessKind) -> &'static str {
    match kind {
        AccessKind::Load => "load",
        AccessKind::Store => "store",
    }
}

/// One expanded grid cell: the concrete machine configuration and
/// workload axes a single scenario is instantiated from. The static
/// analyzer bounds these directly, without building the scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// The scenario name the campaign would report for this cell.
    pub name: String,
    /// The per-cell machine configuration (arbiter and core count applied).
    pub cfg: MachineConfig,
    /// Scua access kind.
    pub access: AccessKind,
    /// Contender access kind.
    pub contender_access: AccessKind,
    /// Scua iteration count.
    pub iterations: u64,
    /// Largest nop-injection count the sweep will try.
    pub max_k: usize,
}

/// A parameter grid over a base machine: the cartesian product of
/// arbiter × core count × scua access × contender access × iterations,
/// each cell instantiating one [`GridScenario`]. Shared runs between
/// cells (isolated baselines in particular: they do not depend on the
/// contender access) are deduplicated by the campaign runner.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignGrid {
    /// The scenario kind instantiated per cell.
    pub scenario: GridScenario,
    /// The base machine every cell starts from.
    pub base: MachineConfig,
    /// Arbitration policies to sweep.
    pub arbiters: Vec<ArbiterKind>,
    /// Core counts to sweep (the L2 way count is raised when needed, as
    /// [`MachineConfig::toy`] does, so cells stay partitionable).
    pub cores: Vec<usize>,
    /// Scua access kinds to sweep.
    pub accesses: Vec<AccessKind>,
    /// Contender access kinds to sweep.
    pub contender_accesses: Vec<AccessKind>,
    /// Per-run iteration counts to sweep.
    pub iteration_counts: Vec<u64>,
    /// Largest nop padding swept inside each cell (`max_k`).
    pub max_k: usize,
    /// Methodology template for `Derive` cells (access kinds, iterations
    /// and `max_k` are overridden per cell).
    pub methodology: MethodologyConfig,
}

impl CampaignGrid {
    /// A 1×1×…×1 grid over `base`; widen dimensions with the setters.
    pub fn new(scenario: GridScenario, base: MachineConfig) -> Self {
        let mut methodology = MethodologyConfig::fast();
        // The saw-tooth period is bus-only, so the sweep length scales
        // with the bus's share of the bound, not the topology total.
        methodology.max_k = ((base.bus_ubd() as usize) * 3).max(12);
        CampaignGrid {
            scenario,
            arbiters: vec![base.bus().arbiter],
            cores: vec![base.num_cores],
            accesses: vec![AccessKind::Load],
            contender_accesses: vec![AccessKind::Load],
            iteration_counts: vec![methodology.iterations],
            max_k: methodology.max_k,
            methodology,
            base,
        }
    }

    /// Sweeps the arbitration policy.
    #[must_use]
    pub fn arbiters(mut self, arbiters: Vec<ArbiterKind>) -> Self {
        self.arbiters = arbiters;
        self
    }

    /// Sweeps the core count.
    #[must_use]
    pub fn cores(mut self, cores: Vec<usize>) -> Self {
        self.cores = cores;
        self
    }

    /// Sweeps the scua access kind.
    #[must_use]
    pub fn accesses(mut self, accesses: Vec<AccessKind>) -> Self {
        self.accesses = accesses;
        self
    }

    /// Sweeps the contender access kind.
    #[must_use]
    pub fn contender_accesses(mut self, accesses: Vec<AccessKind>) -> Self {
        self.contender_accesses = accesses;
        self
    }

    /// Sweeps the per-run iteration count.
    #[must_use]
    pub fn iterations(mut self, iteration_counts: Vec<u64>) -> Self {
        self.iteration_counts = iteration_counts;
        self
    }

    /// Sets the in-cell nop-padding ceiling.
    #[must_use]
    pub fn max_k(mut self, max_k: usize) -> Self {
        self.max_k = max_k;
        self
    }

    /// Sets the methodology template for `Derive` cells.
    #[must_use]
    pub fn methodology(mut self, methodology: MethodologyConfig) -> Self {
        self.methodology = methodology;
        self
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.arbiters.len()
            * self.cores.len()
            * self.accesses.len()
            * self.contender_accesses.len()
            * self.iteration_counts.len()
    }

    /// Expands the grid into its concrete cells — the same enumeration
    /// (and the same cell names) [`scenarios`](Self::scenarios) builds its
    /// scenario list from, exposed so the static analyzer can bound
    /// exactly the cells the campaign would run.
    pub fn cells(&self) -> Vec<GridCell> {
        let mut out = Vec::with_capacity(self.cell_count());
        for &arbiter in &self.arbiters {
            for &cores in &self.cores {
                for &access in &self.accesses {
                    for &contender_access in &self.contender_accesses {
                        for &iterations in &self.iteration_counts {
                            let mut cfg = self.base.clone();
                            cfg.topology.bus.arbiter = arbiter;
                            cfg.num_cores = cores;
                            if (cfg.l2.ways as usize) < cores {
                                cfg.l2.ways = cores as u32;
                            }
                            let name = format!(
                                "{}/{}/c{}/{}-vs-{}/i{}{}",
                                self.scenario.slug(),
                                arbiter_slug(arbiter),
                                cores,
                                access_slug(access),
                                access_slug(contender_access),
                                iterations,
                                match cfg.topology.mc {
                                    Some(mc) =>
                                        format!("/bus+mc:{}:{}", mc.arbiter, mc.service_occupancy),
                                    None => String::new(),
                                },
                            );
                            out.push(GridCell {
                                name,
                                cfg,
                                access,
                                contender_access,
                                iterations,
                                max_k: self.max_k,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Expands the grid into one scenario per cell, in a deterministic
    /// (row-major) order.
    pub fn scenarios(&self) -> Vec<Box<dyn Scenario + Send + Sync>> {
        self.cells()
            .into_iter()
            .map(|c| self.cell(c.name, c.cfg, c.access, c.contender_access, c.iterations))
            .collect()
    }

    fn cell(
        &self,
        name: String,
        cfg: MachineConfig,
        access: AccessKind,
        contender_access: AccessKind,
        iterations: u64,
    ) -> Box<dyn Scenario + Send + Sync> {
        match self.scenario {
            GridScenario::Derive => {
                let mut mcfg = self.methodology.clone();
                mcfg.access = access;
                mcfg.contender_access = contender_access;
                mcfg.iterations = iterations;
                mcfg.max_k = self.max_k;
                Box::new(UbdScenario::new(cfg, mcfg).named(name))
            }
            GridScenario::Naive => {
                let scua = rsk_nop(access, 0, &cfg, CoreId::new(0), iterations);
                Box::new(NaiveScenario::new(cfg, scua, contender_access).named(name))
            }
            GridScenario::Sweep => Box::new(
                SweepScenario::new(cfg, self.max_k, iterations)
                    .access(access)
                    .contenders(contender_access)
                    .named(name),
            ),
            GridScenario::ValidateGamma => Box::new(
                GammaValidationScenario::new(cfg, self.max_k as u64, iterations).named(name),
            ),
        }
    }
}

#[cfg(test)]
// The deprecated free functions are exercised on purpose: they are kept
// as working wrappers, and these tests pin their contracts.
#[allow(deprecated)]
mod tests {
    use super::*;
    use rrb_kernels::{rsk, rsk_nop};

    fn toy() -> MachineConfig {
        MachineConfig::toy(4, 2)
    }

    #[test]
    fn execute_run_matches_direct_machine_run() {
        let cfg = toy();
        let scua = rsk_nop(AccessKind::Load, 1, &cfg, CoreId::new(0), 60);
        let spec = RunSpec::contended_rsk("r", cfg.clone(), scua.clone(), AccessKind::Load);
        let m = execute_run(&spec).expect("run");
        assert!(m.execution_time > 0);
        assert!(m.bus_requests >= 300);
        assert!(m.bus_utilization > 0.9);
        let iso = execute_run(&RunSpec::isolated("i", cfg, scua)).expect("run");
        assert!(iso.execution_time < m.execution_time);
        assert_eq!(iso.max_gamma(), Some(0));
    }

    #[test]
    fn invalid_config_is_a_run_error_not_a_panic() {
        let mut cfg = toy();
        cfg.topology.bus.arbiter = ArbiterKind::Tdma { slot_cycles: 1 };
        let scua = rsk_nop(AccessKind::Load, 0, &toy(), CoreId::new(0), 10);
        let spec = RunSpec::isolated("bad", cfg, scua);
        assert!(matches!(execute_run(&spec), Err(RunError::Sim(SimError::Config(_)))));
    }

    #[test]
    fn endless_scua_is_reported() {
        let cfg = toy();
        let scua = rsk(AccessKind::Load, &cfg, CoreId::new(0));
        let spec = RunSpec::isolated("endless", cfg, scua);
        assert!(matches!(execute_run(&spec), Err(RunError::NonTerminatingScua)));
    }

    #[test]
    fn deduped_plan_matches_plain_execution() {
        let cfg = toy();
        let scua = rsk_nop(AccessKind::Load, 1, &cfg, CoreId::new(0), 40);
        let spec = RunSpec::isolated("a", cfg.clone(), scua.clone());
        let specs =
            vec![spec.clone(), RunSpec::isolated("b", cfg, scua), spec.clone(), spec.clone()];
        let deduped = execute_plan_deduped(&specs, 2);
        let plain = execute_plan(&specs, 1);
        assert_eq!(deduped, plain);
        assert_eq!(deduped.len(), 4);
    }

    #[test]
    fn parallel_plan_execution_matches_serial() {
        let cfg = toy();
        let specs: Vec<RunSpec> = (0..6)
            .map(|k| {
                RunSpec::contended_rsk(
                    format!("k={k}"),
                    cfg.clone(),
                    rsk_nop(AccessKind::Load, k, &cfg, CoreId::new(0), 40),
                    AccessKind::Load,
                )
            })
            .collect();
        let serial = execute_plan(&specs, 1);
        let parallel = execute_plan(&specs, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn spec_hash_ignores_labels_and_separates_everything_else() {
        let cfg = toy();
        let scua = rsk_nop(AccessKind::Load, 1, &cfg, CoreId::new(0), 40);
        let a = RunSpec::isolated("a", cfg.clone(), scua.clone());
        let b = RunSpec::isolated("totally different label", cfg.clone(), scua.clone());
        assert_eq!(a.spec_hash(), b.spec_hash(), "labels are not part of the measurement");
        assert_eq!(a.spec_hash(), a.spec_hash(), "the digest is deterministic");
        let mut other_cfg = cfg.clone();
        other_cfg.topology.bus.l2_hit_occupancy += 1;
        assert_ne!(a.spec_hash(), RunSpec::isolated("a", other_cfg, scua.clone()).spec_hash());
        let other_scua = rsk_nop(AccessKind::Load, 2, &cfg, CoreId::new(0), 40);
        assert_ne!(a.spec_hash(), RunSpec::isolated("a", cfg.clone(), other_scua).spec_hash());
        let contended = RunSpec::contended_rsk("a", cfg, scua, AccessKind::Load);
        assert_ne!(a.spec_hash(), contended.spec_hash());
    }

    #[test]
    fn from_kernels_matches_the_direct_constructors() {
        let cfg = toy();
        let scua_spec = KernelSpec::RskNop { access: AccessKind::Load, nops: 1, iterations: 40 };
        let contenders = vec![KernelSpec::Rsk { access: AccessKind::Store }; cfg.num_cores - 1];
        let via_spec = RunSpec::from_kernels("r", cfg.clone(), &scua_spec, &contenders);
        let direct = RunSpec::contended_rsk(
            "r",
            cfg.clone(),
            rsk_nop(AccessKind::Load, 1, &cfg, CoreId::new(0), 40),
            AccessKind::Store,
        );
        assert_eq!(via_spec, direct);
        assert_eq!(via_spec.spec_hash(), direct.spec_hash());
    }

    #[test]
    fn dedup_counts_shared_baselines_once() {
        // Two naive cells differing only in contender access share their
        // isolated baseline.
        let grid = CampaignGrid::new(GridScenario::Naive, toy())
            .contender_accesses(vec![AccessKind::Load, AccessKind::Store]);
        let result = Campaign::builder().grid(&grid).build().run();
        assert_eq!(result.stats.planned_runs, 4);
        assert_eq!(result.stats.executed_runs, 3, "one shared isolated baseline");
        assert_eq!(result.stats.cache_hits, 1);
        assert_eq!(result.stats.failed_runs, 0);
    }

    #[test]
    fn grid_expands_row_major_and_counts_cells() {
        let grid = CampaignGrid::new(GridScenario::Derive, toy())
            .arbiters(vec![ArbiterKind::RoundRobin, ArbiterKind::Fifo])
            .iterations(vec![50, 60]);
        assert_eq!(grid.cell_count(), 4);
        let names: Vec<String> = grid.scenarios().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "derive/rr/c4/load-vs-load/i50",
                "derive/rr/c4/load-vs-load/i60",
                "derive/fifo/c4/load-vs-load/i50",
                "derive/fifo/c4/load-vs-load/i60",
            ]
        );
    }

    #[test]
    fn csv_has_header_and_one_row_per_record() {
        let grid = CampaignGrid::new(GridScenario::Naive, toy());
        let result = Campaign::builder().grid(&grid).build().run();
        let csv = result.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines[0].starts_with("scenario,label,status"));
        assert_eq!(lines.len(), 1 + result.records.len());
        assert!(lines[1].contains(",ok,"));
    }

    #[test]
    fn empty_campaign_is_well_formed() {
        let result = Campaign::builder().build().run();
        assert!(result.records.is_empty());
        assert!(result.reports.is_empty());
        assert!(result.to_json().contains("\"runs\": []"));
    }
}
