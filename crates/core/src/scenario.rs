//! The [`Scenario`] abstraction: a named experiment that plans machine
//! runs and analyses their measurements.
//!
//! Every experiment in this crate — ubd derivation, the naive
//! estimators, γ-model validation, saw-tooth sweeps, the ablations — has
//! the same shape: build a set of workloads, run each on a fresh
//! [`Machine`](rrb_sim::Machine), and reduce the measurements to a
//! result. A `Scenario` makes that shape explicit:
//!
//! * [`Scenario::plan`] expands the experiment into [`RunSpec`]s — pure
//!   data, no execution;
//! * the [`Campaign`](crate::campaign::Campaign) runner executes the
//!   specs (serially or across a scoped thread pool, with shared runs
//!   deduplicated);
//! * [`Scenario::analyze`] folds the measurements into a
//!   [`ScenarioReport`] of named metrics.
//!
//! Because planning and analysis never touch a machine, runs from many
//! scenarios can be batched, deduplicated, and executed in parallel
//! while analysis stays deterministic: the runner hands back outcomes in
//! plan order no matter how execution was scheduled.

use crate::campaign::{RunError, RunMeasurement, RunSpec};
use crate::json::Json;
use rrb_analysis::sawtooth::detect_period;
use rrb_kernels::{AccessKind, KernelSpec};
use rrb_sim::{MachineConfig, SimError};
use std::error::Error;
use std::fmt;

/// The result of one planned run, in plan order.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The plan label of the run (e.g. `"k=12/contended"`).
    pub label: String,
    /// The measurement, or the per-run error that replaced it. Errors are
    /// recorded, not propagated: one failing run never poisons a
    /// campaign.
    pub result: Result<RunMeasurement, RunError>,
}

impl RunOutcome {
    /// The measurement, or the run's error.
    ///
    /// # Errors
    ///
    /// Returns the recorded [`RunError`] for failed runs.
    pub fn measurement(&self) -> Result<&RunMeasurement, RunError> {
        self.result.as_ref().map_err(Clone::clone)
    }
}

/// Why a scenario could not be planned or analysed.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The machine configuration is invalid, so no runs were planned.
    Config(SimError),
    /// Analysis failed (e.g. a required run errored).
    Analysis(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Config(e) => write!(f, "invalid scenario configuration: {e}"),
            ScenarioError::Analysis(msg) => write!(f, "scenario analysis failed: {msg}"),
        }
    }
}

impl Error for ScenarioError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScenarioError::Config(e) => Some(e),
            ScenarioError::Analysis(_) => None,
        }
    }
}

impl From<SimError> for ScenarioError {
    fn from(e: SimError) -> Self {
        ScenarioError::Config(e)
    }
}

/// A single named result of a scenario analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (e.g. `"ubd_m"`).
    pub name: String,
    /// Metric value.
    pub value: MetricValue,
}

/// The value of a [`Metric`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// Free text (verdicts, method names).
    Text(String),
    /// An integer series (slowdown sweeps, candidate sets).
    Series(Vec<u64>),
}

impl MetricValue {
    fn to_json(&self) -> Json {
        match self {
            MetricValue::U64(v) => Json::U64(*v),
            MetricValue::F64(v) => Json::F64(*v),
            MetricValue::Text(s) => Json::str(s.clone()),
            MetricValue::Series(xs) => Json::u64_array(xs),
        }
    }
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::U64(v) => write!(f, "{v}"),
            MetricValue::F64(v) => write!(f, "{v:.4}"),
            MetricValue::Text(s) => write!(f, "{s}"),
            MetricValue::Series(xs) => write!(f, "{xs:?}"),
        }
    }
}

/// The analysed result of one scenario: a summary line plus named
/// metrics, or an error. Serialisable and deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// One-line human-readable outcome.
    pub summary: String,
    /// The failure, if the scenario could not produce a result.
    pub error: Option<String>,
    /// Named metrics (empty on failure).
    pub metrics: Vec<Metric>,
}

impl ScenarioReport {
    /// A successful report; add metrics with [`ScenarioReport::with`].
    pub fn success(scenario: impl Into<String>, summary: impl Into<String>) -> Self {
        ScenarioReport {
            scenario: scenario.into(),
            summary: summary.into(),
            error: None,
            metrics: Vec::new(),
        }
    }

    /// A failed report.
    pub fn failure(scenario: impl Into<String>, error: impl fmt::Display) -> Self {
        let error = error.to_string();
        ScenarioReport {
            scenario: scenario.into(),
            summary: format!("failed: {error}"),
            error: Some(error),
            metrics: Vec::new(),
        }
    }

    /// Appends a metric (builder style).
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, value: MetricValue) -> Self {
        self.metrics.push(Metric { name: name.into(), value });
        self
    }

    /// Whether the scenario produced a result.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|m| m.name == name).map(|m| &m.value)
    }

    /// Looks up an integer metric by name.
    pub fn metric_u64(&self, name: &str) -> Option<u64> {
        match self.metric(name)? {
            MetricValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The report as a JSON value.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("scenario", Json::str(self.scenario.clone())),
            ("summary", Json::str(self.summary.clone())),
            ("error", Json::option(self.error.clone(), Json::Str)),
            (
                "metrics",
                Json::Obj(
                    self.metrics.iter().map(|m| (m.name.clone(), m.value.to_json())).collect(),
                ),
            ),
        ])
    }
}

/// An experiment expressed as a plan of machine runs plus an analysis.
///
/// Implementations in this crate:
///
/// * [`UbdScenario`](crate::methodology::UbdScenario) — the paper's full
///   rsk-nop methodology (§4);
/// * [`NaiveScenario`](crate::naive::NaiveScenario) — prior practice's
///   `det/nr` estimate (§3);
/// * [`GammaValidationScenario`](crate::validation::GammaValidationScenario)
///   — the machine-vs-Eq. 2 white-box validation;
/// * [`SweepScenario`] — a raw `d_bus(t, k)` saw-tooth sweep (Fig. 7).
///
/// Grids of scenarios are built by
/// [`CampaignGrid`](crate::campaign::CampaignGrid) and executed by
/// [`Campaign`](crate::campaign::Campaign).
pub trait Scenario {
    /// A unique, stable name (used as the record key in campaign output).
    fn name(&self) -> String;

    /// Expands the experiment into runnable specs. Pure: no simulation.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Config`] when the machine configuration
    /// is invalid — the campaign records the failure and moves on.
    fn plan(&self) -> Result<Vec<RunSpec>, ScenarioError>;

    /// Reduces the outcomes (in plan order) to a report. Must tolerate
    /// per-run errors: failed runs arrive as `Err` outcomes.
    fn analyze(&self, outcomes: &[RunOutcome]) -> ScenarioReport;
}

/// A raw slowdown sweep: `d_bus(t, k)` for `k = 0..=max_k` — the series
/// behind Fig. 7, without the period-recovery post-processing of the
/// full methodology.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepScenario {
    /// Scenario name.
    pub name: String,
    /// The platform under test.
    pub machine: MachineConfig,
    /// Access kind of the swept `rsk-nop(t, k)` scua.
    pub access: AccessKind,
    /// Access kind of the saturating contenders.
    pub contender_access: AccessKind,
    /// Largest nop count swept.
    pub max_k: usize,
    /// Iterations of the scua body per run.
    pub iterations: u64,
}

impl SweepScenario {
    /// A load-vs-load sweep with a default name.
    pub fn new(machine: MachineConfig, max_k: usize, iterations: u64) -> Self {
        SweepScenario {
            name: String::from("sweep"),
            machine,
            access: AccessKind::Load,
            contender_access: AccessKind::Load,
            max_k,
            iterations,
        }
    }

    /// Renames the scenario (builder style).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the scua access kind (builder style).
    #[must_use]
    pub fn access(mut self, access: AccessKind) -> Self {
        self.access = access;
        self
    }

    /// Sets the contender access kind (builder style).
    #[must_use]
    pub fn contenders(mut self, access: AccessKind) -> Self {
        self.contender_access = access;
        self
    }

    /// Recovers the slowdown series from the outcomes.
    ///
    /// # Errors
    ///
    /// Returns the first failed run's [`RunError`].
    pub fn slowdowns(&self, outcomes: &[RunOutcome]) -> Result<Vec<u64>, RunError> {
        let mut series = Vec::with_capacity(self.max_k + 1);
        for pair in outcomes.chunks(2) {
            let isolated = pair[0].measurement()?;
            let contended = pair[1].measurement()?;
            series.push(contended.execution_time.saturating_sub(isolated.execution_time));
        }
        Ok(series)
    }
}

impl Scenario for SweepScenario {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn plan(&self) -> Result<Vec<RunSpec>, ScenarioError> {
        self.machine.validate().map_err(SimError::from)?;
        let contenders = vec![
            KernelSpec::Rsk { access: self.contender_access };
            self.machine.num_cores.saturating_sub(1)
        ];
        let mut specs = Vec::with_capacity(2 * (self.max_k + 1));
        for k in 0..=self.max_k {
            let scua = KernelSpec::RskNop {
                access: self.access,
                nops: k as u64,
                iterations: self.iterations,
            };
            specs.push(RunSpec::from_kernels(
                format!("k={k}/isolated"),
                self.machine.clone(),
                &scua,
                &[],
            ));
            specs.push(RunSpec::from_kernels(
                format!("k={k}/contended"),
                self.machine.clone(),
                &scua,
                &contenders,
            ));
        }
        Ok(specs)
    }

    fn analyze(&self, outcomes: &[RunOutcome]) -> ScenarioReport {
        match self.slowdowns(outcomes) {
            Ok(series) => {
                let period = detect_period(&series, 0).or_else(|| detect_period(&series, 2));
                let summary = match period {
                    Some(p) => format!("saw-tooth period {} over k = 0..={}", p.period, self.max_k),
                    None => format!("no saw-tooth period over k = 0..={}", self.max_k),
                };
                let mut report = ScenarioReport::success(self.name(), summary)
                    .with("slowdowns", MetricValue::Series(series));
                if let Some(p) = period {
                    report = report
                        .with("period", MetricValue::U64(p.period))
                        .with("period_method", MetricValue::Text(p.method.to_string()))
                        .with("period_confidence", MetricValue::F64(p.confidence));
                }
                report
            }
            Err(e) => ScenarioReport::failure(self.name(), e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;

    #[test]
    fn report_builder_round_trips() {
        let r = ScenarioReport::success("s", "ok")
            .with("ubd_m", MetricValue::U64(6))
            .with("util", MetricValue::F64(0.99));
        assert!(r.is_ok());
        assert_eq!(r.metric_u64("ubd_m"), Some(6));
        assert_eq!(r.metric_u64("missing"), None);
        assert!(r.to_json().render_compact().contains("\"ubd_m\":6"));
    }

    #[test]
    fn failure_report_carries_error() {
        let r = ScenarioReport::failure("s", "boom");
        assert!(!r.is_ok());
        assert_eq!(r.error.as_deref(), Some("boom"));
        assert!(r.summary.contains("boom"));
    }

    #[test]
    fn sweep_scenario_recovers_toy_period() {
        let s = SweepScenario::new(MachineConfig::toy(4, 2), 14, 80).named("toy-sweep");
        let specs = s.plan().expect("plan");
        assert_eq!(specs.len(), 30, "an isolated/contended pair per k");
        let outcomes: Vec<RunOutcome> = specs
            .iter()
            .zip(Executor::new().execute(&specs).0)
            .map(|(spec, result)| RunOutcome { label: spec.label.clone(), result })
            .collect();
        let report = s.analyze(&outcomes);
        assert!(report.is_ok(), "{report:?}");
        assert_eq!(report.metric_u64("period"), Some(6));
    }

    #[test]
    fn sweep_plan_rejects_invalid_machine() {
        let mut cfg = MachineConfig::toy(4, 2);
        cfg.num_cores = 0;
        let s = SweepScenario::new(cfg, 4, 10);
        assert!(matches!(s.plan(), Err(ScenarioError::Config(_))));
    }

    #[test]
    fn scenario_error_display_and_source() {
        use std::error::Error as _;
        let e = ScenarioError::Analysis("x".into());
        assert!(e.to_string().contains('x'));
        assert!(e.source().is_none());
        let e = ScenarioError::from(SimError::NoSuchCore { core: 9, num_cores: 4 });
        assert!(e.source().is_some());
    }
}
