//! The naive measurement-based estimators of prior practice (§1, §3).
//!
//! Before this paper, `ubd_m` was obtained by running the software
//! component under analysis (or a copy of the stressing kernel itself)
//! against `Nc − 1` resource-stressing kernels and dividing the observed
//! slowdown by the number of bus requests: `ubd_m = det / nr` [15, 11, 5].
//! §3 shows why this cannot reach `ubd`: under full load the round-robin
//! bus synchronises, every request suffers the *same* `γ(δ_rsk) < ubd`,
//! and the estimate inherits that bias (26 instead of 27 on the reference
//! architecture, 23 on the variant — Fig. 6(b)).

use crate::experiment::{measure_slowdown, SlowdownMeasurement};
use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{CoreId, MachineConfig, Program, SimError};

/// A naive `ubd_m` estimate and the measurements behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveEstimate {
    /// `det / nr`, the slowdown-per-request reading.
    pub ubd_m_det_over_nr: u64,
    /// The largest per-request delay visible on the performance counters
    /// (what an analyst with PMC access would report instead).
    pub ubd_m_max_gamma: u64,
    /// The underlying paired measurement.
    pub measurement: SlowdownMeasurement,
}

impl NaiveEstimate {
    /// The estimate an analyst would quote: the larger of the two
    /// readings (conservative practice).
    pub fn ubd_m(&self) -> u64 {
        self.ubd_m_det_over_nr.max(self.ubd_m_max_gamma)
    }

    fn from_measurement(measurement: SlowdownMeasurement) -> Self {
        NaiveEstimate {
            ubd_m_det_over_nr: measurement.naive_ubd_m(),
            ubd_m_max_gamma: measurement.contended.gamma_histogram.max().unwrap_or(0),
            measurement,
        }
    }
}

/// The "scua against rsk" estimator (§3.1): run an arbitrary software
/// component against `Nc − 1` stressing kernels and read `det / nr`.
///
/// # Errors
///
/// Returns [`SimError`] if either run fails.
pub fn naive_scua_vs_rsk(
    cfg: &MachineConfig,
    scua_program: Program,
    contender_access: AccessKind,
) -> Result<NaiveEstimate, SimError> {
    let m = measure_slowdown(cfg, scua_program, |c| rsk(contender_access, cfg, c))?;
    Ok(NaiveEstimate::from_measurement(m))
}

/// The "rsk against rsk" estimator (§3.2): the scua is itself a stressing
/// kernel, maximising the chance every request meets full contention —
/// and still falling short of `ubd` because of the synchrony effect.
///
/// # Errors
///
/// Returns [`SimError`] if either run fails.
pub fn naive_rsk_vs_rsk(
    cfg: &MachineConfig,
    access: AccessKind,
    iterations: u64,
) -> Result<NaiveEstimate, SimError> {
    let scua = rsk_nop(access, 0, cfg, CoreId::new(0), iterations);
    naive_scua_vs_rsk(cfg, scua, access)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsk_vs_rsk_on_ref_reads_26() {
        // Fig. 6(b): ubd_m = 26 on the reference architecture; truth 27.
        let cfg = MachineConfig::ngmp_ref();
        let e = naive_rsk_vs_rsk(&cfg, AccessKind::Load, 500).expect("run");
        assert_eq!(e.ubd_m_max_gamma, 26);
        assert!(e.ubd_m() < cfg.ubd());
    }

    #[test]
    fn rsk_vs_rsk_on_var_reads_23() {
        // Fig. 6(b): ubd_m = 23 on the variant architecture (δ_rsk = 4).
        let cfg = MachineConfig::ngmp_var();
        let e = naive_rsk_vs_rsk(&cfg, AccessKind::Load, 500).expect("run");
        assert_eq!(e.ubd_m_max_gamma, 23);
    }

    #[test]
    fn det_over_nr_is_close_to_but_below_max_gamma() {
        let cfg = MachineConfig::ngmp_ref();
        let e = naive_rsk_vs_rsk(&cfg, AccessKind::Load, 500).expect("run");
        assert!(e.ubd_m_det_over_nr <= e.ubd_m_max_gamma + 1);
        assert!(e.ubd_m_det_over_nr >= 20);
    }

    #[test]
    fn eembc_scua_reads_even_lower() {
        // An arbitrary scua aligns even worse than an rsk (§3.1): its
        // requests rarely meet the worst alignment.
        use rrb_kernels::AutobenchKernel;
        let cfg = MachineConfig::ngmp_ref();
        let scua = AutobenchKernel::Canrdr
            .profile()
            .program(&cfg, CoreId::new(0), 3, Some(100));
        let e = naive_scua_vs_rsk(&cfg, scua, AccessKind::Load).expect("run");
        assert!(e.ubd_m() <= cfg.ubd());
        // det/nr averages over well-aligned requests: clearly below ubd.
        assert!(e.ubd_m_det_over_nr < cfg.ubd());
    }
}
