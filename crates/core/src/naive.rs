//! The naive measurement-based estimators of prior practice (§1, §3).
//!
//! Before this paper, `ubd_m` was obtained by running the software
//! component under analysis (or a copy of the stressing kernel itself)
//! against `Nc − 1` resource-stressing kernels and dividing the observed
//! slowdown by the number of bus requests: `ubd_m = det / nr` [15, 11, 5].
//! §3 shows why this cannot reach `ubd`: under full load the round-robin
//! bus synchronises, every request suffers the *same* `γ(δ_rsk) < ubd`,
//! and the estimate inherits that bias (26 instead of 27 on the reference
//! architecture, 23 on the variant — Fig. 6(b)).
//!
//! [`NaiveScenario`] packages the estimator as a campaign-ready
//! [`Scenario`] (one isolated/contended run
//! pair); [`naive_scua_vs_rsk`] and [`naive_rsk_vs_rsk`] are the serial
//! wrappers.

use crate::campaign::{RunError, RunSpec};
use crate::executor::Executor;
use crate::experiment::{ContendedRun, IsolatedRun, SlowdownMeasurement};
use crate::scenario::{MetricValue, RunOutcome, Scenario, ScenarioError, ScenarioReport};
use rrb_kernels::{rsk_nop, AccessKind};
use rrb_sim::{CoreId, MachineConfig, Program, SimError};

/// A naive `ubd_m` estimate and the measurements behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveEstimate {
    /// `det / nr`, the slowdown-per-request reading.
    pub ubd_m_det_over_nr: u64,
    /// The largest per-request delay visible on the performance counters
    /// (what an analyst with PMC access would report instead).
    pub ubd_m_max_gamma: u64,
    /// The underlying paired measurement.
    pub measurement: SlowdownMeasurement,
}

impl NaiveEstimate {
    /// The estimate an analyst would quote: the larger of the two
    /// readings (conservative practice).
    pub fn ubd_m(&self) -> u64 {
        self.ubd_m_det_over_nr.max(self.ubd_m_max_gamma)
    }

    fn from_measurement(measurement: SlowdownMeasurement) -> Result<Self, RunError> {
        Ok(NaiveEstimate {
            ubd_m_det_over_nr: measurement.naive_ubd_m().ok_or(RunError::NoBusRequests)?,
            ubd_m_max_gamma: measurement.contended.gamma_histogram.max().unwrap_or(0),
            measurement,
        })
    }
}

/// The naive estimator as a campaign-ready scenario: one
/// isolated/contended pair of the given scua against saturating rsk
/// contenders.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveScenario {
    /// Scenario name (campaign record key).
    pub name: String,
    /// The platform under test.
    pub machine: MachineConfig,
    /// The software component under analysis.
    pub scua: Program,
    /// Access kind of the stressing contenders.
    pub contender_access: AccessKind,
}

impl NaiveScenario {
    /// A scenario with the default name `"naive"`.
    pub fn new(machine: MachineConfig, scua: Program, contender_access: AccessKind) -> Self {
        NaiveScenario { name: String::from("naive"), machine, scua, contender_access }
    }

    /// Renames the scenario (builder style).
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Reduces the outcomes of [`Scenario::plan`] to an estimate.
    ///
    /// # Errors
    ///
    /// Returns a failed run's [`RunError`], or
    /// [`RunError::NoBusRequests`] when the scua never touched the bus.
    pub fn estimate(&self, outcomes: &[RunOutcome]) -> Result<NaiveEstimate, RunError> {
        assert_eq!(outcomes.len(), 2, "outcome count must match the plan");
        let isolated = IsolatedRun::from(outcomes[0].measurement()?.clone());
        let contended = ContendedRun::from(outcomes[1].measurement()?.clone());
        NaiveEstimate::from_measurement(SlowdownMeasurement { isolated, contended })
    }
}

impl Scenario for NaiveScenario {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn plan(&self) -> Result<Vec<RunSpec>, ScenarioError> {
        self.machine.validate().map_err(SimError::from)?;
        Ok(vec![
            RunSpec::isolated("isolated", self.machine.clone(), self.scua.clone()),
            RunSpec::contended_rsk(
                "contended",
                self.machine.clone(),
                self.scua.clone(),
                self.contender_access,
            ),
        ])
    }

    fn analyze(&self, outcomes: &[RunOutcome]) -> ScenarioReport {
        match self.estimate(outcomes) {
            Ok(e) => ScenarioReport::success(
                self.name(),
                format!(
                    "naive ubd_m = {} (det/nr {}, max gamma {})",
                    e.ubd_m(),
                    e.ubd_m_det_over_nr,
                    e.ubd_m_max_gamma
                ),
            )
            .with("ubd_m", MetricValue::U64(e.ubd_m()))
            .with("ubd_m_det_over_nr", MetricValue::U64(e.ubd_m_det_over_nr))
            .with("ubd_m_max_gamma", MetricValue::U64(e.ubd_m_max_gamma)),
            Err(e) => ScenarioReport::failure(self.name(), e),
        }
    }
}

fn run_scenario(scenario: &NaiveScenario) -> Result<NaiveEstimate, RunError> {
    let specs = scenario.plan().map_err(|e| match e {
        ScenarioError::Config(e) => RunError::Sim(e),
        ScenarioError::Analysis(msg) => RunError::Analysis(msg),
    })?;
    let results = Executor::new().execute(&specs).0;
    let outcomes: Vec<RunOutcome> = specs
        .into_iter()
        .zip(results)
        .map(|(spec, result)| RunOutcome { label: spec.label, result })
        .collect();
    scenario.estimate(&outcomes)
}

/// The "scua against rsk" estimator (§3.1): run an arbitrary software
/// component against `Nc − 1` stressing kernels and read `det / nr`.
///
/// # Errors
///
/// Returns [`RunError`] if either run fails or the scua made no bus
/// requests.
pub fn naive_scua_vs_rsk(
    cfg: &MachineConfig,
    scua_program: Program,
    contender_access: AccessKind,
) -> Result<NaiveEstimate, RunError> {
    run_scenario(&NaiveScenario::new(cfg.clone(), scua_program, contender_access))
}

/// The "rsk against rsk" estimator (§3.2): the scua is itself a stressing
/// kernel, maximising the chance every request meets full contention —
/// and still falling short of `ubd` because of the synchrony effect.
///
/// # Errors
///
/// Returns [`RunError`] if either run fails.
pub fn naive_rsk_vs_rsk(
    cfg: &MachineConfig,
    access: AccessKind,
    iterations: u64,
) -> Result<NaiveEstimate, RunError> {
    let scua = rsk_nop(access, 0, cfg, CoreId::new(0), iterations);
    naive_scua_vs_rsk(cfg, scua, access)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rsk_vs_rsk_on_ref_reads_26() {
        // Fig. 6(b): ubd_m = 26 on the reference architecture; truth 27.
        let cfg = MachineConfig::ngmp_ref();
        let e = naive_rsk_vs_rsk(&cfg, AccessKind::Load, 500).expect("run");
        assert_eq!(e.ubd_m_max_gamma, 26);
        assert!(e.ubd_m() < cfg.ubd());
    }

    #[test]
    fn rsk_vs_rsk_on_var_reads_23() {
        // Fig. 6(b): ubd_m = 23 on the variant architecture (δ_rsk = 4).
        let cfg = MachineConfig::ngmp_var();
        let e = naive_rsk_vs_rsk(&cfg, AccessKind::Load, 500).expect("run");
        assert_eq!(e.ubd_m_max_gamma, 23);
    }

    #[test]
    fn det_over_nr_is_close_to_but_below_max_gamma() {
        let cfg = MachineConfig::ngmp_ref();
        let e = naive_rsk_vs_rsk(&cfg, AccessKind::Load, 500).expect("run");
        assert!(e.ubd_m_det_over_nr <= e.ubd_m_max_gamma + 1);
        assert!(e.ubd_m_det_over_nr >= 20);
    }

    #[test]
    fn eembc_scua_reads_even_lower() {
        // An arbitrary scua aligns even worse than an rsk (§3.1): its
        // requests rarely meet the worst alignment.
        use rrb_kernels::AutobenchKernel;
        let cfg = MachineConfig::ngmp_ref();
        let scua = AutobenchKernel::Canrdr.profile().program(&cfg, CoreId::new(0), 3, Some(100));
        let e = naive_scua_vs_rsk(&cfg, scua, AccessKind::Load).expect("run");
        assert!(e.ubd_m() <= cfg.ubd());
        // det/nr averages over well-aligned requests: clearly below ubd.
        assert!(e.ubd_m_det_over_nr < cfg.ubd());
    }

    #[test]
    fn busless_scua_is_a_no_bus_requests_error() {
        // An empty scua performs no bus requests: nr = 0 must surface as
        // a typed error, not a panic.
        let cfg = MachineConfig::toy(4, 2);
        match naive_scua_vs_rsk(&cfg, Program::empty(), AccessKind::Load) {
            Err(RunError::NoBusRequests) => {}
            other => panic!("expected NoBusRequests, got {other:?}"),
        }
    }

    #[test]
    fn naive_scenario_reports_metrics() {
        let cfg = MachineConfig::toy(4, 2);
        let scua = rsk_nop(AccessKind::Load, 0, &cfg, CoreId::new(0), 120);
        let scenario = NaiveScenario::new(cfg, scua, AccessKind::Load).named("toy-naive");
        let specs = scenario.plan().expect("plan");
        let results = Executor::new().execute(&specs).0;
        let outcomes: Vec<RunOutcome> = specs
            .into_iter()
            .zip(results)
            .map(|(s, result)| RunOutcome { label: s.label, result })
            .collect();
        let report = scenario.analyze(&outcomes);
        assert!(report.is_ok());
        assert_eq!(report.metric_u64("ubd_m_max_gamma"), Some(5));
    }
}
