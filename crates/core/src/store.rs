//! Persistent, content-addressed result store: `RunSpec` → measurement.
//!
//! The methodology is a campaign of *fully deterministic* simulations,
//! so a run's result is a pure function of its [`RunSpec`]. PR 4 gave
//! every spec a stable FNV digest ([`RunSpec::spec_hash`]); this module
//! turns that digest into a durable cache key: a [`ResultStore`] is a
//! directory (`.rrb-cache/` by default) holding one JSON entry per
//! executed run, so re-running a campaign — after a crash, in the next
//! CI job, with one more grid axis — only simulates what changed.
//!
//! Safety properties, in the order they are enforced on a lookup:
//!
//! 1. **Invalidation**: the store manifest records a *simulator
//!    fingerprint* ([`sim_fingerprint`]) — a golden-trace-style digest
//!    of two probe simulations, recomputed by the running binary —
//!    plus the entry-format version. Entries written by a build with
//!    different simulator semantics are purged wholesale at open.
//! 2. **Integrity**: every entry carries `payload_hash`, the
//!    [`fnv1a_64`] of its canonical payload rendering. Truncated,
//!    bit-flipped, or half-written files fail the check and are
//!    reported as a warning, never reused.
//! 3. **Structural confirmation**: the entry stores the *complete*
//!    canonical serialisation of its spec (machine, scua, contenders —
//!    labels excluded, exactly like campaign dedup). A hash hit is only
//!    a hit if the stored spec equals the queried one byte for byte, so
//!    an FNV collision costs one re-execution, never a wrong result.
//!
//! Writes are atomic (unique temp file in the same directory, then
//! `rename`), so concurrent campaigns sharing a store can only observe
//! complete entries or no entry. Failed runs are never cached: errors
//! re-execute, which keeps a transiently bad environment from poisoning
//! the store.
//!
//! ```
//! use rrb::campaign::{Campaign, CampaignGrid, GridScenario};
//! use rrb::store::ResultStore;
//! use rrb_sim::MachineConfig;
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join(format!("rrb-store-doc-{}", std::process::id()));
//! let grid = CampaignGrid::new(GridScenario::Naive, MachineConfig::toy(4, 2));
//! let store = Arc::new(ResultStore::open(&dir).unwrap());
//! let cold = Campaign::builder().grid(&grid).store(store.clone()).build().run();
//! let warm = Campaign::builder().grid(&grid).store(store).build().run();
//! assert_eq!(warm.stats.executed_runs, 0, "warm re-run simulates nothing");
//! assert_eq!(cold.to_json(), warm.to_json());
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::campaign::{RunMeasurement, RunSpec};
use crate::json::{fnv1a_64, Json};
use crate::spec::MachineSpec;
use rrb_analysis::Histogram;
use rrb_kernels::{rsk, rsk_nop, AccessKind};
use rrb_sim::{BusOpKind, CoreId, Machine, MachineConfig, Program, TraceEvent};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::SystemTime;

/// The on-disk entry/manifest format version. Bump on any layout change
/// so older stores are purged instead of misread.
pub const STORE_FORMAT_VERSION: u64 = 1;

/// Environment variable overriding the default store directory.
pub const CACHE_DIR_ENV: &str = "RRB_CACHE_DIR";

/// The default store directory, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = ".rrb-cache";

// ---------------------------------------------------------------------
// Simulator fingerprint
// ---------------------------------------------------------------------

/// A golden-trace-style digest of the running simulator's semantics.
///
/// Two fixed probe workloads — a contended rsk-nop run on the toy
/// single-bus machine and one on the two-level (bus + memory
/// controller) NGMP preset — are simulated and their full event
/// streams, cycle counts, and utilisations folded into one FNV-1a
/// digest. Any change to simulation *semantics* (arbitration, timing,
/// cache behaviour, γ accounting) moves the fingerprint and thereby
/// invalidates every store entry; pure performance work (e.g. better
/// quiescence skipping) leaves it unchanged, because only architectural
/// outputs are hashed.
///
/// The digest is computed once per process and memoised.
pub fn sim_fingerprint() -> u64 {
    static FINGERPRINT: OnceLock<u64> = OnceLock::new();
    *FINGERPRINT.get_or_init(|| {
        let mut h = crate::json::Fnv64Hasher::new();
        use std::hash::Hasher as _;
        let push = |h: &mut crate::json::Fnv64Hasher, word: u64| h.write(&word.to_le_bytes());
        for cfg in [MachineConfig::toy(4, 2), MachineConfig::ngmp_two_level()] {
            let mut cfg = cfg;
            cfg.record_trace = true;
            let mut m = Machine::new(cfg.clone()).expect("probe config is valid");
            m.load_program(CoreId::new(0), rsk_nop(AccessKind::Load, 2, &cfg, CoreId::new(0), 20));
            for i in 1..cfg.num_cores {
                let id = CoreId::new(i);
                m.load_program(id, rsk(AccessKind::Load, &cfg, id));
            }
            let summary = m.run().expect("probe run succeeds");
            for ev in m.trace().events() {
                match *ev {
                    TraceEvent::Ready { resource, core, cycle, kind } => {
                        for w in [1, resource.index() as u64, core.index() as u64, cycle, op(kind)]
                        {
                            push(&mut h, w);
                        }
                    }
                    TraceEvent::Grant { resource, core, cycle, gamma, occupancy, kind } => {
                        for w in [
                            2,
                            resource.index() as u64,
                            core.index() as u64,
                            cycle,
                            gamma,
                            occupancy,
                            op(kind),
                        ] {
                            push(&mut h, w);
                        }
                    }
                    TraceEvent::Complete { resource, core, cycle, kind } => {
                        for w in [3, resource.index() as u64, core.index() as u64, cycle, op(kind)]
                        {
                            push(&mut h, w);
                        }
                    }
                }
            }
            push(&mut h, summary.cycles);
            push(&mut h, summary.bus_utilization.to_bits());
            push(&mut h, summary.core(CoreId::new(0)).execution_time().unwrap_or(u64::MAX));
        }
        h.finish()
    })
}

fn op(kind: BusOpKind) -> u64 {
    match kind {
        BusOpKind::Load => 0,
        BusOpKind::Ifetch => 1,
        BusOpKind::Store => 2,
        BusOpKind::MissResponse => 3,
    }
}

// ---------------------------------------------------------------------
// Errors, lookups, reports
// ---------------------------------------------------------------------

/// Why a store could not be opened or written.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// What the store was doing.
        action: String,
        /// The underlying I/O error text.
        error: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { action, error } => write!(f, "result store: {action}: {error}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(action: impl Into<String>) -> impl FnOnce(std::io::Error) -> StoreError {
    let action = action.into();
    move |e| StoreError::Io { action, error: e.to_string() }
}

/// The outcome of a [`ResultStore::lookup`].
#[derive(Debug, Clone, PartialEq)]
pub enum StoreLookup {
    /// A valid, structurally confirmed entry.
    Hit(RunMeasurement),
    /// No entry for this spec.
    Miss,
    /// An entry exists but cannot be trusted (truncated, bit-flipped,
    /// wrong version, stale fingerprint, or a hash collision). The run
    /// re-executes and the reason is surfaced as a campaign warning.
    Rejected(String),
}

/// Aggregate facts about a store, for `rrb cache stats`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// The store directory.
    pub dir: PathBuf,
    /// Entry-format version of this build.
    pub format: u64,
    /// Simulator fingerprint of this build.
    pub fingerprint: u64,
    /// Number of entry files.
    pub entries: u64,
    /// Total size of entry files in bytes.
    pub bytes: u64,
    /// Leftover temporary files (in-flight or abandoned writers).
    pub temp_files: u64,
}

/// The outcome of a full `rrb cache verify` sweep.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerifyReport {
    /// Entries that passed every check.
    pub ok: u64,
    /// `(file name, problem)` for every entry that failed.
    pub problems: Vec<(String, String)>,
}

/// What `rrb cache gc` did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Entries examined.
    pub examined: u64,
    /// Files removed (invalid entries, expired entries, temp files).
    pub removed: u64,
    /// Bytes freed.
    pub removed_bytes: u64,
    /// Entries kept.
    pub kept: u64,
    /// Bytes still in the store.
    pub kept_bytes: u64,
}

// ---------------------------------------------------------------------
// ResultStore
// ---------------------------------------------------------------------

/// A persistent, content-addressed map from [`RunSpec::spec_hash`] to
/// the run's measurement. See the [module docs](self) for layout and
/// guarantees.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    entries: PathBuf,
    fingerprint: u64,
    tmp_counter: AtomicU64,
}

impl ResultStore {
    /// Resolves the store directory from (in priority order) an explicit
    /// flag value, the `RRB_CACHE_DIR` environment variable, and the
    /// [`DEFAULT_CACHE_DIR`] fallback.
    pub fn resolve_dir(flag: Option<&str>) -> PathBuf {
        match flag {
            Some(dir) => PathBuf::from(dir),
            None => match std::env::var(CACHE_DIR_ENV) {
                Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
                _ => PathBuf::from(DEFAULT_CACHE_DIR),
            },
        }
    }

    /// Opens (creating if needed) the store at `dir`.
    ///
    /// The manifest is checked against this build's entry format and
    /// simulator fingerprint; on mismatch every existing entry is purged
    /// — they describe a different simulator — and a fresh manifest is
    /// written atomically.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the directory or manifest cannot be
    /// created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let entries = dir.join("entries");
        std::fs::create_dir_all(&entries)
            .map_err(io_err(format!("create `{}`", entries.display())))?;
        let store = ResultStore {
            dir,
            entries,
            fingerprint: sim_fingerprint(),
            tmp_counter: AtomicU64::new(0),
        };
        let manifest = store.manifest_json().render_pretty();
        let manifest_path = store.dir.join("manifest.json");
        let current = std::fs::read_to_string(&manifest_path).unwrap_or_default();
        if current != manifest {
            if !current.is_empty() {
                // A manifest from another build: its entries are stale.
                store.purge_entries();
            }
            store.write_atomic_in_dir(&manifest_path, &manifest)?;
        }
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The simulator fingerprint entries are keyed under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn manifest_json(&self) -> Json {
        Json::obj(vec![
            ("format", Json::U64(STORE_FORMAT_VERSION)),
            ("fingerprint", Json::U64(self.fingerprint)),
        ])
    }

    fn entry_path(&self, spec_hash: u64) -> PathBuf {
        self.entries.join(format!("{spec_hash:016x}.json"))
    }

    fn purge_entries(&self) {
        if let Ok(read) = std::fs::read_dir(&self.entries) {
            for file in read.flatten() {
                let _ = std::fs::remove_file(file.path());
            }
        }
    }

    /// Writes `contents` to `path` atomically: a uniquely named temp
    /// file in the same directory, flushed, then renamed over the
    /// destination. Readers only ever observe complete files.
    fn write_atomic_in_dir(&self, path: &Path, contents: &str) -> Result<(), StoreError> {
        let tmp = path.with_extension(format!(
            "tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        write_atomic_via(&tmp, path, contents)
    }

    /// Looks `spec` up. Never panics and never errors: anything short of
    /// a valid, structurally confirmed entry is a [`StoreLookup::Miss`]
    /// or a [`StoreLookup::Rejected`] with the reason.
    pub fn lookup(&self, spec: &RunSpec) -> StoreLookup {
        let spec_hash = spec.spec_hash();
        let path = self.entry_path(spec_hash);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return StoreLookup::Miss,
            Err(e) => return StoreLookup::Rejected(format!("unreadable entry: {e}")),
        };
        match self.decode_entry(&text, Some(spec_hash), Some(spec)) {
            Ok(measurement) => StoreLookup::Hit(measurement),
            Err(reason) => StoreLookup::Rejected(format!("{}: {reason}", file_name(&path))),
        }
    }

    /// Answers a point query by content address: reads and fully
    /// validates the entry stored under `spec_hash` (format version,
    /// simulator fingerprint, content address, integrity hash) and
    /// returns its payload — the canonical spec plus the measurement —
    /// as JSON. This is the `rrb serve` `GET /v1/runs/{hash}` backend.
    ///
    /// Returns `Ok(None)` when no entry exists under that address.
    ///
    /// # Errors
    ///
    /// Returns the human-readable reason when an entry exists but
    /// cannot be trusted (unreadable, corrupt, stale fingerprint, or
    /// mis-addressed).
    pub fn entry_payload(&self, spec_hash: u64) -> Result<Option<Json>, String> {
        let path = self.entry_path(spec_hash);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("unreadable entry: {e}")),
        };
        self.decode_entry(&text, Some(spec_hash), None)
            .map_err(|reason| format!("{}: {reason}", file_name(&path)))?;
        match Json::parse(&text) {
            Ok(v) => match v.get("payload") {
                Some(payload) => Ok(Some(payload.clone())),
                None => Err(String::from("corrupt entry: no `payload`")),
            },
            Err(e) => Err(format!("corrupt entry (not valid JSON): {e}")),
        }
    }

    /// Records a successful run. Failed runs are never inserted.
    ///
    /// Returns `false` (without writing) when the measurement contains a
    /// non-finite float, which the JSON round trip cannot preserve
    /// bit-exactly — such runs simply stay uncached.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] when the entry cannot be written; callers
    /// downgrade this to a warning (a broken cache must never fail a
    /// run that already succeeded).
    pub fn insert(&self, spec: &RunSpec, m: &RunMeasurement) -> Result<bool, StoreError> {
        if !m.bus_utilization.is_finite() || m.mc_utilization.is_some_and(|u| !u.is_finite()) {
            return Ok(false);
        }
        let entry = encode_entry(self.fingerprint, spec, m);
        self.write_atomic_in_dir(&self.entry_path(spec.spec_hash()), &entry.render_pretty())?;
        Ok(true)
    }

    /// Decodes and fully validates one entry against this store's
    /// fingerprint (see the free [`decode_entry`] for the pure logic).
    fn decode_entry(
        &self,
        text: &str,
        expect_hash: Option<u64>,
        confirm: Option<&RunSpec>,
    ) -> Result<RunMeasurement, String> {
        decode_entry(text, self.fingerprint, expect_hash, confirm)
    }

    /// Facts for `rrb cache stats`.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats {
            dir: self.dir.clone(),
            format: STORE_FORMAT_VERSION,
            fingerprint: self.fingerprint,
            entries: 0,
            bytes: 0,
            temp_files: 0,
        };
        for (path, len, _) in self.entry_files() {
            if is_temp(&path) {
                stats.temp_files += 1;
            } else {
                stats.entries += 1;
                stats.bytes += len;
            }
        }
        stats
    }

    /// Validates every entry (integrity, version, fingerprint, content
    /// address — everything except structural confirmation, which needs
    /// a querying spec).
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport::default();
        for (path, _, _) in self.entry_files() {
            if is_temp(&path) {
                report.problems.push((file_name(&path), String::from("leftover temporary file")));
                continue;
            }
            let named_hash = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| u64::from_str_radix(s, 16).ok());
            let result = match (std::fs::read_to_string(&path), named_hash) {
                (Err(e), _) => Err(format!("unreadable: {e}")),
                (_, None) => Err(String::from("file name is not a 64-bit content address")),
                (Ok(text), Some(hash)) => self.decode_entry(&text, Some(hash), None).map(|_| ()),
            };
            match result {
                Ok(()) => report.ok += 1,
                Err(problem) => report.problems.push((file_name(&path), problem)),
            }
        }
        report.problems.sort();
        report
    }

    /// Removes invalid entries and temp files, then entries older than
    /// `max_age_secs`, then the oldest entries until the store is within
    /// `max_size_bytes`.
    pub fn gc(&self, max_age_secs: Option<u64>, max_size_bytes: Option<u64>) -> GcReport {
        let mut report = GcReport::default();
        let now = SystemTime::now();
        let mut live: Vec<(PathBuf, u64, SystemTime)> = Vec::new();
        for (path, len, modified) in self.entry_files() {
            report.examined += 1;
            let invalid = is_temp(&path)
                || match std::fs::read_to_string(&path) {
                    Ok(text) => self.decode_entry(&text, None, None).is_err(),
                    Err(_) => true,
                };
            let expired = max_age_secs.is_some_and(|max| {
                now.duration_since(modified).ok().is_none_or(|age| age.as_secs() >= max)
            });
            if invalid || expired {
                remove(&path, len, &mut report);
            } else {
                live.push((path, len, modified));
            }
        }
        if let Some(max) = max_size_bytes {
            // Oldest first, so the survivors are the freshest entries.
            live.sort_by_key(|&(_, _, modified)| modified);
            let mut total: u64 = live.iter().map(|&(_, len, _)| len).sum();
            let mut keep = Vec::new();
            for (path, len, modified) in live {
                if total > max {
                    total -= len;
                    remove(&path, len, &mut report);
                } else {
                    keep.push((path, len, modified));
                }
            }
            live = keep;
        }
        report.kept = live.len() as u64;
        report.kept_bytes = live.iter().map(|&(_, len, _)| len).sum();
        report
    }

    /// Every file in the entries directory as `(path, len, mtime)`.
    fn entry_files(&self) -> Vec<(PathBuf, u64, SystemTime)> {
        let mut out = Vec::new();
        if let Ok(read) = std::fs::read_dir(&self.entries) {
            for file in read.flatten() {
                let path = file.path();
                if let Ok(meta) = file.metadata() {
                    let modified = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                    out.push((path, meta.len(), modified));
                }
            }
        }
        out.sort();
        out
    }
}

fn remove(path: &Path, len: u64, report: &mut GcReport) {
    if std::fs::remove_file(path).is_ok() {
        report.removed += 1;
        report.removed_bytes += len;
    }
}

fn is_temp(path: &Path) -> bool {
    path.extension().and_then(|e| e.to_str()).is_some_and(|e| e.starts_with("tmp-"))
}

fn file_name(path: &Path) -> String {
    path.file_name().and_then(|n| n.to_str()).unwrap_or("<entry>").to_string()
}

/// Writes `contents` to `path` via `tmp` (same directory) and an atomic
/// rename, cleaning the temp file up on failure.
fn write_atomic_via(tmp: &Path, path: &Path, contents: &str) -> Result<(), StoreError> {
    std::fs::write(tmp, contents).map_err(|e| {
        // A partial temp (disk full, kill mid-write) is garbage: best-
        // effort removal so it cannot linger as a verify/gc problem.
        let _ = std::fs::remove_file(tmp);
        io_err(format!("write `{}`", tmp.display()))(e)
    })?;
    std::fs::rename(tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(tmp);
        io_err(format!("rename `{}` into place", tmp.display()))(e)
    })
}

/// Writes `contents` to `path` atomically (temp file alongside the
/// destination, then rename) — the write discipline every result file
/// in this workspace uses, so an interrupted process never leaves a
/// half-written artifact at a published path.
///
/// # Errors
///
/// Returns [`StoreError`] when the temp file cannot be written or the
/// rename fails.
pub fn write_file_atomic(path: impl AsRef<Path>, contents: &str) -> Result<(), StoreError> {
    let path = path.as_ref();
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    write_atomic_via(&tmp, path, contents)
}

// ---------------------------------------------------------------------
// Entry codec: pure functions (no filesystem), unit-testable under Miri
// ---------------------------------------------------------------------

/// Encodes one complete entry document: format version, simulator
/// fingerprint, content address, integrity hash, and the full payload.
fn encode_entry(fingerprint: u64, spec: &RunSpec, m: &RunMeasurement) -> Json {
    let payload =
        Json::obj(vec![("spec", spec_to_json(spec)), ("measurement", measurement_to_json(m))]);
    let payload_hash = fnv1a_64(payload.render_compact().as_bytes());
    Json::obj(vec![
        ("format", Json::U64(STORE_FORMAT_VERSION)),
        ("fingerprint", Json::U64(fingerprint)),
        ("spec_hash", Json::U64(spec.spec_hash())),
        ("payload_hash", Json::U64(payload_hash)),
        ("payload", payload),
    ])
}

/// Decodes and fully validates one entry. `fingerprint` is the current
/// build's simulator fingerprint; `expect_hash` pins the content address
/// (from the file name or the querying spec); `confirm` is the queried
/// spec for structural confirmation.
fn decode_entry(
    text: &str,
    fingerprint: u64,
    expect_hash: Option<u64>,
    confirm: Option<&RunSpec>,
) -> Result<RunMeasurement, String> {
    let v = Json::parse(text).map_err(|e| format!("corrupt entry (not valid JSON): {e}"))?;
    let field = |key: &str| {
        v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("corrupt entry: no `{key}`"))
    };
    let format = field("format")?;
    if format != STORE_FORMAT_VERSION {
        return Err(format!("entry format {format} but this build writes {STORE_FORMAT_VERSION}"));
    }
    let entry_fingerprint = field("fingerprint")?;
    if entry_fingerprint != fingerprint {
        return Err(format!(
            "stale simulator fingerprint {entry_fingerprint:016x} (current {fingerprint:016x})"
        ));
    }
    let spec_hash = field("spec_hash")?;
    if let Some(expected) = expect_hash {
        if spec_hash != expected {
            return Err(format!(
                "content address mismatch: entry claims {spec_hash:016x}, expected \
                 {expected:016x}"
            ));
        }
    }
    let payload = v.get("payload").ok_or("corrupt entry: no `payload`")?;
    if fnv1a_64(payload.render_compact().as_bytes()) != field("payload_hash")? {
        return Err(String::from("integrity hash mismatch (truncated or bit-flipped entry)"));
    }
    if let Some(spec) = confirm {
        let stored = payload.get("spec").ok_or("corrupt entry: no `payload.spec`")?;
        if stored.render_compact() != spec_to_json(spec).render_compact() {
            return Err(String::from(
                "spec-hash collision: stored spec differs structurally from the queried one",
            ));
        }
    }
    let m = payload.get("measurement").ok_or("corrupt entry: no `payload.measurement`")?;
    measurement_from_json(m)
}

// ---------------------------------------------------------------------
// Canonical serialisation: RunSpec (confirmation) and RunMeasurement
// ---------------------------------------------------------------------

/// The canonical, label-free serialisation of a spec: machine (via the
/// lossless [`MachineSpec`] mapping) plus every program, instruction by
/// instruction. Injective by construction, so byte equality of the
/// rendering is structural equality of the measurement-relevant spec.
fn spec_to_json(spec: &RunSpec) -> Json {
    Json::obj(vec![
        ("machine", MachineSpec(spec.cfg.clone()).to_json()),
        ("scua", program_to_json(&spec.scua)),
        ("contenders", Json::Arr(spec.contenders.iter().map(program_to_json).collect())),
    ])
}

fn program_to_json(p: &Program) -> Json {
    Json::obj(vec![
        // `Instr`'s Display form is injective (`ld 0x..`, `st 0x..`,
        // `nop`, `alu(n)`, `br`), so the token list is a faithful body.
        ("body", Json::Arr(p.body().iter().map(|i| Json::str(i.to_string())).collect())),
        ("iterations", Json::option(p.iterations().finite(), Json::U64)),
    ])
}

fn histogram_to_json(h: &Histogram) -> Json {
    Json::Arr(h.iter().map(|(v, n)| Json::Arr(vec![Json::U64(v), Json::U64(n)])).collect())
}

fn histogram_from_json(v: &Json, what: &str) -> Result<Histogram, String> {
    let items = v.as_array().ok_or_else(|| format!("corrupt entry: `{what}` is not an array"))?;
    let mut bins = Vec::with_capacity(items.len());
    for item in items {
        match item.as_array() {
            Some([value, count]) => match (value.as_u64(), count.as_u64()) {
                (Some(v), Some(n)) => bins.push((v, n)),
                _ => return Err(format!("corrupt entry: non-integer bin in `{what}`")),
            },
            _ => return Err(format!("corrupt entry: malformed bin in `{what}`")),
        }
    }
    Ok(Histogram::from_bins(bins))
}

fn measurement_to_json(m: &RunMeasurement) -> Json {
    Json::obj(vec![
        ("execution_time", Json::U64(m.execution_time)),
        ("bus_requests", Json::U64(m.bus_requests)),
        ("instructions", Json::U64(m.instructions)),
        ("gamma_histogram", histogram_to_json(&m.gamma_histogram)),
        ("mc_gamma_histogram", histogram_to_json(&m.mc_gamma_histogram)),
        ("contender_histogram", histogram_to_json(&m.contender_histogram)),
        ("bus_utilization", Json::F64(m.bus_utilization)),
        ("mc_utilization", Json::option(m.mc_utilization, Json::F64)),
    ])
}

fn measurement_from_json(v: &Json) -> Result<RunMeasurement, String> {
    let u64_field = |key: &str| {
        v.get(key).and_then(Json::as_u64).ok_or_else(|| format!("corrupt entry: no `{key}`"))
    };
    Ok(RunMeasurement {
        execution_time: u64_field("execution_time")?,
        bus_requests: u64_field("bus_requests")?,
        instructions: u64_field("instructions")?,
        gamma_histogram: histogram_from_json(
            v.get("gamma_histogram").ok_or("corrupt entry: no `gamma_histogram`")?,
            "gamma_histogram",
        )?,
        mc_gamma_histogram: histogram_from_json(
            v.get("mc_gamma_histogram").ok_or("corrupt entry: no `mc_gamma_histogram`")?,
            "mc_gamma_histogram",
        )?,
        contender_histogram: histogram_from_json(
            v.get("contender_histogram").ok_or("corrupt entry: no `contender_histogram`")?,
            "contender_histogram",
        )?,
        bus_utilization: v
            .get("bus_utilization")
            .and_then(Json::as_f64)
            .ok_or("corrupt entry: no `bus_utilization`")?,
        mc_utilization: match v.get("mc_utilization") {
            Some(Json::Null) => None,
            Some(other) => Some(other.as_f64().ok_or("corrupt entry: bad `mc_utilization`")?),
            None => return Err(String::from("corrupt entry: no `mc_utilization`")),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use rrb_kernels::rsk_nop;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rrb-store-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn toy_spec(k: usize) -> RunSpec {
        let cfg = MachineConfig::toy(4, 2);
        let scua = rsk_nop(AccessKind::Load, k, &cfg, CoreId::new(0), 30);
        RunSpec::contended_rsk(format!("k={k}"), cfg, scua, AccessKind::Load)
    }

    /// A hand-built measurement (no simulation) for the pure codec tests.
    fn toy_measurement() -> RunMeasurement {
        RunMeasurement {
            execution_time: 1234,
            bus_requests: 56,
            instructions: 789,
            gamma_histogram: [0u64, 2, 2, 6].into_iter().collect(),
            mc_gamma_histogram: Histogram::new(),
            contender_histogram: [3u64, 3, 3].into_iter().collect(),
            bus_utilization: 0.625,
            mc_utilization: None,
        }
    }

    // The `entry_*` tests exercise the pure encode/decode codec with no
    // filesystem or simulation — CI runs them (plus the `json` module)
    // under Miri, where a full machine run would be prohibitively slow.

    #[test]
    fn entry_codec_round_trips_without_touching_disk() {
        let spec = toy_spec(1);
        let m = toy_measurement();
        let text = encode_entry(0xfeed, &spec, &m).render_pretty();
        let back =
            decode_entry(&text, 0xfeed, Some(spec.spec_hash()), Some(&spec)).expect("valid entry");
        assert_eq!(back, m);
        assert_eq!(back.bus_utilization.to_bits(), m.bus_utilization.to_bits());
    }

    #[test]
    fn entry_decode_rejects_stale_fingerprint_and_wrong_address() {
        let spec = toy_spec(1);
        let text = encode_entry(0xfeed, &spec, &toy_measurement()).render_pretty();
        let e = decode_entry(&text, 0xbeef, None, None).expect_err("stale fingerprint");
        assert!(e.contains("fingerprint"), "{e}");
        let e = decode_entry(&text, 0xfeed, Some(spec.spec_hash() ^ 1), None)
            .expect_err("wrong content address");
        assert!(e.contains("content address"), "{e}");
    }

    #[test]
    fn entry_decode_rejects_corruption_and_collisions() {
        let spec = toy_spec(1);
        let text = encode_entry(0xfeed, &spec, &toy_measurement()).render_pretty();
        // Bit-flip inside the payload: integrity hash must catch it.
        let flipped = text.replacen("1234", "1235", 1);
        let e = decode_entry(&flipped, 0xfeed, None, None).expect_err("bit flip");
        assert!(e.contains("integrity"), "{e}");
        // Structural confirmation against a different queried spec.
        let other = toy_spec(2);
        let e = decode_entry(&text, 0xfeed, None, Some(&other)).expect_err("collision");
        assert!(e.contains("collision"), "{e}");
        // Truncation is not even valid JSON.
        let e = decode_entry(&text[..text.len() / 2], 0xfeed, None, None).expect_err("truncated");
        assert!(e.contains("JSON"), "{e}");
    }

    #[test]
    fn round_trips_a_measurement_bit_exactly() {
        let dir = scratch("roundtrip");
        let store = ResultStore::open(&dir).expect("open");
        let spec = toy_spec(1);
        let m = Executor::new().run(&spec).expect("run");
        assert!(store.insert(&spec, &m).expect("insert"));
        match store.lookup(&spec) {
            StoreLookup::Hit(back) => {
                assert_eq!(back, m);
                assert_eq!(back.bus_utilization.to_bits(), m.bus_utilization.to_bits());
            }
            other => panic!("expected a hit, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn lookup_misses_cleanly_and_labels_do_not_matter() {
        let dir = scratch("miss");
        let store = ResultStore::open(&dir).expect("open");
        let spec = toy_spec(2);
        assert_eq!(store.lookup(&spec), StoreLookup::Miss);
        let m = Executor::new().run(&spec).expect("run");
        store.insert(&spec, &m).expect("insert");
        let mut relabelled = toy_spec(2);
        relabelled.label = String::from("another label");
        assert!(matches!(store.lookup(&relabelled), StoreLookup::Hit(_)));
        assert_eq!(store.lookup(&toy_spec(3)), StoreLookup::Miss);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn forged_content_address_fails_structural_confirmation() {
        // A valid entry copied to the wrong content address simulates a
        // spec-hash collision: the claimed hash matches the query, the
        // payload is intact, but the stored spec differs structurally.
        let dir = scratch("collision");
        let store = ResultStore::open(&dir).expect("open");
        let stored = toy_spec(1);
        let m = Executor::new().run(&stored).expect("run");
        store.insert(&stored, &m).expect("insert");
        let queried = toy_spec(4);
        let text = std::fs::read_to_string(store.entry_path(stored.spec_hash())).expect("read");
        let forged = text.replace(
            &format!("\"spec_hash\": {}", stored.spec_hash()),
            &format!("\"spec_hash\": {}", queried.spec_hash()),
        );
        std::fs::write(store.entry_path(queried.spec_hash()), forged).expect("write");
        match store.lookup(&queried) {
            StoreLookup::Rejected(reason) => {
                // The forged spec_hash changes the entry bytes outside
                // the payload, so either the integrity check or the
                // structural confirmation must refuse it.
                assert!(reason.contains("collision") || reason.contains("integrity"), "{reason}");
            }
            other => panic!("forged entry must be rejected, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn non_finite_measurements_stay_uncached() {
        let dir = scratch("nonfinite");
        let store = ResultStore::open(&dir).expect("open");
        let spec = toy_spec(1);
        let mut m = Executor::new().run(&spec).expect("run");
        m.bus_utilization = f64::NAN;
        assert!(!store.insert(&spec, &m).expect("insert refuses politely"));
        assert_eq!(store.lookup(&spec), StoreLookup::Miss);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn fingerprint_is_stable_within_a_process() {
        assert_eq!(sim_fingerprint(), sim_fingerprint());
        assert_ne!(sim_fingerprint(), 0);
    }

    #[test]
    fn reopening_with_matching_manifest_keeps_entries() {
        let dir = scratch("reopen");
        let spec = toy_spec(1);
        {
            let store = ResultStore::open(&dir).expect("open");
            let m = Executor::new().run(&spec).expect("run");
            store.insert(&spec, &m).expect("insert");
        }
        let store = ResultStore::open(&dir).expect("reopen");
        assert!(matches!(store.lookup(&spec), StoreLookup::Hit(_)));
        assert_eq!(store.stats().entries, 1);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn foreign_manifest_purges_stale_entries() {
        let dir = scratch("purge");
        let spec = toy_spec(1);
        {
            let store = ResultStore::open(&dir).expect("open");
            let m = Executor::new().run(&spec).expect("run");
            store.insert(&spec, &m).expect("insert");
        }
        // Simulate a build with different simulator semantics.
        std::fs::write(
            dir.join("manifest.json"),
            "{\n  \"format\": 1,\n  \"fingerprint\": 12345\n}\n",
        )
        .expect("write manifest");
        let store = ResultStore::open(&dir).expect("reopen");
        assert_eq!(store.stats().entries, 0, "stale entries are purged at open");
        assert_eq!(store.lookup(&spec), StoreLookup::Miss);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn gc_removes_expired_and_oversized_entries() {
        let dir = scratch("gc");
        let store = ResultStore::open(&dir).expect("open");
        for k in 0..3 {
            let spec = toy_spec(k);
            let m = Executor::new().run(&spec).expect("run");
            store.insert(&spec, &m).expect("insert");
        }
        // Drop a junk temp file and a corrupt entry into the store.
        std::fs::write(store.entries.join("dead.tmp-999"), "partial").expect("write");
        std::fs::write(store.entries.join("0000000000000bad.json"), "{").expect("write");
        let report = store.gc(None, None);
        assert_eq!(report.removed, 2, "temp + corrupt files go first: {report:?}");
        assert_eq!(report.kept, 3);

        // Size pressure evicts oldest-first down to the cap: one byte
        // under the current total forces out exactly the oldest entry.
        let report = store.gc(None, Some(report.kept_bytes - 1));
        assert_eq!(report.kept, 2, "{report:?}");
        assert_eq!(report.removed, 1, "{report:?}");

        // max-age 0 expires everything that remains.
        let report = store.gc(Some(0), None);
        assert_eq!(report.kept, 0, "{report:?}");
        assert_eq!(store.stats().entries, 0);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn verify_reports_each_kind_of_damage() {
        let dir = scratch("verify");
        let store = ResultStore::open(&dir).expect("open");
        let mut damage = Vec::new();
        for k in 1..=4 {
            let spec = toy_spec(k);
            let m = Executor::new().run(&spec).expect("run");
            store.insert(&spec, &m).expect("insert");
            damage.push(store.entry_path(spec.spec_hash()));
        }
        let rewrite = |path: &Path, f: &dyn Fn(String) -> String| {
            let text = std::fs::read_to_string(path).expect("read");
            std::fs::write(path, f(text)).expect("write");
        };
        // Entry 1 stays intact; the others take one kind of damage each,
        // in place, so the content address still matches.
        rewrite(&damage[1], &|t| t[..t.len() / 2].to_string()); // truncated
        rewrite(&damage[2], &|t| t.replace("\"execution_time\": ", "\"execution_time\": 1")); // bit flip
        rewrite(&damage[3], &|t| t.replace("\"format\": 1", "\"format\": 99")); // wrong version

        let report = store.verify();
        assert_eq!(report.ok, 1, "{report:?}");
        let reasons: Vec<&str> = report.problems.iter().map(|(_, p)| p.as_str()).collect();
        assert_eq!(reasons.len(), 3, "{report:?}");
        assert!(reasons.iter().any(|r| r.contains("not valid JSON")), "{reasons:?}");
        assert!(reasons.iter().any(|r| r.contains("integrity hash")), "{reasons:?}");
        assert!(reasons.iter().any(|r| r.contains("format 99")), "{reasons:?}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
