//! # rrb — measurement-based contention bounds for round-robin buses
//!
//! A full reproduction of *"Increasing Confidence on Measurement-Based
//! Contention Bounds for Real-Time Round-Robin Buses"* (Fernandez, Jalle,
//! Abella, Quiñones, Vardanega, Cazorla — DAC 2015).
//!
//! On a COTS multicore whose cores share a round-robin (RR) bus, the
//! worst-case delay one bus request can suffer is `ubd = (Nc-1)·l_bus`
//! (Eq. 1) — but `l_bus` is rarely documented, so `ubd` must be
//! *measured*. This crate implements:
//!
//! * the **naive estimators** used in prior practice ([`naive`]): run the
//!   software under analysis against resource-stressing kernels and read
//!   `ubd_m = det/nr` off the slowdown, or the largest observed
//!   per-request delay off the performance counters — both of which
//!   under-estimate `ubd` because of the *synchrony effect* (§3);
//! * the paper's **rsk-nop methodology** ([`methodology`]): calibrate the
//!   nop latency, sweep the injection time by inserting `k` nops between
//!   bus accesses, and recover `ubd` as the period of the saw-tooth that
//!   the slowdown traces out (Eq. 3) — requiring *no* knowledge of bus
//!   timing;
//! * the **experiment layer**: every experiment is a [`Scenario`] (a
//!   pure plan of machine runs plus an analysis) executed by the
//!   [`Campaign`] batch runner ([`campaign`]), which expands parameter
//!   grids, deduplicates shared runs, executes across a scoped thread
//!   pool, and serialises structured records as JSON/CSV ([`json`]) —
//!   with output bit-identical between serial and parallel execution;
//! * the shared single-run harness ([`experiment`]) behind the
//!   scenarios, and plain-text reporting ([`report`]) used by the figure
//!   regenerators;
//! * **experiments as data** ([`spec`]): an [`ExperimentSpec`] is a
//!   fully declarative, JSON-serialisable description of a campaign —
//!   machine, grid axes, per-core kernels — that round-trips losslessly
//!   through [`json`] and runs via `rrb run <spec.json>`;
//! * the **persistent result store** ([`store`]): a content-addressed
//!   on-disk cache keyed by [`RunSpec::spec_hash`] and invalidated by a
//!   simulator fingerprint, so re-running a campaign — after a crash,
//!   in the next CI job, with one more grid axis — only simulates what
//!   changed, with byte-identical output;
//! * the **static contention analyzer** ([`analyze`], backed by the
//!   `rrb-static` crate): analytic worst-case per-request delay bounds
//!   for *every* arbiter — including the `fp`/`fifo` policies the
//!   measurement methodology refuses — composed across the topology and
//!   cross-checked against both the analytic truth and measured delays
//!   (`rrb analyze`), plus a spec lint pass ([`lint`], `rrb lint`) that
//!   catches semantically dead experiments before any cycle is
//!   simulated.
//!
//! ## Quick start: one derivation
//!
//! ```
//! use rrb::methodology::{derive_ubd, MethodologyConfig};
//! use rrb_sim::MachineConfig;
//!
//! # fn main() -> Result<(), rrb::methodology::MethodologyError> {
//! // A bus whose timing we pretend not to know:
//! let machine = MachineConfig::toy(4, 2); // secretly ubd = 6
//! let derivation = derive_ubd(&machine, &MethodologyConfig::fast())?;
//! assert_eq!(derivation.ubd_m, 6);
//! # Ok(())
//! # }
//! ```
//!
//! ## Quick start: a parallel campaign
//!
//! The methodology is inherently a sweep, so production measurement is a
//! *campaign*: a grid of scenarios expanded into one deduplicated run
//! plan and executed in parallel, each run on its own machine.
//!
//! ```
//! use rrb::campaign::{Campaign, CampaignGrid, GridScenario};
//! use rrb_sim::{ArbiterKind, MachineConfig};
//!
//! let grid = CampaignGrid::new(GridScenario::Derive, MachineConfig::toy(4, 2))
//!     .arbiters(vec![ArbiterKind::RoundRobin, ArbiterKind::Fifo]);
//! let result = Campaign::builder().grid(&grid).jobs(4).build().run();
//!
//! // Round-robin recovers the hidden ubd = 6. FIFO has no saw-tooth
//! // period to recover, so the *measurement* is refused — a per-scenario
//! // record, not a poisoned campaign — while the static analyzer
//! // ([`analyze`]) still produces FIFO's analytic bound for the cell.
//! assert_eq!(result.reports[0].metric_u64("ubd_m"), Some(6));
//! assert!(!result.reports[1].is_ok());
//! let static_rows = rrb::analyze::analyze_grid(&grid);
//! assert_eq!(static_rows[1].static_total(), Some(6)); // the fifo cell
//! let json = result.to_json(); // bit-identical for any --jobs value
//! assert!(json.contains("\"ubd_m\": 6"));
//! ```
//!
//! The companion crates are re-exported under [`sim`], [`kernels`] and
//! [`analysis`] so downstream users need a single dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod campaign;
pub mod executor;
pub mod experiment;
pub mod json;
pub mod lint;
pub mod mbta;
pub mod methodology;
pub mod naive;
pub mod report;
pub mod scenario;
pub mod spec;
pub mod store;
pub mod validation;
pub mod verify;

/// Re-export of the simulator substrate.
pub use rrb_analysis as analysis;
/// Re-export of the kernel generators.
pub use rrb_kernels as kernels;
/// Re-export of the analytic layer.
pub use rrb_sim as sim;
/// Re-export of the static contention analyzer.
pub use rrb_static as statics;

pub use analyze::{
    analyze_grid, analyze_grid_cell, analyze_spec, analyze_workload, check_measured,
    measured_tightness, CellStaticBound, CellTightness,
};
#[allow(deprecated)]
pub use campaign::{
    clamped_jobs, execute_plan, execute_plan_stored, execute_run, execute_run_stored, Campaign,
    CampaignBuilder, CampaignGrid, CampaignPlan, CampaignResult, CampaignStats, GridCell,
    GridScenario, ParseGridScenarioError, PlannedScenario, RunError, RunMeasurement, RunRecord,
    RunSource, RunSpec, StoreUsage,
};
pub use executor::{Executor, MachineArena, StoredOutcome};
pub use experiment::{ContendedRun, IsolatedRun, SlowdownMeasurement};
pub use json::{fnv1a_64, Fnv64Hasher, Json, JsonParseError};
pub use lint::{has_errors, lint_spec, LintFinding, LintSeverity};
pub use mbta::{BoundValidation, MbtaAnalysis, TaskBound, TaskSpec};
pub use methodology::{
    derive_ubd, derive_ubd_repeated, derive_ubd_repeated_jobs, store_tooth_check,
    MethodologyConfig, MethodologyError, RepeatedDerivation, ResourceContribution, StoreToothCheck,
    UbdDerivation, UbdScenario,
};
pub use naive::{naive_rsk_vs_rsk, naive_scua_vs_rsk, NaiveEstimate, NaiveScenario};
pub use scenario::{
    Metric, MetricValue, RunOutcome, Scenario, ScenarioError, ScenarioReport, SweepScenario,
};
pub use spec::{
    ExperimentSpec, GridSpec, MachineSpec, SpecError, WorkloadCase, WorkloadScenario, SPEC_VERSION,
};
pub use store::{
    sim_fingerprint, write_file_atomic, GcReport, ResultStore, StoreError, StoreLookup, StoreStats,
    VerifyReport, STORE_FORMAT_VERSION,
};
pub use validation::{
    validate_gamma_model, GammaComparison, GammaValidationScenario, ValidationReport,
};
pub use verify::{
    render_verified, replay_cell_witnesses, replay_witness, verify_grid, verify_grid_cell,
    verify_spec, verify_workload, VerifiedCell, WitnessReplay,
};
