//! Minimal JSON document model, renderer, and parser.
//!
//! Campaign results must serialize deterministically — the parallel
//! runner's acceptance test is *byte identity* between serial and
//! parallel executions — and the workspace builds offline with std only,
//! so this module provides a small, dependency-free JSON value type
//! instead of an external serializer. Rendering is stable: object keys
//! keep insertion order, floats use Rust's shortest round-trip
//! formatting, and non-finite floats render as `null`.
//!
//! [`Json::parse`] is the inverse: experiment specifications
//! ([`crate::spec`]) are *data files*, so the module reads standard JSON
//! text back into the document model. Rendering and parsing compose to
//! the identity on everything this crate emits: numbers without a
//! decimal point or exponent parse as [`Json::U64`] (negative ones as
//! [`Json::I64`]), anything else numeric as [`Json::F64`] — exactly the
//! classes the renderer keeps apart — and Rust's shortest round-trip
//! float formatting guarantees `parse(render(v)) == v` bit-for-bit for
//! finite floats.

use std::fmt;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number (rendered as `null` when non-finite).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array of unsigned integers.
    pub fn u64_array(values: &[u64]) -> Self {
        Json::Arr(values.iter().map(|&v| Json::U64(v)).collect())
    }

    /// `Json::Null` for `None`, the mapped value otherwise.
    pub fn option<T>(value: Option<T>, f: impl FnOnce(T) -> Json) -> Self {
        value.map_or(Json::Null, f)
    }

    /// Parses a JSON document.
    ///
    /// Standard JSON (RFC 8259): one value, surrounded by optional
    /// whitespace. Integer tokens become [`Json::U64`] (or [`Json::I64`]
    /// when negative), tokens with a fraction or exponent become
    /// [`Json::F64`]; objects keep key order as written, and duplicate
    /// keys are rejected so a spec file cannot silently shadow a field.
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] with the byte offset and line/column of
    /// the first offending character.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// The boolean, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The unsigned integer, if this is a [`Json::U64`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The signed integer, widening from [`Json::U64`] when it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            Json::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The float, widening from either integer class.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The string, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is a [`Json::Arr`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is a [`Json::Obj`].
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks up `key` in a [`Json::Obj`] (`None` on other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether this is [`Json::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders the value as a compact single-line document.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value pretty-printed with two-space indentation and a
    /// trailing newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Shortest round-trip formatting; force a decimal
                    // point so the value re-parses as a float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

/// A JSON parsing failure, located in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the offending character.
    pub offset: usize,
    /// 1-based line of the offending character.
    pub line: usize,
    /// 1-based column (in bytes) of the offending character.
    pub column: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {}, column {}", self.message, self.line, self.column)
    }
}

impl std::error::Error for JsonParseError {}

/// Nesting ceiling for the recursive-descent parser, bounding stack use
/// on adversarial inputs (`[[[[…`).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        JsonParseError { message: message.into(), offset: self.pos, line, column }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nests deeper than 128 levels"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                self.pos = key_at;
                return Err(self.error(format!("duplicate object key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped UTF-8 spans wholesale.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("input is a &str, so spans between ASCII delimiters are valid UTF-8"),
            );
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // A high surrogate must pair with \uXXXX low.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.error("unpaired surrogate escape"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).expect("surrogate pair is a valid scalar")
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.error("unpaired surrogate escape"))?
                            };
                            out.push(c);
                            // hex4 already advanced past the digits.
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("expected four hex digits after \\u")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected a digit")),
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        let restore = self.pos;
        self.pos = start;
        let result = if fractional {
            match text.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok(Json::F64(v)),
                _ => Err(self.error("number out of range")),
            }
        } else if negative {
            text.parse::<i64>().map(Json::I64).map_err(|_| self.error("integer out of range"))
        } else {
            text.parse::<u64>().map(Json::U64).map_err(|_| self.error("integer out of range"))
        };
        self.pos = restore;
        result
    }
}

/// FNV-1a over `bytes`, 64-bit. The stable, dependency-free digest used
/// for spec hashing and run deduplication keys.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    use std::hash::Hasher as _;
    let mut h = Fnv64Hasher::new();
    h.write(bytes);
    h.finish()
}

/// FNV-1a (64-bit) as a [`std::hash::Hasher`], so any `#[derive(Hash)]`
/// spec type digests through the same stable function [`fnv1a_64`]
/// applies to raw bytes. Unlike the std `DefaultHasher`, the result does
/// not vary per process, which is what lets spec hashes key caches
/// meaningfully.
#[derive(Debug, Clone)]
pub struct Fnv64Hasher(u64);

impl Fnv64Hasher {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64Hasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Default for Fnv64Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl std::hash::Hasher for Fnv64Hasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes one CSV field (RFC 4180 quoting: only when needed).
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render_compact(), "null");
        assert_eq!(Json::Bool(true).render_compact(), "true");
        assert_eq!(Json::U64(42).render_compact(), "42");
        assert_eq!(Json::I64(-3).render_compact(), "-3");
        assert_eq!(Json::F64(0.5).render_compact(), "0.5");
        assert_eq!(Json::F64(1.0).render_compact(), "1.0");
        assert_eq!(Json::F64(f64::NAN).render_compact(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").render_compact(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").render_compact(), "\"\\u0001\"");
    }

    #[test]
    fn compound_values_render_compact() {
        let v = Json::obj(vec![
            ("xs", Json::u64_array(&[1, 2])),
            ("name", Json::str("rr")),
            ("none", Json::option(None::<u64>, Json::U64)),
        ]);
        assert_eq!(v.render_compact(), "{\"xs\":[1,2],\"name\":\"rr\",\"none\":null}");
    }

    #[test]
    fn pretty_rendering_is_indented_and_stable() {
        let v = Json::obj(vec![("a", Json::U64(1)), ("b", Json::Arr(vec![Json::Null]))]);
        let expected = "{\n  \"a\": 1,\n  \"b\": [\n    null\n  ]\n}\n";
        assert_eq!(v.render_pretty(), expected);
        assert_eq!(v.render_pretty(), v.render_pretty());
    }

    #[test]
    fn empty_containers_stay_inline() {
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render_compact(), "{}");
    }

    #[test]
    fn parse_round_trips_scalars() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-3),
            Json::I64(i64::MIN),
            Json::F64(0.5),
            Json::F64(1.0),
            Json::F64(-2.25e-8),
            Json::F64(f64::MAX),
            Json::str("plain"),
            Json::str("esc \" \\ \n \t \u{1} ünïcode 🚍"),
        ] {
            assert_eq!(Json::parse(&v.render_compact()).expect("parse"), v, "{v:?}");
        }
    }

    #[test]
    fn parse_round_trips_compound_documents_in_both_renderings() {
        let v = Json::obj(vec![
            ("xs", Json::u64_array(&[1, 2, 3])),
            ("nested", Json::obj(vec![("a", Json::F64(0.25)), ("b", Json::Arr(vec![]))])),
            ("s", Json::str("x,y")),
            ("none", Json::Null),
            ("neg", Json::I64(-7)),
        ]);
        assert_eq!(Json::parse(&v.render_compact()).expect("compact"), v);
        assert_eq!(Json::parse(&v.render_pretty()).expect("pretty"), v);
    }

    #[test]
    fn parse_accepts_standard_json_syntax() {
        let v =
            Json::parse(" { \"a\" : [ 1 , 2.5e2 , \"\\u0041\\ud83d\\ude80\" ] } ").expect("parse");
        assert_eq!(
            v,
            Json::obj(vec![(
                "a",
                Json::Arr(vec![Json::U64(1), Json::F64(250.0), Json::str("A🚀")])
            )])
        );
    }

    #[test]
    fn parse_classifies_number_tokens_like_the_renderer() {
        assert_eq!(Json::parse("42").expect("u64"), Json::U64(42));
        assert_eq!(Json::parse("-42").expect("i64"), Json::I64(-42));
        assert_eq!(Json::parse("42.0").expect("f64"), Json::F64(42.0));
        assert_eq!(Json::parse("4e2").expect("f64"), Json::F64(400.0));
    }

    #[test]
    fn parse_errors_carry_positions() {
        let e = Json::parse("{\"a\": 1,\n  oops}").expect_err("must fail");
        assert_eq!((e.line, e.column), (2, 3), "{e}");
        assert!(e.to_string().contains("line 2"));
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\" 1}",
            "nul",
            "01",
            "1.",
            "1e",
            "-",
            "\"\\x\"",
            "\"\\u12\"",
            "\"unterminated",
            "[1]]",
            "{\"a\":1,\"a\":2}",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn parse_rejects_runaway_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let e = Json::parse(&deep).expect_err("must fail");
        assert!(e.message.contains("128"), "{e}");
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_select_the_right_variants() {
        let v = Json::obj(vec![
            ("u", Json::U64(7)),
            ("i", Json::I64(-7)),
            ("f", Json::F64(0.5)),
            ("s", Json::str("hi")),
            ("b", Json::Bool(true)),
            ("a", Json::Arr(vec![Json::Null])),
        ]);
        assert_eq!(v.get("u").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("u").and_then(Json::as_i64), Some(7));
        assert_eq!(v.get("i").and_then(Json::as_i64), Some(-7));
        assert_eq!(v.get("i").and_then(Json::as_u64), None);
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(0.5));
        assert_eq!(v.get("u").and_then(Json::as_f64), Some(7.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("a").and_then(Json::as_array).map(<[Json]>::len), Some(1));
        assert!(v.get("missing").is_none());
        assert!(Json::Null.is_null() && !v.is_null());
        assert!(Json::U64(1).get("x").is_none());
    }

    #[test]
    fn fnv_digest_is_the_reference_fnv1a() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn csv_fields_quote_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
