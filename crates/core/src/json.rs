//! Minimal JSON document model and renderer.
//!
//! Campaign results must serialize deterministically — the parallel
//! runner's acceptance test is *byte identity* between serial and
//! parallel executions — and the workspace builds offline with std only,
//! so this module provides a small, dependency-free JSON value type
//! instead of an external serializer. Rendering is stable: object keys
//! keep insertion order, floats use Rust's shortest round-trip
//! formatting, and non-finite floats render as `null`.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number (rendered as `null` when non-finite).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order for deterministic output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array of unsigned integers.
    pub fn u64_array(values: &[u64]) -> Self {
        Json::Arr(values.iter().map(|&v| Json::U64(v)).collect())
    }

    /// `Json::Null` for `None`, the mapped value otherwise.
    pub fn option<T>(value: Option<T>, f: impl FnOnce(T) -> Json) -> Self {
        value.map_or(Json::Null, f)
    }

    /// Renders the value as a compact single-line document.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value pretty-printed with two-space indentation and a
    /// trailing newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Shortest round-trip formatting; force a decimal
                    // point so the value re-parses as a float.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains('.') && !s.contains('e') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escapes one CSV field (RFC 4180 quoting: only when needed).
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render_compact(), "null");
        assert_eq!(Json::Bool(true).render_compact(), "true");
        assert_eq!(Json::U64(42).render_compact(), "42");
        assert_eq!(Json::I64(-3).render_compact(), "-3");
        assert_eq!(Json::F64(0.5).render_compact(), "0.5");
        assert_eq!(Json::F64(1.0).render_compact(), "1.0");
        assert_eq!(Json::F64(f64::NAN).render_compact(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").render_compact(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::str("\u{1}").render_compact(), "\"\\u0001\"");
    }

    #[test]
    fn compound_values_render_compact() {
        let v = Json::obj(vec![
            ("xs", Json::u64_array(&[1, 2])),
            ("name", Json::str("rr")),
            ("none", Json::option(None::<u64>, Json::U64)),
        ]);
        assert_eq!(v.render_compact(), "{\"xs\":[1,2],\"name\":\"rr\",\"none\":null}");
    }

    #[test]
    fn pretty_rendering_is_indented_and_stable() {
        let v = Json::obj(vec![("a", Json::U64(1)), ("b", Json::Arr(vec![Json::Null]))]);
        let expected = "{\n  \"a\": 1,\n  \"b\": [\n    null\n  ]\n}\n";
        assert_eq!(v.render_pretty(), expected);
        assert_eq!(v.render_pretty(), v.render_pretty());
    }

    #[test]
    fn empty_containers_stay_inline() {
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]\n");
        assert_eq!(Json::Obj(vec![]).render_compact(), "{}");
    }

    #[test]
    fn csv_fields_quote_only_when_needed() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
